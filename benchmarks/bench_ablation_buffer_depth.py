"""Ablation — effect of the virtual-channel buffer depth.

The paper lists the buffer length among its simulator parameters but never
varies it in the published figures.  This ablation sweeps the per-VC buffer
depth at a moderately loaded operating point and records the latency: deeper
buffers reduce head-of-line blocking slightly, with quickly diminishing
returns — which is why wormhole routers keep buffers shallow.
"""

from __future__ import annotations

from repro.experiments.common import get_scale
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation
from repro.topology.torus import TorusTopology

DEPTHS = (1, 2, 4, 8)


def test_ablation_buffer_depth(run_once, benchmark):
    scale = get_scale()
    topology = TorusTopology(radix=8, dimensions=2)

    def sweep():
        out = {}
        for depth in DEPTHS:
            config = SimulationConfig(
                topology=topology,
                routing="swbased-deterministic",
                num_virtual_channels=4,
                buffer_depth=depth,
                message_length=32,
                injection_rate=0.01,
                warmup_messages=scale.warmup_messages,
                measure_messages=scale.measure_messages,
                seed=8,
                metadata={"ablation": "buffer-depth", "depth": str(depth)},
            )
            out[depth] = run_simulation(config)
        return out

    results = run_once(sweep)
    latencies = {depth: result.mean_latency for depth, result in results.items()}
    # Deeper buffers never make things (meaningfully) worse.
    assert latencies[8] <= latencies[1] * 1.15

    benchmark.extra_info["ablation"] = "buffer_depth"
    benchmark.extra_info["latency_by_depth"] = {
        str(depth): round(lat, 1) for depth, lat in latencies.items()
    }
