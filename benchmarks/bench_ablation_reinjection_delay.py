"""Ablation — effect of the software re-injection overhead Δ.

The paper sets the re-injection overhead to zero ("the decision time and
overhead delay compared to the channel cycle time are usually negligible").
This ablation quantifies what that assumption hides: with a non-zero Δ the
mean latency under faults grows, and the penalty is much larger for
deterministic routing (which absorbs messages often) than for adaptive routing
(which rarely absorbs).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import get_scale
from repro.faults.injection import random_node_faults
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation
from repro.topology.torus import TorusTopology

DELAYS = (0, 32, 128)


@pytest.mark.parametrize("routing", ["swbased-deterministic", "swbased-adaptive"])
def test_ablation_reinjection_delay(run_once, benchmark, routing):
    scale = get_scale()
    topology = TorusTopology(radix=8, dimensions=2)
    faults = random_node_faults(topology, 5, rng=77)

    def sweep():
        out = {}
        for delay in DELAYS:
            config = SimulationConfig(
                topology=topology,
                routing=routing,
                num_virtual_channels=4,
                message_length=32,
                injection_rate=0.006,
                faults=faults,
                reinjection_delay=delay,
                warmup_messages=scale.warmup_messages,
                measure_messages=scale.measure_messages,
                seed=5,
                metadata={"ablation": "reinjection-delay", "delay": str(delay)},
            )
            out[delay] = run_simulation(config)
        return out

    results = run_once(sweep)
    latencies = {delay: result.mean_latency for delay, result in results.items()}
    assert latencies[128] >= latencies[0]

    benchmark.extra_info["ablation"] = "reinjection_delay"
    benchmark.extra_info["routing"] = routing
    benchmark.extra_info["latency_by_delay"] = {
        str(delay): round(lat, 1) for delay, lat in latencies.items()
    }
    benchmark.extra_info["absorptions_by_delay"] = {
        str(delay): result.messages_queued for delay, result in results.items()
    }
