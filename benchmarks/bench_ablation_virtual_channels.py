"""Ablation — number of virtual channels per physical channel.

The paper's panels use V = 4, 6 and 10; this ablation runs the same operating
point across that range for both routing flavours and checks the expected
ordering: more virtual channels push the saturation point higher, so latency
at a fixed (moderately high) load does not increase with V.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import get_scale
from repro.faults.injection import random_node_faults
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation
from repro.topology.torus import TorusTopology

VC_COUNTS = (4, 6, 10)


@pytest.mark.parametrize("routing", ["swbased-deterministic", "swbased-adaptive"])
def test_ablation_virtual_channels(run_once, benchmark, routing):
    scale = get_scale()
    topology = TorusTopology(radix=8, dimensions=2)
    faults = random_node_faults(topology, 3, rng=99)

    def sweep():
        out = {}
        for vcs in VC_COUNTS:
            config = SimulationConfig(
                topology=topology,
                routing=routing,
                num_virtual_channels=vcs,
                message_length=32,
                injection_rate=0.01,
                faults=faults,
                warmup_messages=scale.warmup_messages,
                measure_messages=scale.measure_messages,
                seed=12,
                metadata={"ablation": "virtual-channels", "V": str(vcs)},
            )
            out[vcs] = run_simulation(config)
        return out

    results = run_once(sweep)
    latencies = {vcs: result.mean_latency for vcs, result in results.items()}
    # At a fixed pre-saturation load the latency is roughly flat in V (V mainly
    # moves the saturation point); allow a generous tolerance because each
    # point is a short, single-seed run.
    assert latencies[10] <= latencies[4] * 1.35

    benchmark.extra_info["ablation"] = "virtual_channels"
    benchmark.extra_info["routing"] = routing
    benchmark.extra_info["latency_by_V"] = {
        str(vcs): round(lat, 1) for vcs, lat in latencies.items()
    }
