"""Microbenchmarks of the simulator's hot paths.

These are conventional pytest-benchmark microbenchmarks (multiple rounds)
measuring the cost of the routing functions and of one engine cycle at a
loaded operating point.  They exist to keep the pure-Python simulator honest:
a regression here multiplies the runtime of every figure reproduction.
"""

from __future__ import annotations

import os

from repro.core.swbased_nd import SoftwareBasedRouting
from repro.faults.injection import random_node_faults
from repro.faults.model import FaultSet
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.duato import DuatoRouting
from repro.sim.config import SimulationConfig
from repro.sim.runner import build_engine
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology

#: Engine implementation measured by the large-network engine-cycle
#: benchmarks below.  The committed baseline records the array kernel (the
#: configuration these scenarios exist to gate); set
#: ``REPRO_BENCH_ENGINE=dict`` to reproduce the reference-engine numbers the
#: BENCH_engine.json before/after comparison was made from.
_BENCH_ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "array")


def test_micro_dimension_order_route(benchmark):
    topo = TorusTopology(radix=8, dimensions=3)
    routing = DimensionOrderRouting(topo, num_virtual_channels=4)
    pairs = [(s, (s * 37 + 11) % topo.num_nodes) for s in range(0, topo.num_nodes, 7)]
    headers = [routing.initial_header(s, d) for s, d in pairs if s != d]
    nodes = [s for s, d in pairs if s != d]

    def route_all():
        for node, header in zip(nodes, headers):
            routing.route(node, header)

    benchmark(route_all)
    benchmark.extra_info["routes_per_call"] = len(nodes)


def test_micro_duato_route(benchmark):
    topo = TorusTopology(radix=8, dimensions=3)
    routing = DuatoRouting(topo, num_virtual_channels=6)
    pairs = [(s, (s * 41 + 3) % topo.num_nodes) for s in range(0, topo.num_nodes, 7)]
    headers = [routing.initial_header(s, d) for s, d in pairs if s != d]
    nodes = [s for s, d in pairs if s != d]

    def route_all():
        for node, header in zip(nodes, headers):
            routing.route(node, header)

    benchmark(route_all)
    benchmark.extra_info["routes_per_call"] = len(nodes)


def test_micro_software_rewrite(benchmark):
    topo = TorusTopology(radix=8, dimensions=2)
    faults = random_node_faults(topo, 6, rng=3)
    routing = SoftwareBasedRouting.deterministic(topo, faults=faults, num_virtual_channels=2)
    healthy = [n for n in topo.nodes() if not faults.is_node_faulty(n)]
    cases = [(healthy[i], healthy[-(i + 1)]) for i in range(0, len(healthy) // 2, 3)]

    def rewrite_all():
        for src, dst in cases:
            if src == dst:
                continue
            header = routing.initial_header(src, dst)
            header.absorptions = 1
            routing.rewrite_after_absorption(src, header)

    benchmark(rewrite_all)
    benchmark.extra_info["rewrites_per_call"] = len(cases)


def test_micro_engine_cycle_under_load(benchmark):
    config = SimulationConfig(
        topology=TorusTopology(radix=8, dimensions=2),
        routing="swbased-adaptive",
        num_virtual_channels=4,
        message_length=16,
        injection_rate=0.01,
        warmup_messages=0,
        measure_messages=10_000,
        seed=4,
    )
    engine = build_engine(config)
    for _ in range(400):  # reach a loaded steady state before measuring
        engine.step()

    benchmark(engine.step)
    benchmark.extra_info["active_flit_transfers"] = engine.flit_transfers


def test_micro_engine_cycle_16x16(benchmark):
    """One engine cycle on a loaded 16×16 mesh (the array kernel's target).

    Long messages (L=256) at a rate just under saturation keep hundreds of
    channels busy and a steady population of blocked headers — the operating
    point where the dict engine's per-channel Python scan is most expensive.
    """
    config = SimulationConfig(
        topology=MeshTopology(radix=16, dimensions=2),
        routing="swbased-adaptive",
        faults=FaultSet.from_nodes([34, 35, 50, 51, 120]),
        num_virtual_channels=6,
        message_length=256,
        injection_rate=0.008,
        traffic_process="bernoulli",
        warmup_messages=0,
        measure_messages=1_000_000,
        max_cycles=10**9,
        seed=42,
        engine=_BENCH_ENGINE,
    )
    engine = build_engine(config)
    for _ in range(3000):  # reach the loaded steady state before measuring
        engine.step()

    benchmark(engine.step)
    benchmark.extra_info["engine"] = _BENCH_ENGINE
    benchmark.extra_info["active_flit_transfers"] = engine.flit_transfers


def test_micro_engine_cycle_4x4x4(benchmark):
    """One engine cycle on a loaded 4×4×4 torus (3D variant of the above)."""
    config = SimulationConfig(
        topology=TorusTopology(radix=4, dimensions=3),
        routing="swbased-adaptive",
        faults=FaultSet.from_nodes([21, 22]),
        num_virtual_channels=4,
        message_length=64,
        injection_rate=0.02,
        traffic_process="bernoulli",
        warmup_messages=0,
        measure_messages=1_000_000,
        max_cycles=10**9,
        seed=42,
        engine=_BENCH_ENGINE,
    )
    engine = build_engine(config)
    for _ in range(2000):  # reach the loaded steady state before measuring
        engine.step()

    benchmark(engine.step)
    benchmark.extra_info["engine"] = _BENCH_ENGINE
    benchmark.extra_info["active_flit_transfers"] = engine.flit_transfers
