"""Fig. 1 — build and render every coalesced fault-region shape.

This benchmark is cheap; it mostly documents that the region builders and the
renderer scale to the full 16-ary 2-cube used later in Fig. 6.
"""

from __future__ import annotations

from repro.experiments import fig1_regions


def test_fig1_build_and_render_regions(run_once, benchmark):
    results = run_once(fig1_regions.run, radix=16)
    assert set(results) == set(fig1_regions.SHAPES)
    benchmark.extra_info["figure"] = "fig1"
    benchmark.extra_info["region_sizes"] = {
        name: info["num_faults"] for name, info in results.items()
    }
    benchmark.extra_info["convex"] = [
        name for name, info in results.items() if info["convex"]
    ]
    benchmark.extra_info["concave"] = [
        name for name, info in results.items() if not info["convex"]
    ]
