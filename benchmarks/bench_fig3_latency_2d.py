"""Fig. 3 — mean message latency vs traffic rate, 8-ary 2-cube.

One benchmark per routing flavour (two of the paper's six panels at the
default scale; pass larger ``virtual_channels``/``message_lengths`` through
the experiment module to regenerate all panels).  The asserted properties are
the paper's qualitative findings: latency increases with the number of faulty
nodes, and faulty configurations saturate no later than fault-free ones.
"""

from __future__ import annotations

import pytest

from repro.analysis.saturation import estimate_saturation_rate
from repro.experiments import fig3_latency_2d


def _check_trends(results, fault_counts):
    """Latency at the lowest common rate must be non-decreasing in n_f."""
    base_label = [label for label in results if f"nf={fault_counts[0]}" in label][0]
    base = results[base_label]
    lowest_rate_latency = {}
    for label, sweep in results.items():
        lowest_rate_latency[label] = sweep.latencies[0]
    for count in fault_counts[1:]:
        label = base_label.replace(f"nf={fault_counts[0]}", f"nf={count}")
        assert lowest_rate_latency[label] >= lowest_rate_latency[base_label] * 0.95
    return base


@pytest.mark.parametrize("routing", ["swbased-deterministic", "swbased-adaptive"])
def test_fig3_latency_vs_rate(run_once, benchmark, routing):
    fault_counts = (0, 3, 5)
    results = run_once(
        fig3_latency_2d.run,
        routings=(routing,),
        virtual_channels=(4,),
        message_lengths=(32,),
        fault_counts=fault_counts,
    )
    assert len(results) == len(fault_counts)
    _check_trends(results, fault_counts)

    benchmark.extra_info["figure"] = "fig3"
    benchmark.extra_info["routing"] = routing
    for label, sweep in results.items():
        benchmark.extra_info[label] = {
            "rates": [round(r, 5) for r in sweep.rates],
            "latency": [round(latency, 1) for latency in sweep.latencies],
            "saturated": sweep.saturated,
            "saturation_rate": estimate_saturation_rate(sweep),
        }
