"""Fig. 4 — mean message latency vs traffic rate, 8-ary 3-cube (512 nodes).

Exercises the n-dimensional extension proper.  The asserted trends mirror the
paper: with 12 random faulty nodes the latency is higher than in the
fault-free network at comparable rates, and faulted messages are absorbed by
the software layer (which never happens with n_f = 0).
"""

from __future__ import annotations

import pytest

from repro.analysis.saturation import estimate_saturation_rate
from repro.experiments import fig4_latency_3d


@pytest.mark.parametrize("routing", ["swbased-deterministic", "swbased-adaptive"])
def test_fig4_latency_vs_rate_3d(run_once, benchmark, routing):
    results = run_once(
        fig4_latency_3d.run,
        routings=(routing,),
        virtual_channels=(4,),
        message_lengths=(32,),
        fault_counts=(0, 12),
    )
    healthy = next(sweep for label, sweep in results.items() if "nf=0" in label)
    faulty = next(sweep for label, sweep in results.items() if "nf=12" in label)
    assert faulty.latencies[0] >= healthy.latencies[0] * 0.95
    assert all(
        result.messages_queued == 0 for result in healthy.results
    ), "no absorption without faults"
    assert any(
        result.messages_queued > 0 for result in faulty.results
    ), "faults must trigger software absorption"

    benchmark.extra_info["figure"] = "fig4"
    benchmark.extra_info["routing"] = routing
    for label, sweep in results.items():
        benchmark.extra_info[label] = {
            "rates": [round(r, 5) for r in sweep.rates],
            "latency": [round(latency, 1) for latency in sweep.latencies],
            "saturated": sweep.saturated,
            "saturation_rate": estimate_saturation_rate(sweep),
        }
