"""Fig. 5 — latency vs traffic rate under convex and concave fault regions.

Regenerates the five-region comparison (rectangular 20, T 10, + 16, L 9, U 8
faulty nodes) for one routing flavour per benchmark.  The asserted trend is
the paper's headline: the concave U-shaped region (8 faults) produces at least
as many software absorptions per message as the convex rectangle (20 faults),
and adaptive routing absorbs far fewer messages than deterministic routing.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig5_fault_regions


@pytest.mark.parametrize("routing", ["swbased-deterministic", "swbased-adaptive"])
def test_fig5_fault_region_latency(run_once, benchmark, routing):
    results = run_once(
        fig5_fault_regions.run,
        routings=(routing,),
        regions=("rect", "U", "T", "L", "plus"),
    )
    assert len(results) == 5

    def absorptions_per_message(sweep):
        totals = [r.messages_queued for r in sweep.results]
        measured = [max(1, r.metrics.delivered_messages) for r in sweep.results]
        return sum(t / m for t, m in zip(totals, measured)) / len(totals)

    rect = next(sweep for label, sweep in results.items() if " rect " in f" {label} ")
    u_shape = next(sweep for label, sweep in results.items() if " U " in f" {label} ")
    # Concave U region (8 faults) is at least ~60 % as costly as the convex
    # rectangle with 2.5x more faults — per fault it is far worse.
    assert absorptions_per_message(u_shape) >= 0.6 * absorptions_per_message(rect) or (
        absorptions_per_message(rect) == 0
    )

    benchmark.extra_info["figure"] = "fig5"
    benchmark.extra_info["routing"] = routing
    for label, sweep in results.items():
        benchmark.extra_info[label] = {
            "rates": [round(r, 5) for r in sweep.rates],
            "latency": [round(latency, 1) for latency in sweep.latencies],
            "absorptions_per_message": round(absorptions_per_message(sweep), 3),
        }
