"""Fig. 6 — throughput vs number of random faulty nodes, 16-ary 2-cube.

The paper's findings asserted here: the throughput achieved under heavy load
is "not seriously affected" by the number of failures (we allow a 35 % drop
from 0 to the largest fault count at the scaled-down run length), and the
software layer absorbs messages only when faults are present.
"""

from __future__ import annotations

from repro.experiments import fig6_throughput


def test_fig6_throughput_vs_faults(run_once, benchmark):
    results = run_once(
        fig6_throughput.run,
        routings=("swbased-deterministic", "swbased-adaptive"),
        fault_counts=(0, 4, 8),
    )
    series = fig6_throughput.throughput_series(results)
    for routing, per_count in series.items():
        counts = sorted(per_count)
        assert all(per_count[c] > 0 for c in counts)
        # Throughput is not seriously affected by the presence of failures.
        assert per_count[counts[-1]] >= 0.65 * per_count[0]

    benchmark.extra_info["figure"] = "fig6"
    benchmark.extra_info["offered_load"] = fig6_throughput.MEASUREMENT_RATE
    benchmark.extra_info["throughput"] = {
        routing: {str(k): round(v, 5) for k, v in per.items()}
        for routing, per in series.items()
    }
