"""Fig. 7 — messages queued (absorbed) vs number of faulty nodes, 8-ary 3-cube.

The paper's findings asserted here: the number of messages absorbed by the
software layer grows with the number of faulty nodes, and it is much larger
for deterministic than for adaptive Software-Based routing.
"""

from __future__ import annotations

from repro.experiments import fig7_messages_queued


def test_fig7_messages_queued_vs_faults(run_once, benchmark):
    results = run_once(
        fig7_messages_queued.run,
        routings=("swbased-deterministic", "swbased-adaptive"),
        generation_rates=("70", "100"),
        fault_counts=(0, 6, 12),
    )
    series = fig7_messages_queued.queued_series(results)

    for label, per_count in series.items():
        counts = sorted(per_count)
        assert per_count[0] == 0, "no absorptions without faults"
        assert per_count[counts[-1]] > 0, "faults must produce absorptions"
        assert per_count[counts[-1]] >= per_count[counts[1]] * 0.8  # grows with n_f

    for rate_label in ("70", "100"):
        det = series[f"deterministic @{rate_label}"]
        adpt = series[f"adaptive @{rate_label}"]
        worst = max(k for k in det)
        assert det[worst] > adpt[worst], (
            "deterministic routing must absorb more messages than adaptive routing"
        )

    benchmark.extra_info["figure"] = "fig7"
    benchmark.extra_info["messages_queued"] = {
        label: {str(k): round(v, 1) for k, v in per.items()} for label, per in series.items()
    }
