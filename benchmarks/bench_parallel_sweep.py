"""Parallel sweep executor — wall-clock speedup on a Fig. 3-sized sweep.

Runs the same injection-rate sweep (8-ary 2-cube, V = 4, M = 32, n_f = 3, the
default-scale Fig. 3 point grid) serially and with ``jobs=4`` workers, checks
the two executions are bit-identical (the executor's determinism contract),
and records the measured speedup.  On a machine with at least 4 CPUs the
speedup must reach 1.5x; on smaller machines the ratio is still recorded in
``benchmark.extra_info`` but not asserted, since forking cannot beat the
clock without spare cores.  On time-shared runners where ``os.cpu_count()``
overstates the truly available cores (cgroup quotas, noisy neighbours), set
``REPRO_MIN_SPEEDUP`` to relax or disable (``0``) the assertion.
"""

from __future__ import annotations

import os
import time

from repro.experiments.common import rate_grid
from repro.faults.injection import random_node_faults
from repro.sim.config import SimulationConfig
from repro.sim.parallel import SweepExecutor
from repro.topology.torus import TorusTopology

JOBS = 4
REQUIRED_SPEEDUP = float(os.environ.get("REPRO_MIN_SPEEDUP", "1.5"))


def _fig3_sized_config() -> SimulationConfig:
    topology = TorusTopology(radix=8, dimensions=2)
    return SimulationConfig(
        topology=topology,
        routing="swbased-deterministic",
        num_virtual_channels=4,
        message_length=32,
        faults=random_node_faults(topology, 3, rng=2006 + 3),
        warmup_messages=60,
        measure_messages=400,
        max_cycles=150_000,
        seed=2006,
    )


def _timed_sweep(jobs: int):
    config = _fig3_sized_config()
    rates = rate_grid(0.014, 5)
    start = time.perf_counter()
    sweep = SweepExecutor(jobs=jobs).run_injection_rate_sweep(
        config, rates, label=f"jobs={jobs}"
    )
    return time.perf_counter() - start, sweep


def test_parallel_sweep_speedup(run_once, benchmark):
    serial_seconds, serial = _timed_sweep(1)
    parallel_seconds, parallel = run_once(_timed_sweep, JOBS)

    # determinism contract: the pool changes wall-clock time, not one bit
    assert serial.rates == parallel.rates
    assert serial.latency_mean == parallel.latency_mean
    assert serial.throughput_mean == parallel.throughput_mean
    assert serial.saturated == parallel.saturated

    speedup = serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["cpus"] = os.cpu_count()
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["latency"] = [round(v, 1) for v in serial.latency_mean]

    if (os.cpu_count() or 1) >= JOBS and REQUIRED_SPEEDUP > 0:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"jobs={JOBS} speedup {speedup:.2f}x below the {REQUIRED_SPEEDUP}x target "
            f"on a {os.cpu_count()}-CPU machine (set REPRO_MIN_SPEEDUP to relax)"
        )
