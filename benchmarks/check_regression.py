"""Compare a fresh pytest-benchmark JSON run against a committed baseline.

Usage::

    python benchmarks/check_regression.py BASELINE.json NEW.json \
        [--tolerance 0.30] [--calibration benchmarks/baseline_calibration.json]

Exits non-zero when any benchmark shared by both files regressed by more than
``tolerance`` (relative mean-time increase), printing a per-benchmark table
either way.  Benchmarks present in only one file are reported but never fail
the check (new benchmarks must be able to land before a baseline exists for
them).

Cross-machine calibration
-------------------------
The committed baseline was measured on one reference machine while CI runs on
another, so absolute times do not transfer.  With ``--calibration`` the script
times a fixed pure-Python workload on the current machine, compares it to the
reference machine's time for the same workload (recorded next to the baseline
with ``--record-calibration``), and scales the baseline means by that
machine-speed ratio before applying the tolerance.  The tolerance then only
has to absorb run-to-run jitter, not hardware differences; it remains
deliberately loose because the gate exists to catch structural hot-path
regressions (an accidental per-flit object allocation, a quadratic scan), not
single-digit noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict


def _calibration_seconds(repeats: int = 7) -> float:
    """Best-of-N time of a fixed pure-Python workload (machine speed probe).

    The workload mixes integer arithmetic, attribute-free dict traffic and
    list appends — the same interpreter operations the engine hot path is made
    of — and takes a few tens of milliseconds per pass.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        accumulator = 0
        table: Dict[int, int] = {}
        items = []
        for i in range(200_000):
            accumulator += i & 7
            table[i & 255] = accumulator
            if i & 15 == 0:
                items.append(accumulator)
        del items[:]
        best = min(best, time.perf_counter() - start)
    return best


def _mean_by_name(path: str) -> Dict[str, float]:
    with open(path) as handle:
        data = json.load(handle)
    return {bench["name"]: bench["stats"]["mean"] for bench in data["benchmarks"]}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "baseline", nargs="?", help="committed baseline pytest-benchmark JSON"
    )
    parser.add_argument(
        "fresh", nargs="?", help="freshly measured pytest-benchmark JSON"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed relative mean-time increase (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--calibration",
        help="JSON with the reference machine's calibration_seconds; scales the "
        "baseline by this machine's speed before comparing",
    )
    parser.add_argument(
        "--record-calibration",
        metavar="OUT.json",
        help="measure this machine's calibration workload, write it to OUT.json "
        "and exit (run on the machine that produced the baseline)",
    )
    args = parser.parse_args(argv)

    if args.record_calibration:
        seconds = _calibration_seconds()
        with open(args.record_calibration, "w") as handle:
            json.dump({"calibration_seconds": seconds}, handle, indent=2)
        print(f"wrote {args.record_calibration}: calibration_seconds={seconds:.6f}")
        return 0
    if args.baseline is None or args.fresh is None:
        parser.error("BASELINE.json and NEW.json are required unless --record-calibration is given")

    scale = 1.0
    if args.calibration:
        with open(args.calibration) as handle:
            reference = json.load(handle)["calibration_seconds"]
        local = _calibration_seconds()
        scale = local / reference
        print(
            f"calibration: reference {reference * 1e3:.1f}ms, this machine "
            f"{local * 1e3:.1f}ms -> baseline scaled by {scale:.2f}x"
        )

    baseline = _mean_by_name(args.baseline)
    baseline = {name: mean * scale for name, mean in baseline.items()}
    fresh = _mean_by_name(args.fresh)
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("error: the two benchmark files share no benchmark names", file=sys.stderr)
        return 2

    failures = []
    print(f"{'benchmark':<44} {'baseline':>12} {'fresh':>12} {'change':>9}")
    for name in shared:
        base_s, new_s = baseline[name], fresh[name]
        change = new_s / base_s - 1.0
        flag = "  REGRESSION" if change > args.tolerance else ""
        print(f"{name:<44} {base_s * 1e6:>10.1f}us {new_s * 1e6:>10.1f}us {change:>8.1%}{flag}")
        if change > args.tolerance:
            failures.append(name)
    for name in sorted(set(baseline) ^ set(fresh)):
        which = "baseline only" if name in baseline else "fresh only"
        print(f"{name:<44} ({which}; not compared)")

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed by more than "
            f"{args.tolerance:.0%}: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no benchmark regressed by more than {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
