"""Shared configuration for the benchmark harness.

Every benchmark regenerates (a scaled-down version of) one of the paper's
figures through the :mod:`repro.experiments` modules and attaches the
measured series to ``benchmark.extra_info`` so the numbers can be read from
``pytest benchmarks/ --benchmark-only`` output (or the JSON export) and copied
into EXPERIMENTS.md.

Scaling: set ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=25``) to approach the paper's
message counts; the default scale keeps the full suite in the minutes range on
a laptop.  Every figure benchmark routes its sweeps through
:class:`repro.sim.parallel.SweepExecutor`; set ``REPRO_JOBS`` (e.g.
``REPRO_JOBS=4``) to fan the sweep points out over worker processes — the
measured series are identical for any job count, and
``bench_parallel_sweep.py`` quantifies the wall-clock speedup.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_collection_modifyitems(config, items):
    """Benchmarks are meaningful only under --benchmark-only; skip otherwise.

    This keeps ``pytest tests/ benchmarks/`` (without the flag) fast and makes
    the intent explicit, while ``pytest benchmarks/ --benchmark-only`` runs the
    full harness.
    """
    if config.getoption("--benchmark-only", default=False):
        return
    skip = pytest.mark.skip(reason="benchmark harness: run with --benchmark-only")
    for item in items:
        if item.get_closest_marker("benchmark") or "benchmarks" in str(item.fspath):
            item.add_marker(skip)


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing.

    The figure reproductions are full simulation campaigns, not microbenchmarks,
    so a single round is both sufficient and necessary to keep runtimes sane.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
