#!/usr/bin/env python
"""Fault regions: convex vs concave shapes and their effect on latency.

Reproduces the spirit of Fig. 1 and Fig. 5 of the paper on a small scale:

1. builds the five fault regions the paper evaluates (rectangular, T, +, L and
   U shaped) on an 8-ary 2-cube and renders them as ASCII maps;
2. runs a short simulation for each region with deterministic and adaptive
   Software-Based routing and compares the mean latency, showing that concave
   regions (U, T, +, L) cost more than the convex rectangle even though the
   rectangle contains more faulty nodes.

Run with::

    python examples/fault_regions.py
"""

from __future__ import annotations

from repro import SimulationConfig, TorusTopology, paper_fig5_regions, run_simulation
from repro.analysis.plotting import render_fault_region
from repro.analysis.tables import format_table


def main() -> None:
    topology = TorusTopology(radix=8, dimensions=2)
    regions = paper_fig5_regions(topology)

    print("The paper's Fig. 5 fault regions (X = faulty node):\n")
    for label, region in regions.items():
        kind = "convex" if region.convex else "concave"
        print(f"{label}-shaped region ({kind}, n_f = {region.num_faults}):")
        print(render_fault_region(topology, region))
        print()

    rows = []
    for label, region in regions.items():
        for routing in ("swbased-deterministic", "swbased-adaptive"):
            config = SimulationConfig(
                topology=topology,
                routing=routing,
                num_virtual_channels=10,
                message_length=32,
                injection_rate=0.006,
                faults=region.to_fault_set(),
                warmup_messages=60,
                measure_messages=500,
                seed=11,
            )
            result = run_simulation(config)
            rows.append(
                {
                    "region": label,
                    "convex": region.convex,
                    "faults": region.num_faults,
                    "routing": "deterministic" if "deterministic" in routing else "adaptive",
                    "mean_latency": result.mean_latency,
                    "messages_absorbed": result.messages_queued,
                }
            )

    print(
        format_table(
            rows,
            columns=["region", "convex", "faults", "routing", "mean_latency",
                     "messages_absorbed"],
            title="Latency by fault-region shape (8-ary 2-cube, M=32, V=10, lambda=0.006)",
        )
    )
    print(
        "\nNote how the concave regions produce more absorptions per faulty node than\n"
        "the convex rectangle, and how adaptive routing cuts both the latency and the\n"
        "number of absorbed messages — the observations behind the paper's Fig. 5."
    )


if __name__ == "__main__":
    main()
