#!/usr/bin/env python
"""Latency-vs-load curves: a miniature of the paper's Fig. 3.

Sweeps the injection rate for an 8-ary 2-cube with 0 and 5 random faulty
nodes under deterministic and adaptive Software-Based routing, then renders
the four latency curves as an ASCII chart and reports the estimated
saturation point of each configuration.

Run with::

    python examples/latency_vs_load.py
"""

from __future__ import annotations

from repro import (
    FaultSet,
    SimulationConfig,
    TorusTopology,
    injection_rate_sweep,
    random_node_faults,
)
from repro.analysis.plotting import ascii_multi_series
from repro.analysis.saturation import estimate_saturation_rate, zero_load_latency
from repro.experiments.common import rate_grid


def main() -> None:
    topology = TorusTopology(radix=8, dimensions=2)
    faults5 = random_node_faults(topology, 5, rng=3)
    rates = rate_grid(0.016, points=6)

    sweeps = []
    for routing in ("swbased-deterministic", "swbased-adaptive"):
        for label, faults in (("nf=0", FaultSet.empty()), ("nf=5", faults5)):
            kind = "det" if "deterministic" in routing else "adpt"
            config = SimulationConfig(
                topology=topology,
                routing=routing,
                num_virtual_channels=6,
                message_length=32,
                faults=faults,
                warmup_messages=80,
                measure_messages=600,
                seed=17,
            )
            sweep = injection_rate_sweep(config, rates, label=f"{kind} {label}")
            sweeps.append(sweep)

    print("Mean message latency vs injection rate (8-ary 2-cube, M=32, V=6):\n")
    print(
        ascii_multi_series(
            [(s.label, s.rates, s.latencies) for s in sweeps],
            width=64,
            height=18,
            x_label="injection rate (messages/node/cycle)",
        )
    )

    zero_load = zero_load_latency(topology, 32)
    print(f"\nAnalytical zero-load latency: {zero_load:.1f} cycles")
    for sweep in sweeps:
        sat = estimate_saturation_rate(sweep, zero_load=zero_load)
        sat_text = f"{sat:.4f}" if sat is not None else "not reached in this sweep"
        print(f"  {sweep.label:12s} estimated saturation rate: {sat_text}")

    print(
        "\nAs in the paper's Fig. 3, latency rises with the number of faulty nodes and\n"
        "the faulty configurations saturate at lower traffic rates, while the adaptive\n"
        "flavour tolerates a higher load before saturating."
    )


if __name__ == "__main__":
    main()
