#!/usr/bin/env python
"""The n-dimensional extension: SW-Based routing in 2-D, 3-D and 4-D tori.

The whole point of the paper is extending Software-Based routing beyond two
dimensions.  This example routes traffic through 2-D, 3-D and 4-D tori of
roughly comparable node counts, with the same number of random node failures,
and compares:

* the mean message latency and hop count (higher-dimensional networks have a
  smaller diameter, so latency drops with dimensionality);
* the number of software absorptions (more dimensions give the adaptive
  flavour more ways around a fault, so absorptions drop sharply);
* the deadlock-freedom check: the escape-channel dependency graph is verified
  acyclic for every configuration, including the reversed (non-minimal) paths
  introduced by the re-routing tables.

It also cross-checks the measured latency against the approximate analytical
model the paper lists as future work.

Run with::

    python examples/multidimensional_scaling.py
"""

from __future__ import annotations

from repro import (
    SimulationConfig,
    TorusTopology,
    is_deadlock_free,
    make_routing,
    random_node_faults,
    run_simulation,
)
from repro.analysis.analytical import AnalyticalLatencyModel
from repro.analysis.tables import format_table

#: (radix, dimensions) triples of roughly comparable size: 64, 64, 81 nodes.
NETWORKS = [(8, 2), (4, 3), (3, 4)]


def main() -> None:
    rows = []
    for radix, dims in NETWORKS:
        topology = TorusTopology(radix=radix, dimensions=dims)
        faults = random_node_faults(topology, 4, rng=5)
        for routing_name in ("swbased-deterministic", "swbased-adaptive"):
            config = SimulationConfig(
                topology=topology,
                routing=routing_name,
                num_virtual_channels=4,
                message_length=16,
                injection_rate=0.008,
                faults=faults,
                warmup_messages=60,
                measure_messages=500,
                seed=23,
            )
            result = run_simulation(config)
            model = AnalyticalLatencyModel(
                topology=topology,
                message_length=16,
                num_virtual_channels=4,
                faults=faults,
                adaptive=routing_name.endswith("adaptive"),
            )
            # Deadlock-freedom evidence on a reduced pair enumeration to keep
            # the example fast on the larger networks.
            routing = make_routing(
                routing_name, topology, faults=faults, num_virtual_channels=4
            )
            sample = list(range(0, topology.num_nodes, max(1, topology.num_nodes // 12)))
            acyclic = is_deadlock_free(routing, sources=sample, destinations=sample)
            rows.append(
                {
                    "network": f"{radix}-ary {dims}-cube",
                    "routing": "det" if "deterministic" in routing_name else "adaptive",
                    "mean_latency": result.mean_latency,
                    "model_latency": model.mean_latency(0.008),
                    "mean_hops": result.metrics.mean_hops,
                    "absorbed": result.messages_queued,
                    "escape CDG acyclic": acyclic,
                }
            )

    print(
        format_table(
            rows,
            columns=["network", "routing", "mean_latency", "model_latency", "mean_hops",
                     "absorbed", "escape CDG acyclic"],
            title="SW-Based routing across dimensionality (4 random faults, M=16, V=4)",
        )
    )
    print(
        "\nHigher-dimensional tori shorten paths (fewer hops, lower latency) and give\n"
        "the re-routing tables more orthogonal dimensions to detour through, so the\n"
        "software layer absorbs fewer messages — the motivation for extending the\n"
        "algorithm beyond two dimensions."
    )


if __name__ == "__main__":
    main()
