#!/usr/bin/env python
"""Quickstart: simulate Software-Based fault-tolerant routing on an 8-ary 2-cube.

This example mirrors the basic experiment of the paper: an 8x8 torus with a
few random node failures, wormhole switching with virtual channels, Poisson
traffic with uniform destinations, and the Software-Based fault-tolerant
routing algorithm in both its deterministic and adaptive flavours.  It prints
the mean message latency, the throughput and the number of messages absorbed
by the software layer for each flavour.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    SimulationConfig,
    TorusTopology,
    random_node_faults,
    run_simulation,
)


def main() -> None:
    # The paper's workhorse network: the 8-ary 2-cube (64 nodes).
    topology = TorusTopology(radix=8, dimensions=2)

    # Three random node failures; the injector guarantees the healthy network
    # stays connected (paper assumption (h)).
    faults = random_node_faults(topology, count=3, rng=42)
    print(f"Faulty nodes: {sorted(faults.nodes)}")

    for routing in ("swbased-deterministic", "swbased-adaptive"):
        config = SimulationConfig(
            topology=topology,
            routing=routing,
            num_virtual_channels=4,     # V
            message_length=32,          # M, flits
            injection_rate=0.004,       # lambda, messages/node/cycle
            faults=faults,
            warmup_messages=100,
            measure_messages=800,
            seed=7,
        )
        result = run_simulation(config)
        m = result.metrics
        print(
            f"{routing:24s}  latency = {m.mean_latency:6.1f} cycles   "
            f"throughput = {m.throughput_messages:.5f} msg/node/cycle   "
            f"messages absorbed = {m.messages_absorbed_total}"
        )

    print(
        "\nThe adaptive flavour absorbs far fewer messages (it only falls back to\n"
        "the software layer when every profitable channel is faulty), which is the\n"
        "paper's core observation in Figs. 6 and 7."
    )


if __name__ == "__main__":
    main()
