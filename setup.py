"""Setuptools shim.

This file exists so that legacy editable installs
(``pip install -e . --no-use-pep517``) work in offline environments where the
``wheel`` package is unavailable.  The runtime dependency list is declared
here (mirrored in ``requirements-dev.txt``, which CI installs from): the
library needs only numpy — the engine RNG is ``numpy.random`` and the array
kernel (``repro.network.kernel``) stores its virtual-channel state in numpy
arrays.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy"],
)
