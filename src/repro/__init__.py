"""repro — Software-Based fault-tolerant routing in multi-dimensional networks.

A reproduction of F. Safaei et al., *"Software-Based Fault-Tolerant Routing
Algorithm in Multi-Dimensional Networks"* (IPDPS 2006): a flit-level wormhole
network simulator for k-ary n-cubes with virtual channels, the deterministic
(e-cube) and adaptive (Duato's Protocol) baselines, and the Software-Based
fault-tolerant routing algorithm in its 2-D and n-D forms, together with the
fault models, traffic generators, metrics and experiment harness needed to
regenerate every figure of the paper.

Quickstart
----------
>>> from repro import SimulationConfig, TorusTopology, run_simulation
>>> from repro import random_node_faults
>>> topo = TorusTopology(radix=8, dimensions=2)
>>> cfg = SimulationConfig(
...     topology=topo,
...     routing="swbased-adaptive",
...     num_virtual_channels=4,
...     message_length=32,
...     injection_rate=0.002,
...     faults=random_node_faults(topo, 3, rng=42),
...     warmup_messages=50,
...     measure_messages=300,
... )
>>> result = run_simulation(cfg)
>>> result.mean_latency > 0
True
"""

from repro.core import (
    LivelockGuard,
    PlanarRerouter,
    ReroutingTables,
    SoftwareBasedRouting,
    SWBased2DRouting,
    build_channel_dependency_graph,
    is_deadlock_free,
)
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    LivelockError,
    ReproError,
    RoutingError,
    SimulationError,
)
from repro.faults import (
    FaultRegion,
    FaultSet,
    make_fault_region,
    paper_fig5_regions,
    random_link_faults,
    random_node_faults,
)
from repro.metrics import NetworkMetrics
from repro.routing import (
    DimensionOrderRouting,
    DuatoRouting,
    available_routing_algorithms,
    make_routing,
)
from repro.sim import (
    LoadSweepResult,
    ReplicatedSweepResult,
    ShardSpec,
    SimulationConfig,
    SimulationResult,
    StreamedResult,
    SweepExecutor,
    SweepPointCache,
    aggregate_replications,
    build_engine,
    config_hash,
    config_key,
    default_jobs,
    derive_child_seeds,
    derive_sweep_seeds,
    fault_count_sweep,
    injection_rate_sweep,
    run_simulation,
)
from repro.backends import (
    DirectoryBackend,
    MemoryBackend,
    ResultBackend,
    SQLiteBackend,
    open_backend,
    register_backend,
    scan_backend,
)
from repro.campaign import (
    CampaignPlan,
    PointStore,
    campaign_status,
    merge_campaign,
    run_campaign,
    work_campaign,
)
from repro.execution import ExecutionContext
from repro.topology import MeshTopology, TorusTopology
from repro.traffic import PoissonTraffic, make_pattern

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # topology
    "TorusTopology",
    "MeshTopology",
    # faults
    "FaultSet",
    "FaultRegion",
    "make_fault_region",
    "paper_fig5_regions",
    "random_node_faults",
    "random_link_faults",
    # routing
    "DimensionOrderRouting",
    "DuatoRouting",
    "SoftwareBasedRouting",
    "SWBased2DRouting",
    "PlanarRerouter",
    "ReroutingTables",
    "make_routing",
    "available_routing_algorithms",
    # verification
    "build_channel_dependency_graph",
    "is_deadlock_free",
    "LivelockGuard",
    # traffic
    "PoissonTraffic",
    "make_pattern",
    # simulation
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "build_engine",
    "injection_rate_sweep",
    "fault_count_sweep",
    "LoadSweepResult",
    "ShardSpec",
    "SweepExecutor",
    "SweepPointCache",
    "StreamedResult",
    "ReplicatedSweepResult",
    "aggregate_replications",
    "config_hash",
    "config_key",
    "default_jobs",
    "derive_child_seeds",
    "derive_sweep_seeds",
    "NetworkMetrics",
    # result backends
    "ResultBackend",
    "MemoryBackend",
    "DirectoryBackend",
    "SQLiteBackend",
    "open_backend",
    "register_backend",
    "scan_backend",
    # execution context
    "ExecutionContext",
    # campaigns
    "CampaignPlan",
    "PointStore",
    "campaign_status",
    "merge_campaign",
    "run_campaign",
    "work_campaign",
    # errors
    "ReproError",
    "ConfigurationError",
    "RoutingError",
    "DeadlockError",
    "LivelockError",
    "SimulationError",
]
