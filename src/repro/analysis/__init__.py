"""Post-processing: saturation detection, reporting, plotting and the analytical model.

* :mod:`repro.analysis.saturation` — zero-load latency and saturation-point
  estimation from load sweeps;
* :mod:`repro.analysis.tables` — tabular/CSV reporting of simulation results;
* :mod:`repro.analysis.plotting` — dependency-free ASCII rendering of latency
  curves and fault regions (Fig. 1 of the paper);
* :mod:`repro.analysis.analytical` — an approximate analytical latency model
  for wormhole-switched k-ary n-cubes, the "next objective" the paper lists as
  future work (Section 6), provided here as an extension.
"""

from repro.analysis.analytical import AnalyticalLatencyModel
from repro.analysis.plotting import ascii_curve, ascii_multi_series, render_fault_region
from repro.analysis.saturation import (
    estimate_saturation_rate,
    theoretical_capacity,
    zero_load_latency,
)
from repro.analysis.tables import (
    format_table,
    replicated_series_table,
    results_to_rows,
    series_table,
    write_csv,
)

__all__ = [
    "zero_load_latency",
    "theoretical_capacity",
    "estimate_saturation_rate",
    "results_to_rows",
    "format_table",
    "series_table",
    "replicated_series_table",
    "write_csv",
    "ascii_curve",
    "ascii_multi_series",
    "render_fault_region",
    "AnalyticalLatencyModel",
]
