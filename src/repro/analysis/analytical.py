"""Approximate analytical latency model for wormhole-switched k-ary n-cubes.

The paper closes with "our next object is to develop an analytical modeling
approach to investigate the performance behavior of Software-Based
fault-tolerant routing" (Section 6).  This module provides that extension: a
closed-form approximation of the mean message latency under uniform Poisson
traffic, in the spirit of the classical M/G/1-based wormhole models
(Draper & Ghosh; Ould-Khaoua), extended with a first-order correction for the
software re-routing overhead.

The model is deliberately simple — it is meant for sanity-checking simulation
trends and for choosing sweep ranges, not for absolute accuracy:

* messages have fixed length ``M`` flits and travel ``d̄`` hops on average;
* each of the ``2n`` outgoing channels of a node receives
  ``λ·d̄ / (2n)`` messages per cycle;
* a message holds a channel for approximately ``M`` cycles, so the channel
  utilisation is ``ρ = λ_c · M``;
* the mean waiting time per hop follows the M/G/1 approximation
  ``W = ρ·M / (2·(1-ρ))`` damped by the number of virtual channels;
* faults add, per message, ``p_abs`` absorptions on average, each costing one
  extra source-queueing pass plus the detour distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.saturation import average_distance
from repro.faults.model import FaultSet
from repro.topology.base import Topology

__all__ = ["AnalyticalLatencyModel"]


@dataclass
class AnalyticalLatencyModel:
    """Mean-latency estimator for a given network configuration.

    Parameters
    ----------
    topology:
        The k-ary n-cube being modelled.
    message_length:
        Message length ``M`` in flits.
    num_virtual_channels:
        Virtual channels per physical channel; more virtual channels soften
        head-of-line blocking, which the model captures with a ``1/V`` damping
        of the per-hop waiting time (the classical first-order correction).
    faults:
        Static fault set; only its size enters the model.
    adaptive:
        Adaptive routing spreads traffic over the profitable dimensions, which
        the model reflects by halving the effective per-hop waiting time and by
        using a much smaller absorption probability (adaptive messages are
        absorbed only when *every* profitable channel is faulty).
    """

    topology: Topology
    message_length: int
    num_virtual_channels: int = 4
    faults: FaultSet = None  # type: ignore[assignment]
    adaptive: bool = False

    def __post_init__(self) -> None:
        if self.message_length < 1:
            raise ValueError("message_length must be at least 1 flit")
        if self.num_virtual_channels < 1:
            raise ValueError("num_virtual_channels must be at least 1")
        if self.faults is None:
            self.faults = FaultSet.empty()

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #
    @property
    def mean_distance(self) -> float:
        """Average hop count ``d̄`` under uniform traffic."""
        return average_distance(self.topology)

    def channel_rate(self, injection_rate: float) -> float:
        """Messages per cycle offered to one outgoing channel of a node."""
        return injection_rate * self.mean_distance / (2 * self.topology.dimensions)

    def channel_utilisation(self, injection_rate: float) -> float:
        """Utilisation ``ρ`` of a physical channel (flit-slots in use)."""
        return self.channel_rate(injection_rate) * self.message_length

    def saturation_rate(self) -> float:
        """Injection rate at which the modelled channel utilisation reaches 1."""
        return 2 * self.topology.dimensions / (self.mean_distance * self.message_length)

    def absorption_probability(self) -> float:
        """Probability that a message is absorbed at least once on its way.

        For deterministic routing a message is absorbed whenever any of the
        ``d̄`` routers it visits would forward it into a faulty component;
        with ``f`` faulty nodes out of ``N`` the per-hop probability is
        approximately ``f / N``.  Adaptive routing only absorbs when all of
        its (on average ``n``) profitable channels are faulty, which the model
        approximates with ``(f / N)**n``.
        """
        n_nodes = self.topology.num_nodes
        f = self.faults.num_faulty_nodes
        if f == 0:
            return 0.0
        per_hop = min(1.0, f / n_nodes)
        if self.adaptive:
            per_hop = per_hop ** self.topology.dimensions
        return min(1.0, per_hop * self.mean_distance)

    # ------------------------------------------------------------------ #
    # the model
    # ------------------------------------------------------------------ #
    def mean_latency(self, injection_rate: float, reinjection_delay: int = 0) -> float:
        """Predicted mean message latency (cycles) at the given injection rate.

        Returns ``inf`` at or beyond the modelled saturation rate.
        """
        if injection_rate < 0:
            raise ValueError("injection_rate must be non-negative")
        d_bar = self.mean_distance
        m = self.message_length
        rho = self.channel_utilisation(injection_rate)
        if rho >= 1.0:
            return float("inf")

        base = d_bar + m
        # M/G/1-style per-hop blocking, damped by virtual channels (and by the
        # path diversity of adaptive routing).
        wait_per_hop = (rho * m) / (2.0 * (1.0 - rho))
        wait_per_hop /= max(1, self.num_virtual_channels - 1)
        if self.adaptive:
            wait_per_hop /= 2.0
        blocking = d_bar * wait_per_hop

        # Software re-routing overhead: each absorption re-serialises the
        # message (another M cycles), adds the re-injection delay and a short
        # detour (2 extra hops on average).
        p_abs = self.absorption_probability()
        rerouting = p_abs * (m + reinjection_delay + 2.0)

        return base + blocking + rerouting

    def latency_curve(self, injection_rates) -> list:
        """Vectorised convenience wrapper over :meth:`mean_latency`."""
        return [self.mean_latency(rate) for rate in injection_rates]
