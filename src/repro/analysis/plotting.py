"""Dependency-free ASCII plotting.

The evaluation figures of the paper are line charts (latency/throughput vs a
swept parameter) and a schematic of fault-region shapes (Fig. 1).  To keep the
library runnable in headless, offline environments the reproduction renders
both as plain text: good enough to eyeball the shape of a curve in a terminal
or a log file, and trivially testable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.faults.model import FaultSet
from repro.faults.regions import FaultRegion
from repro.topology.base import Topology

__all__ = ["ascii_curve", "ascii_multi_series", "render_fault_region"]

_SERIES_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(pos * (cells - 1)))))


def ascii_curve(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "o",
) -> str:
    """Render one series as an ASCII scatter/line chart."""
    return ascii_multi_series([(y_label, xs, ys)], width=width, height=height,
                              x_label=x_label, markers=marker)


def ascii_multi_series(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    markers: Optional[str] = None,
) -> str:
    """Render several (label, xs, ys) series in one ASCII chart.

    Each series gets a distinct marker; a legend is appended below the chart.
    Points with NaN values are skipped.
    """
    cleaned: List[Tuple[str, List[float], List[float]]] = []
    for label, xs, ys in series:
        pts = [(x, y) for x, y in zip(xs, ys) if y == y and x == x]
        if pts:
            cleaned.append((label, [p[0] for p in pts], [p[1] for p in pts]))
    if not cleaned:
        return "(no data to plot)"

    all_x = [x for _, xs, _ in cleaned for x in xs]
    all_y = [y for _, _, ys in cleaned for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    grid = [[" "] * width for _ in range(height)]
    marker_cycle = markers if markers else _SERIES_MARKERS
    for idx, (label, xs, ys) in enumerate(cleaned):
        mark = marker_cycle[idx % len(marker_cycle)]
        for x, y in zip(xs, ys):
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = mark

    lines = []
    lines.append(f"{y_hi:>10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_lo:>10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    lines.append(" " * 12 + f"{x_lo:<.4g}".ljust(width - 10) + f"{x_hi:>.4g}")
    lines.append(" " * 12 + x_label)
    legend = []
    for idx, (label, _, _) in enumerate(cleaned):
        legend.append(f"  {marker_cycle[idx % len(marker_cycle)]} = {label}")
    lines.extend(legend)
    return "\n".join(lines)


def render_fault_region(
    topology: Topology,
    faults: FaultSet | FaultRegion,
    plane: Tuple[int, int] = (0, 1),
    fixed: Optional[Sequence[int]] = None,
) -> str:
    """Render the faulty/healthy nodes of a 2-D plane of the network (Fig. 1).

    Parameters
    ----------
    topology:
        The network.
    faults:
        Either a :class:`FaultSet` or a :class:`FaultRegion`.
    plane:
        The two dimensions ``(x_dim, y_dim)`` to draw.
    fixed:
        Coordinates used for every other dimension (defaults to the anchor of
        a :class:`FaultRegion`, or all zeros for a plain fault set).

    Returns
    -------
    str
        A grid of characters: ``X`` marks a faulty node, ``.`` a healthy one.
        Row 0 is printed at the bottom so the rendering matches the usual
        Cartesian orientation of the paper's Fig. 1.
    """
    if isinstance(faults, FaultRegion):
        fault_set = faults.to_fault_set()
        if fixed is None:
            fixed = faults.anchor
    else:
        fault_set = faults
    x_dim, y_dim = plane
    if fixed is None:
        fixed = [0] * topology.dimensions
    base = list(fixed)
    kx = topology.radices[x_dim]
    ky = topology.radices[y_dim]

    rows: List[str] = []
    for y in range(ky - 1, -1, -1):
        cells = []
        for x in range(kx):
            coords = list(base)
            coords[x_dim] = x
            coords[y_dim] = y
            node = topology.node_id(coords)
            cells.append("X" if fault_set.is_node_faulty(node) else ".")
        rows.append(f"{y:>3} " + " ".join(cells))
    footer_axis = "    " + " ".join(f"{x % 10}" for x in range(kx))
    rows.append(footer_axis)
    return "\n".join(rows)
