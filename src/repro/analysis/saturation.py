"""Zero-load latency, theoretical capacity and saturation-point estimation.

The paper's latency figures (Figs. 3-5) all share the same shape: a flat
region near the zero-load latency followed by a steep rise as the offered load
approaches the saturation throughput.  The helpers in this module compute the
two anchors of that shape analytically (zero-load latency and capacity) and
estimate the empirical saturation rate from a measured load sweep, which the
experiment harness uses both to choose sensible sweep ranges and to report the
"who saturates first" ordering that the paper's conclusions rest on.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.sweep import LoadSweepResult
from repro.topology.base import Topology

__all__ = ["zero_load_latency", "theoretical_capacity", "estimate_saturation_rate"]


def average_distance(topology: Topology) -> float:
    """Mean minimal hop distance between distinct nodes under uniform traffic.

    For a k-ary n-cube this is ``n * k / 4`` for even ``k`` and
    ``n * (k - 1/k) / 4`` for odd ``k``; the generic implementation simply
    averages per-dimension ring distances, which also covers meshes and
    mixed-radix networks.
    """
    total = 0.0
    for k in topology.radices:
        if topology.wraparound:
            # Average distance on a k-node ring (uniform over all pairs
            # including the zero-offset pair, excluded globally below).
            if k % 2 == 0:
                ring = k / 4.0
            else:
                ring = (k * k - 1) / (4.0 * k)
        else:
            ring = (k * k - 1) / (3.0 * k)  # mean |i - j| over a path graph
        total += ring
    # The per-dimension averages above include the source node itself; for the
    # usual "destination != source" convention the correction factor is
    # N/(N-1), negligible for the network sizes of interest but kept exact.
    n_nodes = topology.num_nodes
    return total * n_nodes / (n_nodes - 1)


def zero_load_latency(topology: Topology, message_length: int) -> float:
    """Latency of a message that never blocks (cycles).

    Under wormhole switching the header pipeline and the message serialisation
    overlap: the last flit arrives ``average distance + message length`` cycles
    after the header leaves the source (with single-cycle routers and ``Td=0``).
    """
    if message_length < 1:
        raise ValueError("message_length must be at least 1 flit")
    return average_distance(topology) + message_length


def theoretical_capacity(topology: Topology, message_length: int) -> float:
    """Upper bound on the deliverable load, in messages/node/cycle.

    Each delivered message occupies ``average distance`` channels for
    ``message_length`` cycles; the network offers ``2n`` outgoing channels per
    node with one flit per channel per cycle.  Wormhole networks saturate well
    below this bound (typically at 30-60 % of it), but the bound is the right
    normaliser when comparing configurations with different ``V`` and ``M``.
    """
    if message_length < 1:
        raise ValueError("message_length must be at least 1 flit")
    channels_per_node = 2 * topology.dimensions
    return channels_per_node / (average_distance(topology) * message_length)


def estimate_saturation_rate(
    sweep: LoadSweepResult,
    latency_factor: float = 3.0,
    zero_load: Optional[float] = None,
) -> Optional[float]:
    """Estimate the saturation injection rate from a measured load sweep.

    The saturation point is taken as the smallest injection rate at which
    either (a) the engine declared the run saturated, or (b) the measured mean
    latency exceeds ``latency_factor`` times the zero-load latency (the first
    point of the sweep when ``zero_load`` is not supplied).  Returns ``None``
    when the sweep never saturates.
    """
    if not sweep.rates:
        return None
    baseline = zero_load if zero_load is not None else sweep.latencies[0]
    if baseline <= 0:
        baseline = min(lat for lat in sweep.latencies if lat > 0)
    for rate, latency, saturated in zip(sweep.rates, sweep.latencies, sweep.saturated):
        if saturated:
            return rate
        if latency > latency_factor * baseline:
            return rate
    return None
