"""Tabular reporting of simulation results.

The paper presents its results as figures; the reproduction additionally
prints the underlying numbers as aligned ASCII tables and CSV files so that
EXPERIMENTS.md can record paper-vs-measured comparisons and so the benchmark
harness has machine-readable output.
"""

from __future__ import annotations

import csv
from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.parallel import ReplicatedSweepResult
from repro.sim.runner import SimulationResult
from repro.sim.sweep import LoadSweepResult

__all__ = [
    "results_to_rows",
    "format_table",
    "series_table",
    "replicated_series_table",
    "campaign_status_table",
    "write_csv",
]


def results_to_rows(results: Iterable[SimulationResult]) -> List[Dict[str, object]]:
    """Flatten simulation results into dictionaries for tabular output."""
    return [result.as_row() for result in results]


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.4g}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned, pipe-separated ASCII table.

    Parameters
    ----------
    rows:
        Dictionaries sharing (a superset of) the requested columns.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading printed above the table.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in cols]]
    for row in rows:
        table.append([_format_value(row.get(c, "")) for c in cols])
    widths = [max(len(line[i]) for line in table) for i in range(len(cols))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(name.ljust(width) for name, width in zip(table[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in table[1:]:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def _series_grid(sweeps, cell, title: str) -> str:
    """Shared row/column assembly for the side-by-side sweep tables.

    Rates appearing in any sweep form the row index; ``cell(sweep, i)``
    formats sweep point ``i``, and points a sweep does not cover are left
    blank.
    """
    all_rates = sorted({rate for sweep in sweeps for rate in sweep.rates})
    rows: List[Dict[str, object]] = []
    for rate in all_rates:
        row: Dict[str, object] = {"rate": f"{rate:g}"}
        for sweep in sweeps:
            value = ""
            for i, r in enumerate(sweep.rates):
                if abs(r - rate) < 1e-12:
                    value = cell(sweep, i)
                    break
            row[sweep.label] = value
        rows.append(row)
    columns = ["rate"] + [sweep.label for sweep in sweeps]
    return format_table(rows, columns=columns, title=title)


def series_table(sweeps: Sequence[LoadSweepResult], metric: str = "latency") -> str:
    """Render several load sweeps side by side (one column per series).

    ``metric`` selects ``"latency"`` or ``"throughput"``.  Rates that appear in
    any sweep form the row index; missing points are left blank, and saturated
    points are marked with a trailing ``*`` as in the EXPERIMENTS.md notation.
    A list made up entirely of replicated sweeps is dispatched to
    :func:`replicated_series_table` so its confidence intervals are rendered;
    a mixed list falls back to plain means for every series (call
    :func:`replicated_series_table` directly to keep the intervals).
    """
    if metric not in ("latency", "throughput"):
        raise ValueError("metric must be 'latency' or 'throughput'")
    if sweeps and all(isinstance(s, ReplicatedSweepResult) for s in sweeps):
        return replicated_series_table(sweeps, metric=metric)

    def cell(sweep: LoadSweepResult, i: int) -> str:
        base = sweep.latencies[i] if metric == "latency" else sweep.throughputs[i]
        return f"{base:.3f}" + ("*" if sweep.saturated[i] else "")

    return _series_grid(sweeps, cell, title=f"mean {metric} vs injection rate")


def replicated_series_table(
    sweeps: Sequence[ReplicatedSweepResult], metric: str = "latency"
) -> str:
    """Render replicated sweeps side by side as ``mean ± ci`` columns.

    Same layout as :func:`series_table` but each cell shows the replication
    mean with its 95 % confidence-interval half width (``±`` omitted when no
    interval exists, i.e. for a single replication); saturated points carry
    the trailing ``*`` marker.
    """
    if metric not in ("latency", "throughput"):
        raise ValueError("metric must be 'latency' or 'throughput'")

    def cell(sweep: ReplicatedSweepResult, i: int) -> str:
        mean = (sweep.latency_mean if metric == "latency" else sweep.throughput_mean)[i]
        ci = (sweep.latency_ci if metric == "latency" else sweep.throughput_ci)[i]
        value = f"{mean:.3f}"
        if ci == ci:  # not NaN: an interval exists
            value += f" ±{ci:.3f}"
        if sweep.saturated[i]:
            value += "*"
        return value

    return _series_grid(sweeps, cell, title=f"mean {metric} ± 95% CI vs injection rate")


def campaign_status_table(status) -> str:
    """Render a campaign's plan-vs-store completion as an ASCII table.

    ``status`` is any object with the
    :class:`repro.campaign.runner.CampaignStatus` attributes (duck-typed so
    this reporting layer needs no campaign import): ``directory``, ``kind``,
    ``total_units``, ``completed_units``, ``pending_units``, ``members`` —
    ``(store member file, record count)`` pairs, one per writer/shard — and
    ``skipped_records`` (torn lines ignored by the store loader).
    """
    rows: List[Dict[str, object]] = [
        {"member": name, "records": count} for name, count in status.members
    ]
    if not rows:
        rows = [{"member": "(no store files yet)", "records": 0}]
    title = (
        f"campaign {status.directory} [{status.kind}]: "
        f"{status.completed_units}/{status.total_units} units complete, "
        f"{status.pending_units} pending"
    )
    backend = getattr(status, "backend", "")
    if backend:
        title += f" (backend {backend})"
    if status.skipped_records:
        title += f" ({status.skipped_records} torn records skipped)"
    table = format_table(rows, columns=["member", "records"], title=title)
    # Work-stealing health, when lease records or worker heartbeats exist
    # (campaigns run purely with static shards show nothing extra).
    work = getattr(status, "work", None)
    if work and (work.get("workers") or work.get("active_leases") or work.get("expired_leases")):
        active = sum(1 for w in work.get("workers", ()) if w.get("active"))
        table += (
            f"\nworkers: {active} active of {len(work.get('workers', ()))} seen; "
            f"leases: {work.get('active_leases', 0)} active, "
            f"{work.get('expired_leases', 0)} expired; "
            f"{work.get('reclaims', 0)} reclaimed, "
            f"{work.get('retries', 0)} faults retried"
        )
    return table


def write_csv(rows: Sequence[Dict[str, object]], path: str) -> None:
    """Write rows to ``path`` as CSV (columns = union of keys, insertion order)."""
    if not rows:
        with open(path, "w", newline="") as fh:
            fh.write("")
        return
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
