"""The stable public facade: every blessed entry point in one import.

The library grew layer by layer — simulator, experiments, backends,
campaigns, telemetry, the serve daemon — and each layer has its own module
namespace with its own internals.  Scripts and downstream tools should not
have to know which of those modules an entry point happens to live in (or
chase it when a refactor moves it).  ``repro.api`` is the compatibility
surface: the names re-exported here are the ones the README documents, the
CLI wraps, and future versions keep importable from exactly this module.

    from repro import api

    ctx = api.ExecutionContext.resolve(jobs=4, backend="sqlite://points.db")
    curves = api.run_experiment("fig3", context=ctx)

    plan = api.CampaignPlan.from_experiment("fig3", replications=2)
    plan.save("campaigns/fig3")
    api.work_campaign("campaigns/fig3")

Everything here is a re-export; the implementations live (and are
documented) in their home modules.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import ResultBackend
from repro.backends.registry import open_backend, scan_backend
from repro.campaign.plan import SIMULATING_FIGURES, CampaignPlan
from repro.campaign.runner import (
    CampaignTransport,
    campaign_status,
    merge_campaign,
    run_campaign,
    work_campaign,
)
from repro.errors import ConfigurationError
from repro.execution import ExecutionContext
from repro.experiments import EXPERIMENTS
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale
from repro.serve.client import open_remote_campaign
from repro.serve.daemon import CampaignServer, CampaignService
from repro.sim.config import SimulationConfig, config_hash
from repro.sim.parallel import SweepExecutor
from repro.sim.runner import SimulationResult, run_simulation

__all__ = [
    # execution knobs
    "ExecutionContext",
    "ExperimentScale",
    "DEFAULT_SCALE",
    # one-shot simulation
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "config_hash",
    "SweepExecutor",
    # figure experiments
    "EXPERIMENTS",
    "SIMULATING_FIGURES",
    "run_experiment",
    # result storage
    "ResultBackend",
    "open_backend",
    "scan_backend",
    # campaign lifecycle
    "CampaignPlan",
    "CampaignTransport",
    "run_campaign",
    "work_campaign",
    "merge_campaign",
    "campaign_status",
    # the service daemon
    "CampaignServer",
    "CampaignService",
    "open_remote_campaign",
    # errors
    "ConfigurationError",
]


def run_experiment(
    figure: str, context: Optional[ExecutionContext] = None, **kwargs
):
    """Run one figure experiment by id under an execution context.

    The programmatic twin of ``python -m repro experiment <figure>``:
    ``figure`` is a key of :data:`EXPERIMENTS` (``"fig1"``, ``"fig3"`` …
    ``"fig7"``), ``context`` carries the jobs/replications/backend/scale
    decisions (default: resolve from the environment), and any extra
    keyword arguments go to the figure's ``run()`` unchanged.
    """
    try:
        module = EXPERIMENTS[figure]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {figure!r}: expected one of "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None
    if context is None:
        context = ExecutionContext.resolve()
    return module.run(context=context, **kwargs)
