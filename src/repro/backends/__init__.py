"""Pluggable result backends: where completed simulation points live.

Every layer that memoises ``(config, seed) -> NetworkMetrics`` — the
executor's in-process sweep cache, the campaign subsystem's durable store,
the experiment harness's ``--cache-dir`` plumbing — talks to the same
:class:`~repro.backends.base.ResultBackend` contract, keyed by the shared
:func:`repro.sim.config.config_hash` content-address.  Backends are selected
by URI through :func:`~repro.backends.registry.open_backend`:

* ``mem://`` / ``mem://<name>`` — in-memory
  (:class:`~repro.backends.memory.MemoryBackend`); named instances are
  shared process-wide, the anonymous form is private to its opener;
* ``dir://<path>`` — the append-only JSONL directory layout
  (:class:`~repro.backends.directory.DirectoryBackend`, historically
  ``PointStore``), unchanged on disk and member-file mergeable;
* ``sqlite://<path>`` — a single concurrent-writer-safe SQLite file
  (:class:`~repro.backends.sqlite.SQLiteBackend`);
* ``obj://<path>`` / ``s3://<bucket>/<prefix>`` / ``gs://<bucket>/<prefix>``
  — the content-addressed object layout
  (:class:`~repro.backends.objectstore.ObjectStoreBackend` over a minimal
  blob-client protocol: one whole-object blob per (config_hash,
  replication)), on a filesystem, in an S3 bucket or a GCS bucket via
  injectable clients — the fleet-scale members: many hosts stream shards
  into one shared store, any host merges.  Blob I/O is wrapped in the
  bounded-backoff retry layer (:mod:`repro.backends.retry`) by default;
* ``chaos+<scheme>://<location>?fail=0.2&seed=7`` — any registered scheme
  opened through seeded fault injection (:mod:`repro.backends.chaos`), so
  retry and crash-recovery paths are tested against real failure modes.

Stores also sync: every backend exposes its results as framed records
(``records()`` / ``put_record``), and :func:`~repro.backends.sync.
sync_backends` copies them between any two URIs with content-address dedup
— the primitive behind the CLI's ``campaign push`` / ``pull``.

Because a backend serves bit-identical metrics by construction, which
backend a sweep or campaign runs against — or through how many pushes and
pulls its records travelled — never changes a single output bit; the
backend-conformance test suite pins one shared contract against every
member.
"""

from repro.backends.base import BackendScan, ResultBackend, validate_member
from repro.backends.chaos import (
    ChaosBackendProxy,
    ChaosBlobClient,
    ChaosFault,
    ChaosSpec,
    parse_chaos_location,
)
from repro.backends.directory import DirectoryBackend, shard_member_name
from repro.backends.memory import MemoryBackend
from repro.backends.objectstore import (
    GCSBlobClient,
    InMemoryGCSClient,
    InMemoryS3Client,
    LocalObjectClient,
    ObjectStoreBackend,
    S3BlobClient,
    StubS3ClientError,
    set_gcs_client_factory,
    set_s3_client_factory,
)
from repro.backends.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    RetryStats,
    RetryingBlobClient,
    is_transient_error,
)
from repro.backends.registry import (
    DEFAULT_MEMBER,
    backend_schemes,
    open_backend,
    parse_backend_uri,
    register_backend,
    scan_backend,
)
from repro.backends.serialize import (
    config_from_dict,
    config_to_dict,
    frame_record,
    metrics_from_dict,
    metrics_to_dict,
    parse_record,
)
from repro.backends.sqlite import SQLiteBackend
from repro.backends.sync import SyncReport, sync_backends

__all__ = [
    "BackendScan",
    "ChaosBackendProxy",
    "ChaosBlobClient",
    "ChaosFault",
    "ChaosSpec",
    "DEFAULT_MEMBER",
    "DEFAULT_RETRY_POLICY",
    "DirectoryBackend",
    "GCSBlobClient",
    "InMemoryGCSClient",
    "InMemoryS3Client",
    "LocalObjectClient",
    "MemoryBackend",
    "ObjectStoreBackend",
    "ResultBackend",
    "RetryPolicy",
    "RetryStats",
    "RetryingBlobClient",
    "S3BlobClient",
    "SQLiteBackend",
    "StubS3ClientError",
    "SyncReport",
    "backend_schemes",
    "is_transient_error",
    "parse_chaos_location",
    "config_from_dict",
    "config_to_dict",
    "frame_record",
    "metrics_from_dict",
    "metrics_to_dict",
    "open_backend",
    "parse_backend_uri",
    "parse_record",
    "register_backend",
    "scan_backend",
    "set_gcs_client_factory",
    "set_s3_client_factory",
    "shard_member_name",
    "sync_backends",
    "validate_member",
]
