"""Pluggable result backends: where completed simulation points live.

Every layer that memoises ``(config, seed) -> NetworkMetrics`` — the
executor's in-process sweep cache, the campaign subsystem's durable store,
the experiment harness's ``--cache-dir`` plumbing — talks to the same
:class:`~repro.backends.base.ResultBackend` contract, keyed by the shared
:func:`repro.sim.config.config_hash` content-address.  Backends are selected
by URI through :func:`~repro.backends.registry.open_backend`:

* ``mem://`` / ``mem://<name>`` — in-memory
  (:class:`~repro.backends.memory.MemoryBackend`); named instances are
  shared process-wide, the anonymous form is private to its opener;
* ``dir://<path>`` — the append-only JSONL directory layout
  (:class:`~repro.backends.directory.DirectoryBackend`, historically
  ``PointStore``), unchanged on disk and member-file mergeable;
* ``sqlite://<path>`` — a single concurrent-writer-safe SQLite file
  (:class:`~repro.backends.sqlite.SQLiteBackend`), the stepping stone to
  object-store members.

Because a backend serves bit-identical metrics by construction, which
backend a sweep or campaign runs against never changes a single output bit —
the backend-conformance test suite pins one shared contract against all
three.
"""

from repro.backends.base import BackendScan, ResultBackend, validate_member
from repro.backends.directory import DirectoryBackend, shard_member_name
from repro.backends.memory import MemoryBackend
from repro.backends.registry import (
    DEFAULT_MEMBER,
    backend_schemes,
    open_backend,
    parse_backend_uri,
    register_backend,
    scan_backend,
)
from repro.backends.serialize import (
    config_from_dict,
    config_to_dict,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.backends.sqlite import SQLiteBackend

__all__ = [
    "BackendScan",
    "DEFAULT_MEMBER",
    "DirectoryBackend",
    "MemoryBackend",
    "ResultBackend",
    "SQLiteBackend",
    "backend_schemes",
    "config_from_dict",
    "config_to_dict",
    "metrics_from_dict",
    "metrics_to_dict",
    "open_backend",
    "parse_backend_uri",
    "register_backend",
    "scan_backend",
    "shard_member_name",
    "validate_member",
]
