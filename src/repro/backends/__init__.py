"""Pluggable result backends: where completed simulation points live.

Every layer that memoises ``(config, seed) -> NetworkMetrics`` — the
executor's in-process sweep cache, the campaign subsystem's durable store,
the experiment harness's ``--cache-dir`` plumbing — talks to the same
:class:`~repro.backends.base.ResultBackend` contract, keyed by the shared
:func:`repro.sim.config.config_hash` content-address.  Backends are selected
by URI through :func:`~repro.backends.registry.open_backend`:

* ``mem://`` / ``mem://<name>`` — in-memory
  (:class:`~repro.backends.memory.MemoryBackend`); named instances are
  shared process-wide, the anonymous form is private to its opener;
* ``dir://<path>`` — the append-only JSONL directory layout
  (:class:`~repro.backends.directory.DirectoryBackend`, historically
  ``PointStore``), unchanged on disk and member-file mergeable;
* ``sqlite://<path>`` — a single concurrent-writer-safe SQLite file
  (:class:`~repro.backends.sqlite.SQLiteBackend`);
* ``obj://<path>`` / ``s3://<bucket>/<prefix>`` — the content-addressed
  object layout (:class:`~repro.backends.objectstore.ObjectStoreBackend`
  over a minimal blob-client protocol: one whole-object blob per
  (config_hash, replication)), on a filesystem or in an S3 bucket via an
  injectable client — the fleet-scale members: many hosts stream shards
  into one shared store, any host merges.

Stores also sync: every backend exposes its results as framed records
(``records()`` / ``put_record``), and :func:`~repro.backends.sync.
sync_backends` copies them between any two URIs with content-address dedup
— the primitive behind the CLI's ``campaign push`` / ``pull``.

Because a backend serves bit-identical metrics by construction, which
backend a sweep or campaign runs against — or through how many pushes and
pulls its records travelled — never changes a single output bit; the
backend-conformance test suite pins one shared contract against every
member.
"""

from repro.backends.base import BackendScan, ResultBackend, validate_member
from repro.backends.directory import DirectoryBackend, shard_member_name
from repro.backends.memory import MemoryBackend
from repro.backends.objectstore import (
    InMemoryS3Client,
    LocalObjectClient,
    ObjectStoreBackend,
    S3BlobClient,
    set_s3_client_factory,
)
from repro.backends.registry import (
    DEFAULT_MEMBER,
    backend_schemes,
    open_backend,
    parse_backend_uri,
    register_backend,
    scan_backend,
)
from repro.backends.serialize import (
    config_from_dict,
    config_to_dict,
    frame_record,
    metrics_from_dict,
    metrics_to_dict,
    parse_record,
)
from repro.backends.sqlite import SQLiteBackend
from repro.backends.sync import SyncReport, sync_backends

__all__ = [
    "BackendScan",
    "DEFAULT_MEMBER",
    "DirectoryBackend",
    "InMemoryS3Client",
    "LocalObjectClient",
    "MemoryBackend",
    "ObjectStoreBackend",
    "ResultBackend",
    "S3BlobClient",
    "SQLiteBackend",
    "SyncReport",
    "backend_schemes",
    "config_from_dict",
    "config_to_dict",
    "frame_record",
    "metrics_from_dict",
    "metrics_to_dict",
    "open_backend",
    "parse_backend_uri",
    "parse_record",
    "register_backend",
    "scan_backend",
    "set_s3_client_factory",
    "shard_member_name",
    "sync_backends",
    "validate_member",
]
