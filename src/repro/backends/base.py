"""The ``ResultBackend`` contract shared by every result-storage layer.

A backend maps the content-address of a :class:`~repro.sim.config.
SimulationConfig` (the shared :func:`repro.sim.config.config_hash` — a pure
function of the dynamics-relevant fields, so the seed is part of the key and
``metadata`` relabels are not) to the :class:`~repro.metrics.collectors.
NetworkMetrics` a finished simulation produced.  The contract has two faces:

* the **executor cache face** (``get`` / ``put`` plus ``hits`` / ``misses``
  counters) that :class:`~repro.sim.parallel.SweepExecutor` drives — a hit
  returns the stored metrics rebound to the *requesting* configuration and
  detached from the index, so caller-side mutation can never corrupt the
  backend (the single implementation of that rebind lives here, in
  :meth:`ResultBackend.serve`);
* the **campaign face** (``__contains__`` over keys, ``keys()``,
  ``members()``, ``delete_keys()``) that the campaign lifecycle uses for
  resume decisions, status reports and garbage collection;
* the **sync face** (``records()`` / ``put_record``) that cross-store
  copying (:func:`repro.backends.sync.sync_backends`, the CLI's ``campaign
  push`` / ``pull``) uses to move framed records between any two backends
  with content-address dedup.

Concrete backends implement only the storage primitives ``_lookup`` /
``_commit`` / ``_discard`` / ``records`` plus the introspection methods; all shared
semantics — counter accounting, idempotent puts, detach-on-serve,
verify-on-sync — live here so the backends cannot drift apart.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.backends.serialize import (
    RECORD_VERSION,
    config_from_dict,
    metrics_from_dict,
    parse_record,
)
from repro.errors import ConfigurationError
from repro.metrics.collectors import NetworkMetrics
from repro.sim.config import SimulationConfig, config_hash
from repro.sim.runner import SimulationResult

__all__ = ["BackendScan", "RECORD_VERSION", "ResultBackend", "validate_member"]


def validate_member(member: str) -> str:
    """Check a writer/member name (a plain file stem) and return it."""
    if not member or "/" in member or member.startswith("."):
        raise ConfigurationError(
            f"invalid store member name {member!r}: expected a plain file stem "
            "such as 'points' or 'points-shard-1-of-2'"
        )
    return member


@dataclass(frozen=True)
class BackendScan:
    """The keys-only view of a backend location (:func:`~repro.backends.
    registry.scan_backend`): which content-addresses are stored, per-writer
    record counts, and how many torn records were skipped.  Cheap by design —
    status-style queries never pay for metrics reconstruction."""

    keys: FrozenSet[str]
    members: List[Tuple[str, int]]
    skipped_records: int


class ResultBackend(ABC):
    """Abstract ``(config, seed) -> NetworkMetrics`` store.

    Subclasses implement the storage primitives (:meth:`_lookup`,
    :meth:`_commit`, :meth:`__contains__`, :meth:`__len__`, :meth:`keys`,
    :meth:`members`); the cache-contract semantics are defined here once.
    """

    #: URI scheme the registry mounts this backend under.
    scheme: str = ""

    #: The shared content-address (subclasses may override with a cheaper
    #: process-local key, as the executor's in-memory sweep cache does).
    key_of = staticmethod(config_hash)

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.skipped_records = 0

    # ------------------------------------------------------------------ #
    # the executor cache face
    # ------------------------------------------------------------------ #
    def get(self, config: SimulationConfig) -> Optional[SimulationResult]:
        """The stored result for ``config``, rebound to it, or ``None``."""
        metrics = self._lookup(self.key_of(config))
        if metrics is None:
            self.misses += 1
            return None
        self.hits += 1
        return self.serve(config, metrics)

    @staticmethod
    def serve(config: SimulationConfig, metrics: NetworkMetrics) -> SimulationResult:
        """A stored metrics record as a served result.

        The single definition of hit semantics for every backend: the metrics
        are rebound to the *requesting* configuration (so the caller's labels
        survive a cross-label hit) and detached
        (:meth:`NetworkMetrics.detached`) so mutating a served result can
        never corrupt the backend's copy.
        """
        return SimulationResult(config=config, metrics=metrics.detached())

    def put(self, config: SimulationConfig, result: SimulationResult) -> None:
        """Persist a finished run (a no-op when the key is already stored).

        Idempotence lives in each backend's :meth:`_commit` rather than in a
        ``key in self`` pre-check here: a pre-check could not be atomic
        against concurrent writers anyway, and on the streaming hot path it
        would double the statement count of backends (SQLite) whose insert
        is already duplicate-safe.
        """
        self._commit(self.key_of(config), config, result.metrics.detached())

    def contains_config(self, config: SimulationConfig) -> bool:
        """Key lookup that, unlike :meth:`get`, touches no hit/miss counter."""
        return self.key_of(config) in self

    def metrics_for(self, key) -> Optional[NetworkMetrics]:
        """The stored metrics for ``key``, or ``None`` — no counter updates.

        The read the serve daemon's series assembly and record endpoint use:
        they address by *plan key* (the campaign manifest already carries
        every configuration), so rebuilding a config just to hash it again
        would be wasted work, and an assembly pass must not skew the
        hit/miss accounting that reports cache effectiveness.
        """
        return self._lookup(key)

    # ------------------------------------------------------------------ #
    # storage primitives
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _lookup(self, key) -> Optional[NetworkMetrics]:
        """The stored metrics for ``key``, or ``None``.  No counter updates."""

    @abstractmethod
    def _commit(self, key, config: SimulationConfig, metrics: NetworkMetrics) -> None:
        """Durably store one (already detached) record under ``key``.

        Must be idempotent: committing a key that is already stored is a
        no-op (records for one key are bit-identical by construction, so
        which writer wins is immaterial)."""

    # ------------------------------------------------------------------ #
    # the sync face
    # ------------------------------------------------------------------ #
    @abstractmethod
    def records(self) -> Iterator[Tuple[str, Dict]]:
        """Every stored record as ``(key, framed payload)`` pairs.

        The payload is the :func:`repro.backends.serialize.frame_record`
        object (version stamp, content-address, config provenance, metrics)
        — exactly what :meth:`put_record` on another backend accepts, which
        is what makes cross-store sync backend-agnostic.  Only defined for
        backends whose keys are the shared content-address; the executor's
        process-local tuple-keyed sweep cache is not syncable.
        """

    def put_record(self, record: Dict) -> None:
        """Commit one framed record copied from another backend.

        The single definition of sync-write semantics: the record is
        version-checked, its config and metrics are reconstructed, and the
        config's recomputed content-address must equal the record's key — a
        mismatch means the source store was written by an incompatible key
        function, and silently accepting it would turn every later lookup
        into an apparent miss.  Idempotent like :meth:`put` (duplicate keys
        are bit-identical by construction), and counted in neither ``hits``
        nor ``misses`` — a sync is not a cache access.
        """
        key, config_dict, metrics_dict = parse_record(record, where="(synced)")
        try:
            config = config_from_dict(config_dict)
            metrics = metrics_from_dict(metrics_dict)
        except (ConfigurationError, KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"synced record {str(key)[:12]}… does not reconstruct ({exc}); "
                "the source store was written by an incompatible library "
                "version — re-run the campaign instead of syncing it"
            ) from exc
        recomputed = config_hash(config)
        if recomputed != key:
            raise ConfigurationError(
                f"synced record hashes to {recomputed[:12]}… but carries key "
                f"{str(key)[:12]}…; the source store was written by an "
                "incompatible key function — re-run the campaign instead of "
                "syncing it"
            )
        self._commit(key, config, metrics)

    # ------------------------------------------------------------------ #
    # the campaign face
    # ------------------------------------------------------------------ #
    @abstractmethod
    def __contains__(self, key) -> bool:
        """Whether ``key`` (a :meth:`key_of` value) is stored."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored records."""

    @abstractmethod
    def keys(self) -> FrozenSet:
        """Every stored key."""

    @abstractmethod
    def members(self) -> List[Tuple[str, int]]:
        """``(writer/member name, record count)`` pairs, sorted by name."""

    def delete_keys(self, keys) -> int:
        """Remove every stored record whose key is in ``keys``.

        The destructive member of the campaign face, driven by ``campaign
        gc``.  Keys that are not stored are ignored, so callers can pass a
        computed set without pre-filtering.  Returns the number of stored
        keys actually removed (duplicate copies of one key — e.g. the same
        record in two directory member files — count once and are all
        removed).
        """
        doomed = frozenset(keys) & self.keys()
        if doomed:
            self._discard(doomed)
        return len(doomed)

    @abstractmethod
    def _discard(self, keys: FrozenSet) -> None:
        """Durably remove the records of ``keys`` (all currently stored).

        The storage primitive behind :meth:`delete_keys`, which owns the
        which-keys-exist accounting; implementations only translate removal
        into their storage layer."""

    def close(self) -> None:
        """Release any held resources (file handles, connections).  Safe to
        call more than once; the in-memory and directory backends hold none."""
