"""``chaos+<scheme>://`` — seeded fault injection over any registered backend.

The retry layer (:mod:`repro.backends.retry`) and the lease-based worker
loop (:mod:`repro.campaign.leases`) exist to survive real storage faults;
this module makes those faults *reproducible* so crash-recovery paths are
tested against actual failure modes, not mocks.  Prefixing any registered
backend scheme with ``chaos+`` opens the same store through a seeded fault
injector::

    chaos+dir:///tmp/campaign?fail=0.2&seed=7
    chaos+sqlite://points.sqlite?fail=0.1&delay=0.002&delay_rate=0.3
    chaos+obj:///tmp/objects?fail=0.2&torn=0.05&seed=3

Query parameters (everything after ``?`` belongs to chaos; the rest of the
location is passed to the base scheme untouched):

* ``fail`` (alias ``rate``, default 0.2) — probability each storage
  operation raises a *transient* :class:`ChaosFault` before touching the
  store;
* ``torn`` (blob schemes only, default 0) — probability a put writes a
  truncated ``*.tmp-chaos`` artifact and dies, simulating a writer killed
  between temp-write and rename (never a corrupt blob at the final
  content-addressed path — the real clients' atomic-put contract rules
  that out, and chaos must only inject faults the contract admits);
* ``delay`` / ``delay_rate`` — inject ``delay`` seconds of latency with
  probability ``delay_rate``;
* ``seed`` (default 0) — the injector's RNG seed: one seed, one op
  sequence, one fault schedule, so a chaos test that passes once passes
  always;
* ``attempts`` (default 8) — ``max_attempts`` of the paired fast
  :class:`~repro.backends.retry.RetryPolicy` the chaotic store retries
  itself with.

Blob-backed schemes (``obj``, ``s3``, ``gs``) are chained at the client
layer — base client → :class:`ChaosBlobClient` →
:class:`~repro.backends.retry.RetryingBlobClient` → the ordinary
:class:`~repro.backends.objectstore.ObjectStoreBackend` — so the exact
production retry path is exercised.  The in-process schemes (``mem``,
``dir``, ``sqlite``) are wrapped by :class:`ChaosBackendProxy`, which
injects faults around the backend's storage primitives and retries them
under the same policy.  Scans (``status``-style keys-only queries) pass
through to the base scheme unfaulted: chaos tests assert on status output,
so the observer must stay dependable while the participants misbehave.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterator, List, Optional, Tuple
from urllib.parse import parse_qsl

from repro.backends.base import BackendScan, ResultBackend
from repro.backends.retry import RetryPolicy, RetryStats, RetryingBlobClient
from repro.errors import ConfigurationError
from repro.metrics.collectors import NetworkMetrics
from repro.sim.config import SimulationConfig

__all__ = [
    "ChaosBackendProxy",
    "ChaosBlobClient",
    "ChaosFault",
    "ChaosSpec",
    "ChaosStats",
    "parse_chaos_location",
]

#: Base schemes whose chaos variant injects at the blob-client layer.
_BLOB_SCHEMES = ("obj", "s3", "gs")
#: Every base scheme a ``chaos+`` variant is registered for.
CHAOS_BASE_SCHEMES = ("mem", "dir", "sqlite") + _BLOB_SCHEMES


class ChaosFault(Exception):
    """An injected storage fault.

    Carries the explicit ``transient`` marker
    :func:`repro.backends.retry.is_transient_error` honours, so injected
    faults route through exactly the classification code real faults do.
    """

    def __init__(self, message: str, transient: bool = True) -> None:
        super().__init__(message)
        self.transient = transient


@dataclass
class ChaosStats:
    """What an injector actually did, for assertions and health reports."""

    ops: int = 0
    injected_faults: int = 0
    injected_delays: int = 0
    torn_writes: int = 0

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "injected_faults": self.injected_faults,
            "injected_delays": self.injected_delays,
            "torn_writes": self.torn_writes,
        }


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed fault-injection parameters of a ``chaos+`` URI."""

    fail_rate: float = 0.2
    torn_rate: float = 0.0
    delay_rate: float = 0.0
    delay: float = 0.0
    seed: int = 0
    attempts: int = 8

    def __post_init__(self) -> None:
        for name, rate in (
            ("fail", self.fail_rate),
            ("torn", self.torn_rate),
            ("delay_rate", self.delay_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"chaos {name} rate must be in [0, 1] (got {rate})"
                )
        if self.delay < 0:
            raise ConfigurationError(f"chaos delay must be >= 0 (got {self.delay})")
        if self.attempts < 1:
            raise ConfigurationError(
                f"chaos retry attempts must be >= 1 (got {self.attempts})"
            )

    def policy(self) -> RetryPolicy:
        """The fast retry policy paired with this injector.

        Millisecond-scale backoff: chaos runs inject *lots* of transient
        faults on purpose, and the delays only need to exercise the backoff
        code path, not model a real S3 brown-out.
        """
        return RetryPolicy(
            max_attempts=self.attempts,
            base_delay=0.001,
            max_delay=0.01,
            seed=self.seed,
        )


_CHAOS_KEYS = ("fail", "rate", "torn", "delay", "delay_rate", "seed", "attempts")


def parse_chaos_location(location: str) -> Tuple[str, ChaosSpec]:
    """Split a chaos location into ``(base location, ChaosSpec)``.

    The chaos parameters ride in the URI query so one ``--backend`` string
    configures the whole experiment; the base location (everything before
    ``?``) is handed to the underlying scheme untouched.
    """
    base, _, query = location.partition("?")
    values = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key not in _CHAOS_KEYS:
            raise ConfigurationError(
                f"unknown chaos parameter {key!r} in {location!r}; expected "
                f"{', '.join(k for k in _CHAOS_KEYS if k != 'rate')}"
            )
        values[key] = value
    try:
        spec = ChaosSpec(
            fail_rate=float(values.get("fail", values.get("rate", 0.2))),
            torn_rate=float(values.get("torn", 0.0)),
            delay_rate=float(values.get("delay_rate", 0.0)),
            delay=float(values.get("delay", 0.0)),
            seed=int(values.get("seed", 0)),
            attempts=int(values.get("attempts", 8)),
        )
    except ValueError as exc:
        raise ConfigurationError(
            f"malformed chaos parameter in {location!r}: {exc}"
        ) from exc
    return base, spec


class _Injector:
    """The seeded fault core shared by the blob and backend injectors."""

    def __init__(
        self, spec: ChaosSpec, sleep: Callable[[float], None] = time.sleep
    ) -> None:
        self.spec = spec
        self.chaos_stats = ChaosStats()
        self._rng = random.Random(spec.seed)
        self._sleep = sleep

    def _maybe_fault(self, op: str, what: str) -> None:
        self.chaos_stats.ops += 1
        if self._rng.random() < self.spec.fail_rate:
            self.chaos_stats.injected_faults += 1
            raise ChaosFault(f"chaos: injected transient {op} fault on {what!r}")
        if self.spec.delay_rate and self._rng.random() < self.spec.delay_rate:
            self.chaos_stats.injected_delays += 1
            self._sleep(self.spec.delay)

    def _maybe_tear(self) -> bool:
        return bool(self.spec.torn_rate) and self._rng.random() < self.spec.torn_rate


class ChaosBlobClient(_Injector):
    """A :class:`~repro.backends.objectstore.BlobClient` decorator that
    injects seeded faults before delegating.

    Sits *under* a :class:`~repro.backends.retry.RetryingBlobClient` so each
    retry attempt draws fresh fault dice — exactly how a real flaky
    transport behaves.
    """

    def __init__(
        self, inner, spec: ChaosSpec, sleep: Callable[[float], None] = time.sleep
    ) -> None:
        super().__init__(spec, sleep=sleep)
        self.inner = inner

    def put_blob(self, path: str, data: bytes) -> None:
        if self._maybe_tear():
            # A writer killed between temp-write and rename: half the bytes
            # land under a temp name, the final path is never touched.
            self.chaos_stats.torn_writes += 1
            self.inner.put_blob(f"{path}.tmp-chaos", data[: max(1, len(data) // 2)])
            raise ChaosFault(f"chaos: torn write on {path!r}")
        self._maybe_fault("put", path)
        self.inner.put_blob(path, data)

    def get_blob(self, path: str) -> bytes:
        self._maybe_fault("get", path)
        return self.inner.get_blob(path)

    def list_prefix(self, prefix: str) -> Iterator[str]:
        self._maybe_fault("list", prefix)
        return iter(list(self.inner.list_prefix(prefix)))

    def delete_blob(self, path: str) -> None:
        self._maybe_fault("delete", path)
        self.inner.delete_blob(path)


class ChaosBackendProxy(_Injector, ResultBackend):
    """A :class:`~repro.backends.base.ResultBackend` decorator injecting
    faults around the inner backend's storage primitives and retrying them
    under the spec's policy.

    The chaos analogue of :class:`ChaosBlobClient` for backends that have
    no blob layer (``mem``, ``dir``, ``sqlite``): every primitive runs as
    ``retry(inject; delegate)``, so a campaign against ``chaos+dir://``
    exercises the identical claim/commit/release logic a flaky filesystem
    would.
    """

    def __init__(
        self,
        inner: ResultBackend,
        spec: ChaosSpec,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        _Injector.__init__(self, spec, sleep=sleep)
        ResultBackend.__init__(self)
        self.inner = inner
        self.scheme = f"chaos+{inner.scheme}"
        self.retry_stats = RetryStats()
        self._policy = spec.policy()

    def _guarded(self, op: str, what: str, fn: Callable[[], object]) -> object:
        def attempt() -> object:
            self._maybe_fault(op, what)
            return fn()

        return self._policy.call(
            attempt, stats=self.retry_stats, token=f"{op}:{what}", sleep=self._sleep
        )

    # The proxy mirrors its inner backend's torn-record count; the base
    # class's ``self.skipped_records = 0`` assignment lands in the no-op
    # setter.
    @property
    def skipped_records(self) -> int:
        return self.inner.skipped_records

    @skipped_records.setter
    def skipped_records(self, value: int) -> None:
        pass

    # ------------------------------------------------------------------ #
    # storage primitives (each one injected + retried)
    # ------------------------------------------------------------------ #
    def _lookup(self, key) -> Optional[NetworkMetrics]:
        return self._guarded("get", str(key), lambda: self.inner._lookup(key))

    def _commit(self, key, config: SimulationConfig, metrics: NetworkMetrics) -> None:
        self._guarded("put", str(key), lambda: self.inner._commit(key, config, metrics))

    def _discard(self, keys: FrozenSet) -> None:
        self._guarded("delete", f"{len(keys)} keys", lambda: self.inner._discard(keys))

    def records(self) -> Iterator[tuple]:
        # Materialised inside the guard: a fault halfway through a lazy
        # record stream must retry the whole listing.
        yield from self._guarded("list", "records", lambda: list(self.inner.records()))

    # ------------------------------------------------------------------ #
    # introspection (delegated unfaulted: cheap local state on the inner
    # backend's index, not storage I/O)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.inner)

    def __contains__(self, key) -> bool:
        return key in self.inner

    def keys(self) -> FrozenSet:
        return self.inner.keys()

    def members(self) -> List[Tuple[str, int]]:
        return self.inner.members()

    def close(self) -> None:
        self.inner.close()


def _open_chaos(base_scheme: str) -> Callable[[str, str], ResultBackend]:
    def opener(location: str, member: str) -> ResultBackend:
        from repro.backends.registry import open_backend

        base_location, spec = parse_chaos_location(location)
        if base_scheme in _BLOB_SCHEMES:
            from repro.backends.objectstore import ObjectStoreBackend, blob_client_for

            chaotic = ChaosBlobClient(blob_client_for(base_scheme, base_location), spec)
            retrying = RetryingBlobClient(chaotic, policy=spec.policy())
            backend = ObjectStoreBackend(retrying, member=member)
            backend.scheme = f"chaos+{base_scheme}"
            backend.chaos_stats = chaotic.chaos_stats
            backend.retry_stats = retrying.stats
            return backend
        return ChaosBackendProxy(
            open_backend(f"{base_scheme}://{base_location}", member=member), spec
        )

    return opener


def _scan_chaos(base_scheme: str) -> Callable[[str], BackendScan]:
    def scanner(location: str) -> BackendScan:
        from repro.backends.registry import scan_backend

        base_location, _ = parse_chaos_location(location)
        return scan_backend(f"{base_scheme}://{base_location}")

    return scanner


def register_chaos_backends(register: Callable) -> None:
    """Mount a ``chaos+`` variant of every base scheme (called by the
    registry at import time, after the base schemes are registered)."""
    for scheme in CHAOS_BASE_SCHEMES:
        register(f"chaos+{scheme}", _open_chaos(scheme), _scan_chaos(scheme))
