"""The ``dir://`` backend: an append-only JSONL directory of result records.

This is the campaign subsystem's original disk layout (historically the
``PointStore`` class, a name :mod:`repro.campaign.store` still exports),
unchanged on disk and now one concrete member of the
:class:`~repro.backends.base.ResultBackend` family.  A backend directory
holds ``*.jsonl`` member files in which every line is one completed
``(config, seed) -> NetworkMetrics`` record keyed by the stable
:func:`repro.sim.config.config_hash` content-address.

Layout and durability:

* each writer appends to its own member file (``points.jsonl`` by default;
  shard runs use ``points-shard-I-of-N.jsonl``), so concurrent shards on a
  shared directory never interleave writes — and merging hosts is literally
  copying their member files into one directory; writers that do share a
  member file (two unsharded runs, two ``--cache-dir`` processes) are still
  safe on local filesystems because every record is appended with a single
  ``O_APPEND`` write syscall;
* every ``put`` is one self-contained line flushed immediately, so a killed
  run loses at most the line being written; loading skips torn or corrupt
  lines (counted in :attr:`~DirectoryBackend.skipped_records`) instead of
  failing, which is what makes kill-and-resume safe;
* records are idempotent: re-putting a known key is a no-op, and duplicate
  keys across member files resolve to the same (bit-identical) metrics.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.backends.base import (
    RECORD_VERSION,
    BackendScan,
    ResultBackend,
    validate_member,
)
from repro.backends.serialize import encode_record, frame_record, metrics_from_dict
from repro.errors import ConfigurationError
from repro.metrics.collectors import NetworkMetrics
from repro.sim.config import SimulationConfig

__all__ = ["DirectoryBackend", "shard_member_name"]


def shard_member_name(index: int, count: int) -> str:
    """The member/writer name used by shard ``index``/``count`` runs."""
    return f"points-shard-{index}-of-{count}"


class DirectoryBackend(ResultBackend):
    """Disk-backed ``(config, seed) -> NetworkMetrics`` store in a directory.

    Parameters
    ----------
    directory:
        The backend directory (created if missing).  *All* ``*.jsonl``
        member files found there are loaded into the index, so dropping
        another host's shard file into the directory is a merge.
    member:
        Stem of the member file this instance appends to (default
        ``"points"``).  Readers that never ``put`` — e.g. the merge step —
        can use any member name.
    """

    scheme = "dir"

    def __init__(self, directory: os.PathLike, member: str = "points") -> None:
        super().__init__()
        validate_member(member)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._member_path = self.directory / f"{member}.jsonl"
        self._index: Dict[str, NetworkMetrics] = {}
        self._member_counts: Dict[str, int] = {}
        self.reload()

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    @staticmethod
    def _parse_record(path: Path, number: int, line: str) -> Optional[dict]:
        """One member line as a record dict, or ``None`` for a torn line.

        Only *unparseable* lines are treated as torn (the signature of a
        killed writer): a line that parses but carries an unknown record
        version means the store was written by an incompatible library
        version, and silently re-simulating a whole campaign would be far
        worse than failing — so that raises an actionable error instead.
        """
        try:
            record = json.loads(line)
        except ValueError:
            return None
        if not isinstance(record, dict) or record.get("v") != RECORD_VERSION:
            raise ConfigurationError(
                f"store record {path.name}:{number} has version "
                f"{record.get('v') if isinstance(record, dict) else record!r} "
                f"but this library reads version {RECORD_VERSION}; the "
                "store was written by an incompatible library version — "
                "re-run the campaign into a fresh directory"
            )
        return record

    @classmethod
    def _scan_members(
        cls, directory: os.PathLike, on_record: Callable[[Path, int, dict], None]
    ) -> Tuple[Dict[str, int], int]:
        """Feed every intact record of every member file to ``on_record``.

        The single definition of what a backend directory *contains* — member
        glob, blank-line skip, torn-line counting — shared by the full
        :meth:`reload` and the keys-only :meth:`scan_keys` so the two can
        never disagree about which records exist.  Returns the per-member
        record counts and the number of torn lines skipped.
        """
        members: Dict[str, int] = {}
        skipped = 0
        for path in sorted(Path(directory).glob("*.jsonl")):
            count = 0
            with open(path, "r", encoding="utf-8") as fh:
                for number, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    record = cls._parse_record(path, number, line)
                    if record is None:
                        skipped += 1
                        continue
                    on_record(path, number, record)
                    count += 1
            members[path.name] = count
        return members, skipped

    def reload(self) -> None:
        """(Re)build the in-memory index from every member file on disk.

        Torn lines are skipped and counted in :attr:`skipped_records`; every
        intact record is still served, which is exactly the resume semantics
        a partial shard run needs.
        """
        self._index.clear()

        def index_record(path: Path, number: int, record: dict) -> None:
            try:
                key = record["key"]
                metrics = metrics_from_dict(record["metrics"])
            except (KeyError, TypeError) as exc:
                raise ConfigurationError(
                    f"store record {path.name}:{number} does not reconstruct "
                    f"({exc}); the metrics schema has drifted from the one "
                    "that wrote this store — re-run the campaign into a "
                    "fresh directory"
                ) from exc
            self._index[key] = metrics

        self._member_counts, self.skipped_records = self._scan_members(
            self.directory, index_record
        )

    @classmethod
    def scan_keys(cls, directory: os.PathLike) -> BackendScan:
        """Keys-only scan of a backend directory, without building a backend.

        Status-style queries ("which units are complete?") only need each
        record's content-address, so this skips the metrics reconstruction
        that dominates a full :class:`DirectoryBackend` load — on
        million-point campaigns that is the difference between a count and a
        merge-grade load.
        """
        keys = set()

        def collect(path: Path, number: int, record: dict) -> None:
            try:
                keys.add(record["key"])
            except KeyError as exc:
                raise ConfigurationError(
                    f"store record {path.name}:{number} has no key ({exc}); "
                    "the record schema has drifted from the one that wrote "
                    "this store — re-run the campaign into a fresh directory"
                ) from exc

        members, skipped = cls._scan_members(directory, collect)
        return BackendScan(
            keys=frozenset(keys), members=sorted(members.items()), skipped_records=skipped
        )

    # ------------------------------------------------------------------ #
    # storage primitives
    # ------------------------------------------------------------------ #
    def _lookup(self, key: str) -> Optional[NetworkMetrics]:
        return self._index.get(key)

    def _commit(self, key: str, config: SimulationConfig, metrics: NetworkMetrics) -> None:
        if key in self._index:
            return
        line = encode_record(frame_record(key, config, metrics))
        # One O_APPEND syscall per record: a crash tears at most this line
        # (which reload() then skips), and concurrent writers sharing the
        # member file — two unsharded runs, two --cache-dir processes — never
        # interleave mid-record the way buffered text appends would.  The
        # leading newline unconditionally terminates any torn, newline-less
        # fragment a killed writer left at EOF (checking first would race a
        # concurrent writer dying between check and write); the loader skips
        # the resulting blank lines.
        data = ("\n" + line + "\n").encode("utf-8")
        fd = os.open(self._member_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            while data:  # a short write (e.g. full filesystem) must not be
                data = data[os.write(fd, data) :]  # silently recorded as stored
        finally:
            os.close(fd)
        self._index[key] = metrics
        name = self._member_path.name
        self._member_counts[name] = self._member_counts.get(name, 0) + 1

    def _discard(self, keys: FrozenSet[str]) -> None:
        # The layout is append-only JSONL, so removal is a rewrite of every
        # member file that holds a doomed record (untouched files are left
        # byte-identical).  Each rewrite is atomic (temp file + os.replace),
        # so a kill mid-gc leaves every member either fully old or fully
        # new — never torn.  A member whose records are all removed is
        # deleted outright, matching a directory that never had the file;
        # torn lines in a rewritten member are dropped with it (they carry
        # no reconstructible record to keep).
        for path in sorted(self.directory.glob("*.jsonl")):
            kept: List[str] = []
            changed = False
            with open(path, "r", encoding="utf-8") as fh:
                for number, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    record = self._parse_record(path, number, line)
                    if record is None:
                        changed = True
                        continue
                    if record.get("key") in keys:
                        changed = True
                        continue
                    kept.append(line)
            if not changed:
                continue
            if kept:
                tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
                tmp.write_text("\n".join(kept) + "\n", encoding="utf-8")
                os.replace(tmp, path)
            else:
                path.unlink()
        self.reload()

    def records(self) -> Iterator[Tuple[str, dict]]:
        """Every on-disk record, raw, for cross-store sync.

        Rescans the member files (rather than re-framing the in-memory
        index) because the index deliberately drops the config provenance a
        synced record must carry.
        """
        collected: List[Tuple[str, dict]] = []

        def keep(path: Path, number: int, record: dict) -> None:
            try:
                collected.append((record["key"], record))
            except KeyError as exc:
                raise ConfigurationError(
                    f"store record {path.name}:{number} has no key ({exc}); "
                    "the record schema has drifted from the one that wrote "
                    "this store — re-run the campaign into a fresh directory"
                ) from exc

        self._scan_members(self.directory, keep)
        return iter(collected)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> FrozenSet[str]:
        return frozenset(self._index)

    def members(self) -> List[Tuple[str, int]]:
        """``(member file name, record count)`` pairs, sorted by name."""
        return sorted(self._member_counts.items())

    @property
    def member_path(self) -> Path:
        """The member file this instance appends to."""
        return self._member_path
