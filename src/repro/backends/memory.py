"""The ``mem://`` backend: an in-process dictionary of result records.

The zero-durability member of the backend family — what the executor's sweep
cache has always been, now speaking the shared
:class:`~repro.backends.base.ResultBackend` contract so tests, the
conformance suite and ephemeral campaign runs can swap it in wherever a
``dir://`` or ``sqlite://`` backend would go.

Two URI forms:

* ``mem://`` opens a *private* backend: every open is a fresh empty store
  that dies with its owner;
* ``mem://<name>`` opens a *named* backend shared process-wide: every open
  of the same name returns the same instance, which is what lets an
  in-process campaign lifecycle (run, then status, then merge) observe its
  own results.  Names never survive the process — a ``mem://`` campaign is
  for tests and throwaway runs, not for resume-across-invocations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.backends.base import ResultBackend
from repro.backends.serialize import frame_record
from repro.metrics.collectors import NetworkMetrics
from repro.sim.config import SimulationConfig

__all__ = ["MemoryBackend"]

#: Process-wide registry of named ``mem://<name>`` instances.
_NAMED_INSTANCES: Dict[str, "MemoryBackend"] = {}


class MemoryBackend(ResultBackend):
    """In-memory ``(config, seed) -> NetworkMetrics`` store."""

    scheme = "mem"

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self.name = name
        self._index: Dict[object, NetworkMetrics] = {}
        # Config provenance kept per key (a reference, not a copy) purely so
        # records() can frame full records for cross-store sync.
        self._configs: Dict[object, SimulationConfig] = {}

    @classmethod
    def open(cls, name: str = "") -> "MemoryBackend":
        """The instance for a ``mem://`` location.

        An empty ``name`` is the private form (always a fresh store); a
        non-empty name is served from the process-wide registry so separate
        opens share one store.
        """
        if not name:
            return cls()
        instance = _NAMED_INSTANCES.get(name)
        if instance is None:
            instance = _NAMED_INSTANCES[name] = cls(name)
        return instance

    @staticmethod
    def discard(name: str) -> None:
        """Drop a named instance from the process-wide registry (test hygiene)."""
        _NAMED_INSTANCES.pop(name, None)

    # ------------------------------------------------------------------ #
    # storage primitives
    # ------------------------------------------------------------------ #
    def _lookup(self, key) -> Optional[NetworkMetrics]:
        return self._index.get(key)

    def _commit(self, key, config: SimulationConfig, metrics: NetworkMetrics) -> None:
        if key not in self._index:
            self._index[key] = metrics
            self._configs[key] = config

    def _discard(self, keys: FrozenSet) -> None:
        for key in keys:
            self._index.pop(key, None)
            self._configs.pop(key, None)

    def records(self) -> Iterator[tuple]:
        # Framed lazily: serialisation cost is paid by the sync path, never
        # by the executor's put() hot path.
        for key, metrics in self._index.items():
            yield key, frame_record(key, self._configs[key], metrics)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key) -> bool:
        return key in self._index

    def keys(self) -> FrozenSet:
        return frozenset(self._index)

    def members(self) -> List[Tuple[str, int]]:
        # One logical member; an empty store reports none, matching a
        # directory backend with no member files yet.
        if not self._index:
            return []
        return [(f"mem://{self.name}", len(self._index))]

    def clear(self) -> None:
        """Drop every stored result (counters are kept)."""
        self._index.clear()
        self._configs.clear()
