"""The object-store backend family: ``obj://`` and ``s3://``.

Object stores are the fleet-scale members of the backend family: any number
of hosts run campaign shards against one shared bucket/prefix (or against
per-host stores later reconciled with ``campaign push`` / ``pull``), and any
host merges.  One :class:`ObjectStoreBackend` implements the whole
:class:`~repro.backends.base.ResultBackend` contract over a minimal key/blob
client protocol, so adding a new object store is a ~40-line client, not a
backend rewrite.

Layout — one content-addressed blob per (config_hash, replication)::

    <store root>/<member>/<config_hash>.json

Each blob is a complete framed record (:func:`repro.backends.serialize.
frame_record`: version stamp, key, config provenance, metrics) — byte-
identical to the corresponding ``dir://`` JSONL line.  Writers never share a
blob path (each shard writes under its own member prefix, exactly like the
directory layout's member files), every put is a whole-object write (there
is no such thing as a torn blob), and duplicate keys across members resolve
to the same bit-identical metrics, so concurrent shards on different hosts
converge without any coordination.

The blob client protocol (:class:`BlobClient`) is three methods:

* ``put_blob(path, data)`` — idempotent whole-object write (re-putting an
  existing path is a no-op or an identical overwrite: record bytes for one
  path are equal by construction);
* ``get_blob(path)`` — the blob's bytes (``KeyError`` when absent);
* ``list_prefix(prefix)`` — every stored blob path under a prefix.

Two members are registered:

* ``obj://<path>`` — :class:`LocalObjectClient`, the object layout on a
  local (or network-mounted) filesystem: the portable stepping stone, and
  the exact on-disk shape an S3 bucket sync would produce;
* ``s3://<bucket>/<prefix>`` — :class:`S3BlobClient` over an *injectable*
  boto3-style client.  ``boto3`` itself is an optional extra resolved
  lazily; tests (and CI) run the full conformance suite against
  :class:`InMemoryS3Client`, an in-memory double of the four boto3 calls
  used, injected with :func:`set_s3_client_factory`.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.backends.base import BackendScan, ResultBackend, validate_member
from repro.backends.serialize import (
    encode_record,
    frame_record,
    metrics_from_dict,
    parse_record,
)
from repro.errors import ConfigurationError
from repro.metrics.collectors import NetworkMetrics
from repro.sim.config import SimulationConfig
from repro.telemetry.events import EVENTS_PREFIX

__all__ = [
    "BlobClient",
    "EVENTS_PREFIX",
    "GCSBlobClient",
    "InMemoryGCSClient",
    "InMemoryS3Client",
    "LEASE_PREFIX",
    "LocalObjectClient",
    "ObjectStoreBackend",
    "S3BlobClient",
    "StubS3ClientError",
    "blob_client_for",
    "set_gcs_client_factory",
    "set_s3_client_factory",
]

#: Suffix of every record blob; anything else under the store prefix (e.g. a
#: crashed writer's temp file) is counted as skipped, the blob analogue of a
#: torn JSONL line.
_BLOB_SUFFIX = ".json"

#: Store prefix the lease/worker sidecar records of work-stealing campaigns
#: (:mod:`repro.campaign.leases`) live under.  Everything below it is
#: coordination state, not results: scans ignore it entirely (not even
#: counted as skipped), so lease traffic can never perturb member counts,
#: completion status or gc decisions.
LEASE_PREFIX = ".leases"

#: Store prefix the telemetry event batches of a campaign live under —
#: imported from :mod:`repro.telemetry.events` (its canonical home) and
#: ignored by scans for the same reason as ``LEASE_PREFIX``: events are
#: observability state, not results.


class BlobClient:
    """The minimal key/blob surface an object store must offer.

    Structural typing is deliberate — any object with these three methods
    works (the class exists for documentation and ``isinstance``-free
    clarity, not as a required base).
    """

    def put_blob(self, path: str, data: bytes) -> None:
        """Store ``data`` under ``path`` (idempotent whole-object write)."""
        raise NotImplementedError

    def get_blob(self, path: str) -> bytes:
        """The bytes stored under ``path``; raises ``KeyError`` when absent."""
        raise NotImplementedError

    def list_prefix(self, prefix: str) -> Iterable[str]:
        """Every stored blob path starting with ``prefix``."""
        raise NotImplementedError

    def delete_blob(self, path: str) -> None:
        """Remove the blob at ``path`` (a no-op when absent)."""
        raise NotImplementedError


class LocalObjectClient(BlobClient):
    """The object layout on a local filesystem (the ``obj://`` scheme).

    Paths are relative to ``root``.  Puts are atomic (write-temp +
    ``os.replace``), so a killed writer leaves at most a ``*.tmp-<pid>``
    file that listing reports and the backend counts as skipped — never a
    half-written record blob.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def put_blob(self, path: str, data: bytes) -> None:
        target = self.root / path
        if target.exists():
            return  # idempotent: record bytes for one path are equal
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, target)

    def get_blob(self, path: str) -> bytes:
        target = self.root / path
        try:
            return target.read_bytes()
        except FileNotFoundError:
            raise KeyError(path) from None

    def list_prefix(self, prefix: str) -> Iterator[str]:
        base = self.root / prefix if prefix else self.root
        if not base.is_dir():
            return
        for dirpath, _, filenames in os.walk(base):
            for name in filenames:
                full = Path(dirpath) / name
                yield full.relative_to(self.root).as_posix()

    def delete_blob(self, path: str) -> None:
        try:
            (self.root / path).unlink()
        except FileNotFoundError:
            pass  # idempotent: a concurrent gc already removed it


#: Returns a boto3-style S3 client; injectable so tests and boto3-less
#: environments run against :class:`InMemoryS3Client`.
_s3_client_factory: Optional[Callable[[], object]] = None


def set_s3_client_factory(
    factory: Optional[Callable[[], object]],
) -> Optional[Callable[[], object]]:
    """Install the factory ``s3://`` opens use to build their client.

    ``None`` restores the default (a lazy ``boto3.client("s3")``).  Returns
    the previously installed factory so callers can restore it.
    """
    global _s3_client_factory
    previous = _s3_client_factory
    _s3_client_factory = factory
    return previous


def _build_s3_client() -> object:
    if _s3_client_factory is not None:
        return _s3_client_factory()
    try:
        import boto3
    except ImportError as exc:
        raise ConfigurationError(
            "the s3:// backend needs the optional boto3 package (pip install "
            "boto3), or an injected client: repro.backends.objectstore."
            "set_s3_client_factory(lambda: my_client)"
        ) from exc
    return boto3.client("s3")


def _is_missing_key_error(exc: Exception) -> bool:
    """Whether an S3 SDK exception means "no such object".

    Recognised structurally (class name, or a botocore-style
    ``response["Error"]["Code"]``) so no botocore import is needed — the SDK
    stays an optional extra.
    """
    if type(exc).__name__ == "NoSuchKey":
        return True
    response = getattr(exc, "response", None)
    if isinstance(response, dict):
        code = response.get("Error", {}).get("Code")
        return code in ("NoSuchKey", "404")
    return False


class S3BlobClient(BlobClient):
    """Blob client over a boto3-style S3 client (the ``s3://`` scheme).

    Uses exactly three calls of the boto3 surface — ``put_object``,
    ``get_object`` and the paginated ``list_objects_v2`` — so any compatible
    SDK or stub (e.g. :class:`InMemoryS3Client`) drops in.  Object keys are
    ``<prefix>/<relative path>``.
    """

    def __init__(self, bucket: str, prefix: str, client: object) -> None:
        self.bucket = bucket
        self.prefix = prefix.strip("/")
        self._client = client

    def _object_key(self, path: str) -> str:
        return f"{self.prefix}/{path}" if self.prefix else path

    def put_blob(self, path: str, data: bytes) -> None:
        # An S3 PUT is already a whole-object atomic write, and record bytes
        # for one path are equal by construction, so an unconditional PUT is
        # idempotent in outcome — no read-before-write round trip needed.
        self._client.put_object(
            Bucket=self.bucket, Key=self._object_key(path), Body=data
        )

    def get_blob(self, path: str) -> bytes:
        try:
            response = self._client.get_object(
                Bucket=self.bucket, Key=self._object_key(path)
            )
        except KeyError:
            raise  # a stub already speaking the BlobClient contract
        except Exception as exc:
            # boto3 raises botocore ClientError/NoSuchKey, never KeyError:
            # translate so the protocol's missing-blob signal holds with a
            # real SDK exactly as it does with the in-memory stub.
            if _is_missing_key_error(exc):
                raise KeyError(path) from exc
            raise
        return response["Body"].read()

    def list_prefix(self, prefix: str) -> Iterator[str]:
        full_prefix = self._object_key(prefix)
        strip = len(self.prefix) + 1 if self.prefix else 0
        kwargs = {"Bucket": self.bucket, "Prefix": full_prefix}
        while True:
            page = self._client.list_objects_v2(**kwargs)
            for entry in page.get("Contents", ()):
                yield entry["Key"][strip:]
            if not page.get("IsTruncated"):
                return
            kwargs["ContinuationToken"] = page["NextContinuationToken"]

    def delete_blob(self, path: str) -> None:
        # An S3 DELETE of an absent key already succeeds, matching the
        # protocol's no-op-when-absent contract without a pre-check.
        self._client.delete_object(Bucket=self.bucket, Key=self._object_key(path))


class StubS3ClientError(Exception):
    """The structural shape of botocore's ``ClientError``.

    Carries the ``response["Error"]["Code"]`` payload the retry layer's
    classification (:func:`repro.backends.retry.is_transient_error`) and
    :func:`_is_missing_key_error` both match on, so S3 error handling is
    testable without botocore installed.
    """

    def __init__(self, code: str, operation: str = "") -> None:
        where = f" during {operation}" if operation else ""
        super().__init__(f"stub S3 client error{where}: {code}")
        self.response = {"Error": {"Code": code}}


class InMemoryS3Client:
    """An in-memory double of the boto3 S3 surface :class:`S3BlobClient` uses.

    The reference implementation of the minimal client contract — and what
    the conformance suite (and CI) injects via :func:`set_s3_client_factory`
    so the ``s3://`` member is exercised without boto3 or a network.  Listing
    is paginated (``page_size``, default 1000 like S3) so the pagination loop
    is genuinely covered.  Buckets spring into existence on first write,
    which is all the tests need.

    :meth:`inject_failures` arms transient/permanent SDK error shapes on a
    per-method basis (raise-on-next-N-calls), so the retry layer's S3
    classification is exercised against the exact exception structure
    botocore would produce.
    """

    def __init__(self, page_size: int = 1000) -> None:
        self.page_size = page_size
        self._buckets: Dict[str, Dict[str, bytes]] = {}
        self._failures: Dict[str, List[StubS3ClientError]] = {}

    def inject_failures(self, method: str, count: int = 1, code: str = "SlowDown") -> None:
        """Make the next ``count`` calls of ``method`` raise a botocore-shaped
        error carrying ``code`` (e.g. ``SlowDown``, ``AccessDenied``)."""
        if method not in ("put_object", "get_object", "delete_object", "list_objects_v2"):
            raise ConfigurationError(
                f"cannot inject failures into unknown S3 method {method!r}"
            )
        self._failures.setdefault(method, []).extend(
            StubS3ClientError(code, operation=method) for _ in range(count)
        )

    def _maybe_fail(self, method: str) -> None:
        queued = self._failures.get(method)
        if queued:
            raise queued.pop(0)

    def put_object(self, Bucket: str, Key: str, Body: bytes) -> dict:
        self._maybe_fail("put_object")
        self._buckets.setdefault(Bucket, {})[Key] = bytes(Body)
        return {}

    def get_object(self, Bucket: str, Key: str) -> dict:
        self._maybe_fail("get_object")
        try:
            data = self._buckets[Bucket][Key]
        except KeyError:
            raise KeyError(f"s3://{Bucket}/{Key}") from None
        return {"Body": io.BytesIO(data)}

    def delete_object(self, Bucket: str, Key: str) -> dict:
        self._maybe_fail("delete_object")
        self._buckets.get(Bucket, {}).pop(Key, None)  # absent keys succeed, like S3
        return {}

    def list_objects_v2(
        self,
        Bucket: str,
        Prefix: str = "",
        ContinuationToken: Optional[str] = None,
    ) -> dict:
        self._maybe_fail("list_objects_v2")
        keys = sorted(
            k for k in self._buckets.get(Bucket, {}) if k.startswith(Prefix)
        )
        start = int(ContinuationToken) if ContinuationToken else 0
        page = keys[start : start + self.page_size]
        truncated = start + self.page_size < len(keys)
        response = {"Contents": [{"Key": k} for k in page], "IsTruncated": truncated}
        if truncated:
            response["NextContinuationToken"] = str(start + self.page_size)
        return response


class ObjectStoreBackend(ResultBackend):
    """``(config, seed) -> NetworkMetrics`` store over a blob client.

    Parameters
    ----------
    client:
        Any :class:`BlobClient`-shaped object.
    member:
        Writer/member prefix this instance puts under (default ``"points"``;
        shard runs use ``points-shard-I-of-N``) — the object-store analogue
        of the directory layout's member files.

    Opening lists the store once to build a ``key -> blob path`` index;
    metrics are fetched lazily per lookup, so opening a million-record store
    costs one listing, not a million GETs (and ``scan_keys``-style status
    queries cost the listing only, via :meth:`scan_client`).
    """

    scheme = "obj"

    def __init__(self, client: BlobClient, member: str = "points") -> None:
        super().__init__()
        validate_member(member)
        self._client = client
        self.member = member
        #: Retry accounting when the client is a RetryingBlobClient (the
        #: registry's default), surfaced by worker reports and status.
        self.retry_stats = getattr(client, "stats", None)
        self._paths: Dict[str, str] = {}
        self._member_counts: Dict[str, int] = {}
        self.reload()

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    @staticmethod
    def _scan_listing(
        client: BlobClient,
    ) -> Tuple[Dict[str, str], Dict[str, int], int]:
        """``(key -> path, member -> count, skipped)`` from one listing.

        The single definition of what an object store *contains* — shared by
        :meth:`reload` and :meth:`scan_client` so the two can never disagree.
        A path that is not ``<member>/<key>.json`` (a crashed writer's temp
        file, a stray upload) is counted as skipped, the blob analogue of a
        torn JSONL line.
        """
        paths: Dict[str, str] = {}
        members: Dict[str, int] = {}
        skipped = 0
        for path in sorted(client.list_prefix("")):
            if path.startswith((f"{LEASE_PREFIX}/", f"{EVENTS_PREFIX}/")):
                continue  # coordination/telemetry sidecars, not results
            member, _, blob = path.partition("/")
            if not blob or "/" in blob or not blob.endswith(_BLOB_SUFFIX):
                skipped += 1
                continue
            key = blob[: -len(_BLOB_SUFFIX)]
            paths.setdefault(key, path)
            members[member] = members.get(member, 0) + 1
        return paths, members, skipped

    def reload(self) -> None:
        """(Re)build the key index from a fresh listing.

        Cheap by design (no blob bodies are fetched), so long-running shard
        processes on different hosts can re-list a shared store to observe
        each other's commits.
        """
        self._paths, self._member_counts, self.skipped_records = self._scan_listing(
            self._client
        )

    @classmethod
    def scan_client(cls, client: BlobClient) -> BackendScan:
        """Keys-only scan of a store, without building a backend."""
        paths, members, skipped = cls._scan_listing(client)
        return BackendScan(
            keys=frozenset(paths), members=sorted(members.items()), skipped_records=skipped
        )

    # ------------------------------------------------------------------ #
    # storage primitives
    # ------------------------------------------------------------------ #
    def _record_at(self, path: str) -> dict:
        try:
            data = self._client.get_blob(path)
        except KeyError:
            raise ConfigurationError(
                f"store blob {path} disappeared between listing and read; "
                "the store is being deleted or rewritten concurrently"
            ) from None
        try:
            record = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ConfigurationError(
                f"store blob {path} is not a JSON record ({exc}); the store "
                "holds foreign objects — point the backend at a prefix of "
                "its own"
            ) from exc
        key, _, _ = parse_record(record, where=path)
        if f"{key}{_BLOB_SUFFIX}" != path.rpartition("/")[2]:
            raise ConfigurationError(
                f"store blob {path} carries key {str(key)[:12]}…, which does "
                "not match its content-addressed name; the store was "
                "hand-edited — re-run the campaign into a fresh prefix"
            )
        return record

    def _lookup(self, key: str) -> Optional[NetworkMetrics]:
        path = self._paths.get(key)
        if path is None:
            return None
        record = self._record_at(path)
        try:
            return metrics_from_dict(record["metrics"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"store blob {path} does not reconstruct ({exc}); the metrics "
                "schema has drifted from the one that wrote this store — "
                "re-run the campaign into a fresh prefix"
            ) from exc

    def _commit(self, key: str, config: SimulationConfig, metrics: NetworkMetrics) -> None:
        if key in self._paths:
            return
        path = f"{self.member}/{key}{_BLOB_SUFFIX}"
        data = encode_record(frame_record(key, config, metrics)).encode("utf-8")
        self._client.put_blob(path, data)
        self._paths[key] = path
        self._member_counts[self.member] = self._member_counts.get(self.member, 0) + 1

    def _discard(self, keys: FrozenSet[str]) -> None:
        # Re-lists rather than trusting the index: one key can be stored
        # under several member prefixes (shards that raced on a unit), and
        # the index keeps only the first path — a gc must remove every copy.
        for path in sorted(self._client.list_prefix("")):
            _, _, blob = path.partition("/")
            if not blob or "/" in blob or not blob.endswith(_BLOB_SUFFIX):
                continue
            if blob[: -len(_BLOB_SUFFIX)] in keys:
                self._client.delete_blob(path)
        self.reload()

    def records(self) -> Iterator[Tuple[str, dict]]:
        """Every stored record (one GET per blob), for cross-store sync."""
        for key, path in sorted(self._paths.items()):
            yield key, self._record_at(path)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, key: str) -> bool:
        return key in self._paths

    def keys(self) -> FrozenSet[str]:
        return frozenset(self._paths)

    def members(self) -> List[Tuple[str, int]]:
        """``(member prefix, record count)`` pairs, sorted by member."""
        return sorted(self._member_counts.items())


#: Returns a google-cloud-storage-style client; injectable so tests and
#: SDK-less environments run against :class:`InMemoryGCSClient`.
_gcs_client_factory: Optional[Callable[[], object]] = None


def set_gcs_client_factory(
    factory: Optional[Callable[[], object]],
) -> Optional[Callable[[], object]]:
    """Install the factory ``gs://`` opens use to build their client.

    ``None`` restores the default (a lazy ``google.cloud.storage.Client()``).
    Returns the previously installed factory so callers can restore it.
    """
    global _gcs_client_factory
    previous = _gcs_client_factory
    _gcs_client_factory = factory
    return previous


def _build_gcs_client() -> object:
    if _gcs_client_factory is not None:
        return _gcs_client_factory()
    try:
        from google.cloud import storage
    except ImportError as exc:
        raise ConfigurationError(
            "the gs:// backend needs the optional google-cloud-storage "
            "package (pip install google-cloud-storage), or an injected "
            "client: repro.backends.objectstore.set_gcs_client_factory("
            "lambda: my_client)"
        ) from exc
    return storage.Client()


def _is_gcs_missing_error(exc: Exception) -> bool:
    """Whether a GCS SDK exception means "no such object".

    Recognised structurally (the ``NotFound`` class name, or a
    google-api-core-style ``exc.code == 404``) so no google import is
    needed — like S3, the SDK stays an optional extra.
    """
    if type(exc).__name__ == "NotFound":
        return True
    return getattr(exc, "code", None) == 404


class GCSBlobClient(BlobClient):
    """Blob client over a google-cloud-storage-style client (``gs://``).

    Uses four calls of the SDK surface — ``client.bucket(...).blob(...)``
    with ``upload_from_string`` / ``download_as_bytes`` / ``delete``, plus
    ``client.list_blobs`` — so any compatible SDK or stub (e.g.
    :class:`InMemoryGCSClient`) drops in.  Object names are
    ``<prefix>/<relative path>``, the same layout as S3.
    """

    def __init__(self, bucket: str, prefix: str, client: object) -> None:
        self.bucket = bucket
        self.prefix = prefix.strip("/")
        self._client = client

    def _object_key(self, path: str) -> str:
        return f"{self.prefix}/{path}" if self.prefix else path

    def put_blob(self, path: str, data: bytes) -> None:
        # A GCS upload is a whole-object atomic write; record bytes for one
        # path are equal by construction, so unconditional upload is
        # idempotent in outcome.
        blob = self._client.bucket(self.bucket).blob(self._object_key(path))
        blob.upload_from_string(bytes(data))

    def get_blob(self, path: str) -> bytes:
        blob = self._client.bucket(self.bucket).blob(self._object_key(path))
        try:
            return blob.download_as_bytes()
        except KeyError:
            raise  # a stub already speaking the BlobClient contract
        except Exception as exc:
            # The real SDK raises google.api_core NotFound, never KeyError:
            # translate so the protocol's missing-blob signal holds.
            if _is_gcs_missing_error(exc):
                raise KeyError(path) from exc
            raise

    def list_prefix(self, prefix: str) -> Iterator[str]:
        full_prefix = self._object_key(prefix)
        strip = len(self.prefix) + 1 if self.prefix else 0
        for blob in self._client.list_blobs(self.bucket, prefix=full_prefix):
            yield blob.name[strip:]

    def delete_blob(self, path: str) -> None:
        blob = self._client.bucket(self.bucket).blob(self._object_key(path))
        try:
            blob.delete()
        except Exception as exc:
            if _is_gcs_missing_error(exc):
                return  # absent keys succeed, per the protocol
            raise


class _StubGCSNotFound(KeyError):
    """The in-memory stand-in for ``google.api_core.exceptions.NotFound``.

    Subclasses ``KeyError`` so the stub honours the BlobClient missing-blob
    signal directly; the real SDK's exception is translated structurally by
    :class:`GCSBlobClient` instead.
    """

    code = 404


class _StubGCSBlob:
    def __init__(self, store: Dict[str, bytes], name: str) -> None:
        self._store = store
        self.name = name

    def upload_from_string(self, data: bytes) -> None:
        self._store[self.name] = bytes(data)

    def download_as_bytes(self) -> bytes:
        try:
            return self._store[self.name]
        except KeyError:
            raise _StubGCSNotFound(self.name) from None

    def delete(self) -> None:
        if self.name not in self._store:
            raise _StubGCSNotFound(self.name)
        del self._store[self.name]


class _StubGCSBucket:
    def __init__(self, store: Dict[str, bytes]) -> None:
        self._store = store

    def blob(self, name: str) -> _StubGCSBlob:
        return _StubGCSBlob(self._store, name)


class InMemoryGCSClient:
    """An in-memory double of the google-cloud-storage surface
    :class:`GCSBlobClient` uses — the ``gs://`` analogue of
    :class:`InMemoryS3Client`, injected via :func:`set_gcs_client_factory`
    so the conformance suite covers the scheme without the SDK or a
    network.  Buckets spring into existence on first write."""

    def __init__(self) -> None:
        self._buckets: Dict[str, Dict[str, bytes]] = {}

    def bucket(self, name: str) -> _StubGCSBucket:
        return _StubGCSBucket(self._buckets.setdefault(name, {}))

    def list_blobs(self, bucket: str, prefix: str = "") -> Iterator[_StubGCSBlob]:
        store = self._buckets.get(bucket, {})
        for name in sorted(store):
            if name.startswith(prefix):
                yield _StubGCSBlob(store, name)


def _split_s3_location(location: str) -> Tuple[str, str]:
    bucket, _, prefix = location.partition("/")
    if not bucket:
        raise ConfigurationError(
            f"s3:// backend location {location!r} needs a bucket, e.g. "
            "s3://my-bucket/campaigns/fig3"
        )
    return bucket, prefix


def _split_gs_location(location: str) -> Tuple[str, str]:
    bucket, _, prefix = location.partition("/")
    if not bucket:
        raise ConfigurationError(
            f"gs:// backend location {location!r} needs a bucket, e.g. "
            "gs://my-bucket/campaigns/fig3"
        )
    return bucket, prefix


def blob_client_for(scheme: str, location: str) -> BlobClient:
    """The raw (un-retried) blob client a blob-backed scheme's location
    names — the single client construction path shared by the backend
    openers, the chaos proxy and the lease store."""
    if scheme == "obj":
        return LocalObjectClient(location)
    if scheme == "s3":
        bucket, prefix = _split_s3_location(location)
        return S3BlobClient(bucket, prefix, _build_s3_client())
    if scheme == "gs":
        bucket, prefix = _split_gs_location(location)
        return GCSBlobClient(bucket, prefix, _build_gcs_client())
    raise ConfigurationError(
        f"scheme {scheme!r} is not a blob-backed store (expected obj, s3 or gs)"
    )


def _retrying(client: BlobClient) -> "RetryingBlobClient":
    # Imported here, not at module top: retry.py is dependency-free of this
    # module, and the late import keeps that a one-way street.
    from repro.backends.retry import RetryingBlobClient

    return RetryingBlobClient(client)


def _open_blob_store(scheme: str, location: str, member: str) -> ObjectStoreBackend:
    client = _retrying(blob_client_for(scheme, location))
    backend = ObjectStoreBackend(client, member=member)
    backend.scheme = scheme
    backend.retry_stats = client.stats
    return backend


def open_local_object_store(location: str, member: str) -> ObjectStoreBackend:
    """The ``obj://`` opener: the object layout rooted at a directory."""
    return _open_blob_store("obj", location, member)


def scan_local_object_store(location: str) -> BackendScan:
    """The ``obj://`` scanner (a missing root scans as an empty store)."""
    return ObjectStoreBackend.scan_client(_retrying(LocalObjectClient(location)))


def open_s3_store(location: str, member: str) -> ObjectStoreBackend:
    """The ``s3://`` opener: ``s3://bucket[/prefix]`` via the client factory."""
    return _open_blob_store("s3", location, member)


def scan_s3_store(location: str) -> BackendScan:
    """The ``s3://`` scanner (one paginated listing, no blob bodies)."""
    return ObjectStoreBackend.scan_client(_retrying(blob_client_for("s3", location)))


def open_gcs_store(location: str, member: str) -> ObjectStoreBackend:
    """The ``gs://`` opener: ``gs://bucket[/prefix]`` via the client factory."""
    return _open_blob_store("gs", location, member)


def scan_gcs_store(location: str) -> BackendScan:
    """The ``gs://`` scanner (one listing, no blob bodies)."""
    return ObjectStoreBackend.scan_client(_retrying(blob_client_for("gs", location)))
