"""The backend URI registry: ``scheme://location`` strings to backends.

One parser and one registry decide what a backend URI means everywhere — the
:class:`~repro.sim.parallel.SweepExecutor` ``cache=`` argument, the campaign
lifecycle, :func:`repro.experiments.common.resolve_executor` and the CLI's
``--backend`` / ``REPRO_BACKEND`` all route through :func:`open_backend`:

* ``mem://`` — a private in-memory backend; ``mem://<name>`` — a named
  backend shared process-wide (tests, ephemeral runs);
* ``dir://<path>`` — the JSONL directory layout (``<path>`` is a filesystem
  path, absolute or relative; ``dir:///var/tmp/c`` is the absolute form);
* ``sqlite://<path>`` — a single SQLite database file;
* ``obj://<path>`` — the content-addressed object layout on a filesystem
  (one blob per (config_hash, replication));
* ``s3://<bucket>/<prefix>`` — the same layout in an S3 bucket, via an
  injectable boto3-style client (boto3 itself is an optional extra);
* ``gs://<bucket>/<prefix>`` — the same layout in a GCS bucket, via an
  injectable google-cloud-storage-style client (also an optional extra);
* ``chaos+<scheme>://<location>?fail=0.2&seed=7`` — any of the above opened
  through a seeded fault injector (:mod:`repro.backends.chaos`), for
  testing retry and crash-recovery paths.

Third-party backends mount themselves with :func:`register_backend` and
immediately work across the executor, campaign, sync and CLI layers; the
unknown-scheme error enumerates whatever is registered at failure time, so
new members appear in it automatically.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Tuple

from repro.backends.base import BackendScan, ResultBackend, validate_member
from repro.backends.directory import DirectoryBackend
from repro.backends.memory import MemoryBackend
from repro.backends.objectstore import (
    open_gcs_store,
    open_local_object_store,
    open_s3_store,
    scan_gcs_store,
    scan_local_object_store,
    scan_s3_store,
)
from repro.backends.sqlite import SQLiteBackend
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_MEMBER",
    "backend_schemes",
    "open_backend",
    "parse_backend_uri",
    "register_backend",
    "scan_backend",
]

#: The writer/member name of unsharded runs.
DEFAULT_MEMBER = "points"

_URI_RE = re.compile(r"^([a-z][a-z0-9+.-]*)://(.*)$", re.IGNORECASE)

#: scheme -> (opener(location, member), scanner(location)).
_SCHEMES: Dict[
    str,
    Tuple[Callable[[str, str], ResultBackend], Callable[[str], BackendScan]],
] = {}


def register_backend(
    scheme: str,
    opener: Callable[[str, str], ResultBackend],
    scanner: Callable[[str], BackendScan],
) -> None:
    """Mount a backend implementation under a URI scheme.

    ``opener(location, member)`` must return a live
    :class:`~repro.backends.base.ResultBackend`; ``scanner(location)`` must
    return the cheap keys-only :class:`~repro.backends.base.BackendScan`
    view used by status-style queries.
    """
    _SCHEMES[scheme.lower()] = (opener, scanner)


def backend_schemes() -> Tuple[str, ...]:
    """The registered URI schemes, sorted."""
    return tuple(sorted(_SCHEMES))


def parse_backend_uri(uri: str) -> Tuple[str, str]:
    """Split a backend URI into ``(scheme, location)``, validating both.

    Raises :class:`ConfigurationError` with an actionable message on a
    malformed URI or an unregistered scheme — at parse time, so a bad
    ``--backend`` fails before any work is planned or run.
    """
    match = _URI_RE.match(uri or "")
    if not match:
        raise ConfigurationError(
            f"invalid backend URI {uri!r}: expected scheme://location, e.g. "
            "mem://, dir://results/campaign, sqlite://results/points.sqlite, "
            "obj://results/objects or s3://bucket/campaigns"
        )
    scheme, location = match.group(1).lower(), match.group(2)
    if scheme not in _SCHEMES:
        raise ConfigurationError(
            f"unknown backend scheme {scheme!r} in {uri!r}; registered "
            f"schemes: {', '.join(backend_schemes())}"
        )
    # mem:// is the one scheme whose location may be empty (the private
    # in-memory form) — including through its chaos variant.
    if scheme not in ("mem", "chaos+mem") and not location:
        raise ConfigurationError(
            f"backend URI {uri!r} needs a location, e.g. {scheme}://results/campaign"
        )
    return scheme, location


def open_backend(uri: str, member: str = DEFAULT_MEMBER) -> ResultBackend:
    """Open the backend a URI names, writing as ``member``."""
    scheme, location = parse_backend_uri(uri)
    opener, _ = _SCHEMES[scheme]
    return opener(location, member)


def scan_backend(uri: str) -> BackendScan:
    """The cheap keys-only view of the backend a URI names."""
    scheme, location = parse_backend_uri(uri)
    _, scanner = _SCHEMES[scheme]
    return scanner(location)


def _scan_memory(location: str) -> BackendScan:
    backend = MemoryBackend.open(location)
    return BackendScan(
        keys=backend.keys(), members=backend.members(), skipped_records=0
    )


def _open_memory(location: str, member: str) -> MemoryBackend:
    # The member name is validated for cross-backend consistency (a bad
    # shard name must fail on mem:// exactly as it would on dir://), but an
    # in-process store has no writer files to keep apart — all writers
    # aggregate into the backend's single synthetic member row.
    validate_member(member)
    return MemoryBackend.open(location)


register_backend("mem", _open_memory, _scan_memory)
register_backend(
    "dir",
    lambda location, member: DirectoryBackend(location, member=member),
    DirectoryBackend.scan_keys,
)
register_backend(
    "sqlite",
    lambda location, member: SQLiteBackend(location, member=member),
    SQLiteBackend.scan_keys,
)
register_backend("obj", open_local_object_store, scan_local_object_store)
register_backend("s3", open_s3_store, scan_s3_store)
register_backend("gs", open_gcs_store, scan_gcs_store)

# The chaos variants are mounted after every base scheme exists (the import
# sits at the bottom for exactly that reason: chaos.py resolves base
# schemes through this registry at open time).
from repro.backends import chaos as _chaos  # noqa: E402

_chaos.register_chaos_backends(register_backend)
