"""Bounded, deterministic retry for backend and blob I/O.

Campaigns run against shared stores over flaky transports: S3 throttles
(``SlowDown``), SQLite readers hit ``database is locked`` under WAL
contention, NFS mounts time out.  All of those are *transient* — the same
call succeeds a moment later — while ``KeyError`` (the blob-missing
protocol signal), schema errors and permission errors are *permanent* and
must surface immediately.  This module is the one place that distinction
lives:

* :func:`is_transient_error` — structural transient-vs-permanent
  classification covering the sqlite-busy shapes, botocore-style
  ``response["Error"]["Code"]`` throttling codes, connection/timeout
  exceptions and google-style retryable HTTP codes, without importing any
  SDK (they stay optional extras);
* :class:`RetryPolicy` — bounded exponential backoff with *deterministic*
  jitter (a CRC of ``(seed, token, attempt)``, not a clock or a global
  RNG), so retry schedules are reproducible in tests and chaos runs;
* :class:`RetryingBlobClient` — the policy applied to the
  :class:`~repro.backends.objectstore.BlobClient` surface; ``obj://``,
  ``s3://`` and ``gs://`` opens wrap their clients in one by default, so
  every campaign write path retries transient faults for free;
* :class:`RetryStats` — retry/giveup counters surfaced by
  ``campaign status --json`` and the worker reports.

An exception may short-circuit classification by carrying a boolean
``transient`` attribute — the contract the chaos proxy
(:mod:`repro.backends.chaos`) uses to inject faults of either kind.
"""

from __future__ import annotations

import errno
import logging
import sqlite3
import time
import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Iterator, List, Optional, TypeVar

from repro.errors import ConfigurationError
from repro.telemetry.metrics import metrics_registry

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
    "RetryStats",
    "RetryingBlobClient",
    "is_transient_error",
]

T = TypeVar("T")

logger = logging.getLogger(__name__)

#: Botocore-style error codes that mean "back off and try again" (throttling,
#: internal errors, timeouts) — matched structurally on
#: ``exc.response["Error"]["Code"]`` so botocore itself is never imported.
_TRANSIENT_SDK_CODES = frozenset(
    {
        "SlowDown",
        "Throttling",
        "ThrottlingException",
        "TooManyRequestsException",
        "RequestLimitExceeded",
        "RequestTimeout",
        "RequestTimeoutException",
        "ServiceUnavailable",
        "InternalError",
        "429",
        "500",
        "502",
        "503",
        "504",
    }
)

#: SDK exception class names that are connection-level and retriable —
#: matched by name for the same no-SDK-import reason.
_TRANSIENT_EXC_NAMES = frozenset(
    {
        "ConnectTimeoutError",
        "ConnectionClosedError",
        "EndpointConnectionError",
        "IncompleteReadError",
        "ReadTimeoutError",
        "ResponseStreamingError",
    }
)

#: Retryable HTTP status codes (google-cloud-style exceptions carry one as
#: ``exc.code``).
_TRANSIENT_HTTP_CODES = frozenset({429, 500, 502, 503, 504})

_TRANSIENT_ERRNOS = frozenset(
    {errno.EAGAIN, errno.EBUSY, errno.EINTR, errno.ETIMEDOUT, errno.ECONNRESET}
)


def is_transient_error(exc: BaseException) -> bool:
    """Whether retrying ``exc`` can possibly succeed.

    Permanent by definition: ``KeyError`` (the missing-blob protocol signal
    — retrying cannot make an absent record appear, and treating it as
    transient would turn every cache miss into a backoff loop) and
    :class:`~repro.errors.ConfigurationError` (a schema/usage defect).
    """
    marked = getattr(exc, "transient", None)
    if isinstance(marked, bool):
        return marked
    if isinstance(exc, (KeyError, ConfigurationError)):
        return False
    if isinstance(exc, sqlite3.OperationalError):
        message = str(exc).lower()
        return "locked" in message or "busy" in message
    if isinstance(exc, (ConnectionError, TimeoutError)):
        return True
    if isinstance(exc, OSError):
        return exc.errno in _TRANSIENT_ERRNOS
    response = getattr(exc, "response", None)
    if isinstance(response, dict):
        code = str(response.get("Error", {}).get("Code", ""))
        return code in _TRANSIENT_SDK_CODES
    if type(exc).__name__ in _TRANSIENT_EXC_NAMES:
        return True
    code = getattr(exc, "code", None)
    if isinstance(code, int):
        return code in _TRANSIENT_HTTP_CODES
    return False


@dataclass
class RetryStats:
    """Mutable retry accounting shared by a client/backend and its readers.

    Every retry and giveup also logs at WARNING (flaky transports should be
    visible without a debugger), feeds the telemetry counters when metrics
    are enabled, and calls the optional ``listener`` — the hook the
    campaign runner uses to turn blob-I/O faults into structured events.
    ``listener`` receives ``(outcome, token, exc)`` where ``outcome`` is
    ``"retry"`` or ``"giveup"`` and ``token`` is the operation token
    (``"put:<path>"`` etc.); it is deliberately excluded from
    :meth:`as_dict`.
    """

    retries: int = 0
    giveups: int = 0
    last_error: str = ""
    listener: Optional[Callable[[str, str, BaseException], None]] = field(
        default=None, repr=False, compare=False
    )

    def record_retry(self, exc: BaseException, token: str = "") -> None:
        self.retries += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        logger.warning("transient backend error, retrying %s: %s", token or "operation", self.last_error)
        registry = metrics_registry()
        if registry is not None:
            registry.counter(
                "repro_blob_retries_total", "Retried transient blob operations."
            ).inc()
        if self.listener is not None:
            self.listener("retry", token, exc)

    def record_giveup(self, exc: BaseException, token: str = "") -> None:
        self.giveups += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        logger.warning(
            "giving up on %s after exhausting retries: %s",
            token or "operation",
            self.last_error,
        )
        registry = metrics_registry()
        if registry is not None:
            registry.counter(
                "repro_blob_giveups_total",
                "Blob operations abandoned after exhausting retries.",
            ).inc()
        if self.listener is not None:
            self.listener("giveup", token, exc)

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "giveups": self.giveups,
            "last_error": self.last_error,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``delay_for(attempt, token)`` is ``min(max_delay, base_delay *
    2**attempt)`` scaled into ``[1 - jitter, 1]`` by a CRC of ``(seed,
    token, attempt)`` — a pure function, so two runs of the same workload
    produce the same schedule (no global RNG draw, no wall clock), while
    distinct tokens (one per blob path) still decorrelate concurrent
    workers hammering one store.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"retry max_attempts must be >= 1 (got {self.max_attempts})"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError(
                "retry delays must be non-negative "
                f"(got base_delay={self.base_delay}, max_delay={self.max_delay})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"retry jitter must be a fraction in [0, 1] (got {self.jitter})"
            )

    def delay_for(self, attempt: int, token: str = "") -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * (2.0**attempt))
        if self.jitter <= 0.0:
            return raw
        crc = zlib.crc32(f"{self.seed}:{token}:{attempt}".encode("utf-8"))
        return raw * (1.0 - self.jitter * (crc / 0xFFFFFFFF))

    def call(
        self,
        fn: Callable[[], T],
        *,
        classify: Callable[[BaseException], bool] = is_transient_error,
        stats: Optional[RetryStats] = None,
        token: str = "",
        sleep: Callable[[float], None] = time.sleep,
    ) -> T:
        """Run ``fn`` retrying transient failures up to ``max_attempts``.

        Permanent errors (per ``classify``) re-raise immediately; a
        transient error on the final attempt re-raises after counting a
        giveup — callers always see the real exception, never a wrapper.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except Exception as exc:
                if not classify(exc):
                    raise
                if attempt + 1 >= self.max_attempts:
                    if stats is not None:
                        stats.record_giveup(exc, token)
                    raise
                if stats is not None:
                    stats.record_retry(exc, token)
                sleep(self.delay_for(attempt, token))
                attempt += 1


#: What ``obj://`` / ``s3://`` / ``gs://`` opens wrap their clients in: a
#: handful of quick attempts bounded well under any lease TTL.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=1.0)


class RetryingBlobClient:
    """A :class:`~repro.backends.objectstore.BlobClient` decorator applying
    a :class:`RetryPolicy` to every operation.

    Structural like the protocol it wraps: any object with the four blob
    methods works as ``inner``.  ``list_prefix`` is materialised *inside*
    the retried call — a transport fault halfway through a lazy listing
    must retry the whole listing, not resume a half-consumed iterator.
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        stats: Optional[RetryStats] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self.stats = stats if stats is not None else RetryStats()
        self._sleep = sleep

    def _call(self, token: str, fn: Callable[[], T]) -> T:
        registry = metrics_registry()
        if registry is None:
            return self.policy.call(
                fn, stats=self.stats, token=token, sleep=self._sleep
            )
        start = perf_counter()
        try:
            return self.policy.call(
                fn, stats=self.stats, token=token, sleep=self._sleep
            )
        finally:
            op = token.partition(":")[0]
            registry.histogram(
                "repro_blob_op_seconds",
                "Blob operation latency (including retry backoff).",
                labelnames=("op",),
            ).observe(perf_counter() - start, op=op)

    def put_blob(self, path: str, data: bytes) -> None:
        self._call(f"put:{path}", lambda: self.inner.put_blob(path, data))

    def get_blob(self, path: str) -> bytes:
        return self._call(f"get:{path}", lambda: self.inner.get_blob(path))

    def list_prefix(self, prefix: str) -> Iterator[str]:
        listed: List[str] = self._call(
            f"list:{prefix}", lambda: list(self.inner.list_prefix(prefix))
        )
        return iter(listed)

    def delete_blob(self, path: str) -> None:
        self._call(f"delete:{path}", lambda: self.inner.delete_blob(path))
