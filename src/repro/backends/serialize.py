"""JSON serialisation of configurations and metrics for persistent backends.

The storage layer persists two kinds of values: whole
:class:`~repro.sim.config.SimulationConfig` objects (in campaign manifests,
so a shard can run its work units without importing any experiment code, and
as per-record provenance in the backends) and
:class:`~repro.metrics.collectors.NetworkMetrics` records (the payload of
every ``dir://``, ``sqlite://`` and object-store backend record).  Both
round-trip losslessly:

* every scalar field is carried verbatim — Python's JSON encoder emits the
  shortest round-tripping representation of a float, so reloaded metrics are
  bit-identical to the originals (the property the resume-determinism tests
  pin down);
* topologies are stored as ``{"kind", "radices"}`` and rebuilt through the
  public constructors; fault sets as sorted node/link lists;
* the scalar config fields are enumerated from the dataclass itself, so a
  future field added to :class:`SimulationConfig` is carried automatically.

This module also owns the *record framing* every persistent backend and the
cross-store sync path share: a stored record is the JSON object
``{"v": RECORD_VERSION, "key": <config_hash>, "config": ..., "metrics": ...}``
— one ``dir://`` JSONL line, one object-store blob, one decomposed
``sqlite://`` row.  :func:`frame_record` builds it, :func:`parse_record`
version-checks and splits it, and :func:`encode_record` is the canonical
byte encoding (compact separators, ``allow_nan``) that makes records written
by different backends byte-comparable.
"""

from __future__ import annotations

import json
from dataclasses import fields
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.faults.model import FaultSet
from repro.metrics.collectors import NetworkMetrics
from repro.sim.config import SimulationConfig
from repro.topology.base import Topology
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology

__all__ = [
    "RECORD_VERSION",
    "config_from_dict",
    "config_to_dict",
    "encode_record",
    "frame_record",
    "metrics_from_dict",
    "metrics_to_dict",
    "parse_record",
]

#: Format version stamped on every stored record (shared by all backends: a
#: record written by one library version must never be silently re-simulated
#: — or worse, misread — by an incompatible one).
RECORD_VERSION = 1

#: Config fields that need structured (non-scalar) encoding.
_STRUCTURED_CONFIG_FIELDS = ("topology", "faults")

_TOPOLOGY_KINDS = {"torus": TorusTopology, "mesh": MeshTopology}


def _topology_to_dict(topology: Topology) -> Dict[str, object]:
    for kind, cls in _TOPOLOGY_KINDS.items():
        if type(topology) is cls:
            return {"kind": kind, "radices": list(topology.radices)}
    raise ConfigurationError(
        f"cannot serialise topology of type {type(topology).__name__}; "
        f"known kinds: {sorted(_TOPOLOGY_KINDS)}"
    )


def _topology_from_dict(data: Dict[str, object]) -> Topology:
    kind = data.get("kind")
    if kind not in _TOPOLOGY_KINDS:
        raise ConfigurationError(
            f"unknown topology kind {kind!r} in campaign data; "
            f"known kinds: {sorted(_TOPOLOGY_KINDS)}"
        )
    radices = [int(k) for k in data["radices"]]
    return _TOPOLOGY_KINDS[kind](radix=radices, dimensions=len(radices))


def _faults_to_dict(faults: FaultSet) -> Dict[str, object]:
    return {
        "nodes": sorted(faults.nodes),
        "links": [list(link) for link in sorted(faults.links)],
    }


def _faults_from_dict(data: Dict[str, object]) -> FaultSet:
    return FaultSet.build(
        nodes=data.get("nodes", ()),
        links=[tuple(link) for link in data.get("links", ())],
    )


def config_to_dict(config: SimulationConfig) -> Dict[str, object]:
    """Encode a configuration as a JSON-serialisable dictionary."""
    out: Dict[str, object] = {
        "topology": _topology_to_dict(config.topology),
        "faults": _faults_to_dict(config.faults),
    }
    for spec in fields(SimulationConfig):
        if spec.name in _STRUCTURED_CONFIG_FIELDS:
            continue
        out[spec.name] = getattr(config, spec.name)
    return out


def config_from_dict(data: Dict[str, object]) -> SimulationConfig:
    """Rebuild a configuration from :func:`config_to_dict` output."""
    known = {spec.name for spec in fields(SimulationConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"campaign config carries unknown fields {sorted(unknown)}; "
            "it was probably written by a newer version of this library"
        )
    kwargs = {
        name: value
        for name, value in data.items()
        if name not in _STRUCTURED_CONFIG_FIELDS
    }
    return SimulationConfig(
        topology=_topology_from_dict(data["topology"]),
        faults=_faults_from_dict(data["faults"]),
        **kwargs,
    )


def metrics_to_dict(metrics: NetworkMetrics) -> Dict[str, object]:
    """Encode a metrics record as a JSON-serialisable dictionary.

    Unlike :meth:`NetworkMetrics.as_dict` (a flat reporting view), this keeps
    every dataclass field, including the per-node absorption map, so the
    record reloads into an equal object.
    """
    out = {spec.name: getattr(metrics, spec.name) for spec in fields(NetworkMetrics)}
    # JSON object keys are strings; keep the int->int map explicit so loading
    # can restore the key type.
    out["absorptions_by_node"] = {
        str(node): count for node, count in metrics.absorptions_by_node.items()
    }
    return out


def metrics_from_dict(data: Dict[str, object]) -> NetworkMetrics:
    """Rebuild a metrics record from :func:`metrics_to_dict` output."""
    kwargs = dict(data)
    kwargs["absorptions_by_node"] = {
        int(node): count for node, count in data.get("absorptions_by_node", {}).items()
    }
    return NetworkMetrics(**kwargs)


def frame_record(
    key: str, config: SimulationConfig, metrics: NetworkMetrics
) -> Dict[str, object]:
    """One stored result as the framed record every persistent backend writes.

    The ``config`` entry is deliberate provenance: no reader consumes it
    (lookups go by key), but it keeps every record self-describing so a stray
    member file or blob can be audited — or re-keyed — without its
    ``campaign.json``.
    """
    return {
        "v": RECORD_VERSION,
        "key": key,
        "config": config_to_dict(config),
        "metrics": metrics_to_dict(metrics),
    }


def parse_record(record: object, where: str) -> Tuple[str, Dict, Dict]:
    """Split a framed record into ``(key, config dict, metrics dict)``.

    ``where`` names the record's origin (a file:line, a blob path, "pushed
    record") so the error is actionable.  A wrong version or a missing field
    means the record came from an incompatible library version; silently
    re-simulating — or misreading — it would be far worse than failing, so
    both raise.
    """
    if not isinstance(record, dict) or record.get("v") != RECORD_VERSION:
        raise ConfigurationError(
            f"store record {where} has version "
            f"{record.get('v') if isinstance(record, dict) else record!r} "
            f"but this library reads version {RECORD_VERSION}; the record "
            "was written by an incompatible library version — re-run the "
            "campaign into a fresh store"
        )
    try:
        key, config, metrics = record["key"], record["config"], record["metrics"]
    except KeyError as exc:
        raise ConfigurationError(
            f"store record {where} has no {exc} field; the record schema has "
            "drifted from the one that wrote this store — re-run the campaign "
            "into a fresh store"
        ) from exc
    return key, config, metrics


def encode_record(record: Dict[str, object]) -> str:
    """The canonical JSON encoding of a framed record.

    Compact separators and ``allow_nan`` — shared by the JSONL, SQLite-column
    and blob writers so the same record is byte-identical wherever it lands.
    """
    return json.dumps(record, separators=(",", ":"), allow_nan=True)
