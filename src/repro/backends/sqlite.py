"""The ``sqlite://`` backend: one concurrent-writer-safe result database.

The single-file member of the backend family, and the stepping stone between
the ``dir://`` JSONL layout (one member file per writer, merged by copying
files) and future object-store members: every record lives in one SQLite
database that any number of shard runners can write concurrently.

Durability and concurrency model:

* every ``put`` is one autocommitted ``INSERT OR IGNORE`` — a killed run
  loses at most the row being inserted, and two writers racing on the same
  key both succeed (the rows are bit-identical by construction, the loser's
  insert is ignored);
* WAL journalling plus a generous busy timeout make concurrent shard
  writers on one host safe without any application-level locking (SQLite
  serialises the writes; readers never block on them);
* the writer/member name is recorded per row, so ``status`` can report
  per-shard record counts exactly like the directory layout's member files;
* records carry the same version stamp and provenance payload as ``dir://``
  records — an incompatible database fails loudly instead of being silently
  re-simulated.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.backends.base import (
    RECORD_VERSION,
    BackendScan,
    ResultBackend,
    validate_member,
)
from repro.backends.serialize import config_to_dict, metrics_from_dict, metrics_to_dict
from repro.errors import ConfigurationError
from repro.metrics.collectors import NetworkMetrics
from repro.sim.config import SimulationConfig

__all__ = ["SQLiteBackend"]

#: How long a writer waits on a locked database before failing (seconds).
_BUSY_TIMEOUT = 30.0


class SQLiteBackend(ResultBackend):
    """SQLite-backed ``(config, seed) -> NetworkMetrics`` store.

    Parameters
    ----------
    path:
        The database file (created, with its parent directory, if missing).
    member:
        Writer name recorded on every row this instance inserts (default
        ``"points"``; shard runs use ``points-shard-I-of-N``), the analogue
        of the directory layout's member files.
    """

    scheme = "sqlite"

    def __init__(self, path: os.PathLike, member: str = "points") -> None:
        super().__init__()
        validate_member(member)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.member = member
        # isolation_level=None puts sqlite3 in autocommit mode: every INSERT
        # is its own durable transaction, which is exactly the "commit each
        # result as it finishes" streaming contract.
        self._conn = sqlite3.connect(
            str(self.path), timeout=_BUSY_TIMEOUT, isolation_level=None
        )
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT * 1000)}")
            self._init_schema()
        except ConfigurationError:
            self._conn.close()  # the version-mismatch path
            raise
        except sqlite3.DatabaseError as exc:
            # E.g. the URI points at an existing non-SQLite file (a JSONL
            # member, say): surface the same actionable error type every
            # other bad-input path in the storage layer raises.
            self._conn.close()
            raise ConfigurationError(
                f"cannot open backend database {self.path} ({exc}); the path "
                "does not hold a SQLite result store — point sqlite:// at a "
                "new or previously created database file"
            ) from exc

    def _init_schema(self) -> None:
        # CREATE IF NOT EXISTS + INSERT OR IGNORE make initialisation safe
        # against two processes opening a fresh database at the same time.
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS meta ("
            " id INTEGER PRIMARY KEY CHECK (id = 0),"
            " version INTEGER NOT NULL)"
        )
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (id, version) VALUES (0, ?)", (RECORD_VERSION,)
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS points ("
            " key TEXT PRIMARY KEY,"
            " writer TEXT NOT NULL,"
            " config TEXT NOT NULL,"
            " metrics TEXT NOT NULL)"
        )
        row = self._conn.execute("SELECT version FROM meta WHERE id = 0").fetchone()
        if row is None or row[0] != RECORD_VERSION:
            raise ConfigurationError(
                f"backend database {self.path} has version "
                f"{row[0] if row else None!r} but this library reads version "
                f"{RECORD_VERSION}; it was written by an incompatible library "
                "version — re-run the campaign into a fresh database"
            )

    # ------------------------------------------------------------------ #
    # storage primitives
    # ------------------------------------------------------------------ #
    def _lookup(self, key: str) -> Optional[NetworkMetrics]:
        row = self._conn.execute(
            "SELECT metrics FROM points WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        try:
            return metrics_from_dict(json.loads(row[0]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"backend record {key[:12]}… in {self.path} does not "
                f"reconstruct ({exc}); the metrics schema has drifted from "
                "the one that wrote this database — re-run the campaign into "
                "a fresh database"
            ) from exc

    def _commit(self, key: str, config: SimulationConfig, metrics: NetworkMetrics) -> None:
        # INSERT OR IGNORE is the idempotence: one statement per streamed
        # commit, duplicate-safe even across concurrent writer processes.
        # The JSON encodings match the dir:// record format canonically, so
        # the two persistent backends serve bit-identical floats.
        self._conn.execute(
            "INSERT OR IGNORE INTO points (key, writer, config, metrics) "
            "VALUES (?, ?, ?, ?)",
            (
                key,
                self.member,
                json.dumps(config_to_dict(config), separators=(",", ":"), allow_nan=True),
                json.dumps(metrics_to_dict(metrics), separators=(",", ":"), allow_nan=True),
            ),
        )

    def _discard(self, keys: FrozenSet[str]) -> None:
        # Chunked to stay well under SQLite's bound-parameter limit; each
        # DELETE autocommits, so a kill mid-gc leaves a prefix of the keys
        # removed — re-running the gc finishes the job.
        doomed = sorted(keys)
        for start in range(0, len(doomed), 500):
            chunk = doomed[start : start + 500]
            placeholders = ",".join("?" * len(chunk))
            self._conn.execute(
                f"DELETE FROM points WHERE key IN ({placeholders})", chunk
            )

    def records(self) -> Iterator[Tuple[str, dict]]:
        """Every stored row re-framed as a portable record, for sync.

        The config/metrics columns hold exactly the JSON sub-objects of the
        framed record format, so re-framing is a parse plus a version stamp —
        the synced record is byte-identical to the one a ``dir://`` writer
        would have produced for the same result.
        """
        for key, config_json, metrics_json in self._conn.execute(
            "SELECT key, config, metrics FROM points ORDER BY key"
        ):
            yield key, {
                "v": RECORD_VERSION,
                "key": key,
                "config": json.loads(config_json),
                "metrics": json.loads(metrics_json),
            }

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM points").fetchone()[0]

    def __contains__(self, key: str) -> bool:
        return (
            self._conn.execute(
                "SELECT 1 FROM points WHERE key = ?", (key,)
            ).fetchone()
            is not None
        )

    def keys(self) -> FrozenSet[str]:
        return frozenset(
            row[0] for row in self._conn.execute("SELECT key FROM points")
        )

    def members(self) -> List[Tuple[str, int]]:
        """``(writer name, record count)`` pairs, sorted by writer."""
        return [
            (writer, count)
            for writer, count in self._conn.execute(
                "SELECT writer, COUNT(*) FROM points GROUP BY writer ORDER BY writer"
            )
        ]

    @classmethod
    def scan_keys(cls, path: os.PathLike) -> BackendScan:
        """Keys-only scan of a database, mirroring the directory fast path.

        A missing database scans as empty (a campaign whose run has not
        started yet), matching a directory backend with no member files.
        """
        path = Path(path)
        if not path.exists():
            return BackendScan(keys=frozenset(), members=[], skipped_records=0)
        backend = cls(path)
        try:
            return BackendScan(
                keys=backend.keys(), members=backend.members(), skipped_records=0
            )
        finally:
            backend.close()

    def close(self) -> None:
        self._conn.close()
