"""Cross-store record sync: copy results between any two backend URIs.

The primitive behind ``campaign push`` / ``campaign pull``: iterate the
source backend's framed records (:meth:`~repro.backends.base.ResultBackend.
records`) and commit the ones the destination does not hold
(:meth:`~repro.backends.base.ResultBackend.put_record`, which re-verifies
each record's content-address).  Dedup is by content-address, so a sync is
idempotent — re-pushing a store copies nothing — and direction-agnostic:
push and pull are the same operation with the URIs swapped.

Because every backend speaks the same record framing, any pair of schemes
syncs: two hosts can each run shards into their own local ``obj://`` (or
``dir://``/``sqlite://``) store and reconcile through a shared ``s3://``
bucket, and a later ``merge`` on any host sees the union, bit-identical to
a single-shot run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.registry import DEFAULT_MEMBER, open_backend, scan_backend

__all__ = ["SyncReport", "sync_backends"]


@dataclass(frozen=True)
class SyncReport:
    """What one sync did: where from, where to, and the dedup split."""

    source: str
    destination: str
    copied: int
    present: int

    @property
    def total(self) -> int:
        """Distinct records seen at the source."""
        return self.copied + self.present

    def describe(self) -> str:
        return (
            f"synced {self.source} -> {self.destination}: {self.copied} "
            f"record(s) copied, {self.present} already present"
        )


def sync_backends(
    source_uri: str, dest_uri: str, member: str = DEFAULT_MEMBER
) -> SyncReport:
    """Copy every record the destination is missing, content-address-deduped.

    ``member`` is the writer name copied records land under at the
    destination (default ``points``).  The destination side stays cheap: its
    key set comes from the keys-only :func:`scan_backend` view, and the
    backend itself is opened lazily, only once the first record actually
    needs copying — so a fully up-to-date push/pull never pays a full
    destination load (for ``dir://`` that is the difference between a scan
    and reconstructing every stored metrics record).  The key snapshot is
    taken once up front — concurrent writers racing a sync at worst cause a
    duplicate ``put_record``, which is idempotent like every other commit
    path.  The source *is* opened in full (``records()`` needs the stored
    provenance, which keys-only scans deliberately skip).
    """
    existing = scan_backend(dest_uri).keys
    source = open_backend(source_uri, member=member)
    dest = None
    try:
        seen = set()
        copied = present = 0
        for key, record in source.records():
            if key in seen:
                continue  # duplicate members of one key are bit-identical
            seen.add(key)
            if key in existing:
                present += 1
                continue
            if dest is None:
                dest = open_backend(dest_uri, member=member)
            dest.put_record(record)
            copied += 1
    finally:
        if dest is not None:
            dest.close()
        source.close()
    return SyncReport(
        source=source_uri, destination=dest_uri, copied=copied, present=present
    )
