"""Campaigns: backend-stored, resumable, shardable experiments.

A *campaign* treats an experiment as a stream of independently computable,
content-addressed simulation points instead of one monolithic in-process run
(cf. the streaming formulations in PAPERS.md):

* every completed ``(config, seed) -> NetworkMetrics`` record is committed —
  as it finishes, not at batch boundaries — to a pluggable
  :mod:`repro.backends` result backend (``dir://`` JSONL members,
  ``sqlite://`` single-file, ``obj://``/``s3://`` object stores shared
  across hosts, ``mem://`` ephemeral), keyed by the same
  :func:`repro.sim.config.config_hash` content-address the in-memory
  :class:`~repro.sim.parallel.SweepPointCache` uses;
* :func:`~repro.campaign.runner.push_campaign` /
  :func:`~repro.campaign.runner.pull_campaign` copy records between the
  campaign's backend and any other backend URI with content-address dedup,
  so shards run on different hosts against local stores reconcile through a
  shared store and ``merge`` anywhere sees the union;
* :class:`~repro.campaign.plan.CampaignPlan` enumerates every (point,
  replication) of a sweep or figure experiment as shardable work units in a
  ``campaign.json`` manifest (which also pins the chosen backend URI);
* :func:`~repro.campaign.runner.run_campaign` /
  :func:`~repro.campaign.runner.merge_campaign` /
  :func:`~repro.campaign.runner.campaign_status` implement the
  ``plan / run --shard i/N / merge / status`` lifecycle, with kill-and-resume
  safety and shard merges that are bit-identical to single-shot runs;
* :func:`~repro.campaign.runner.work_campaign` (``campaign work`` / ``run
  --steal``) replaces static sharding with lease-based work stealing
  (:mod:`repro.campaign.leases`): any number of workers claim pending
  units under TTL leases, a killed worker's units are reclaimed after
  expiry and re-executed safely (idempotent content-addressed commits),
  and per-unit cost estimates start expensive saturation points first.

The CLI front end is ``python -m repro campaign``.
"""

from repro.campaign.leases import (
    LeaseHealth,
    LeaseRecord,
    LeaseStore,
    WorkerRecord,
    default_worker_id,
    lease_health,
    open_lease_store,
    order_units_by_cost,
    worker_member_name,
)
from repro.campaign.plan import CampaignPlan, CampaignUnit, SIMULATING_FIGURES
from repro.campaign.runner import (
    CampaignGC,
    CampaignMerge,
    CampaignRunReport,
    CampaignStatus,
    CampaignTransport,
    CampaignWorkReport,
    campaign_status,
    events_enabled,
    gc_campaign,
    merge_campaign,
    pull_campaign,
    push_campaign,
    resolve_campaign_backend,
    run_campaign,
    work_campaign,
)
from repro.campaign.serialize import (
    config_from_dict,
    config_to_dict,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.campaign.store import PointStore, StoreKeyScan, shard_member_name

__all__ = [
    "CampaignGC",
    "CampaignMerge",
    "CampaignPlan",
    "CampaignRunReport",
    "CampaignStatus",
    "CampaignTransport",
    "CampaignUnit",
    "CampaignWorkReport",
    "LeaseHealth",
    "LeaseRecord",
    "LeaseStore",
    "PointStore",
    "SIMULATING_FIGURES",
    "StoreKeyScan",
    "WorkerRecord",
    "campaign_status",
    "config_from_dict",
    "config_to_dict",
    "default_worker_id",
    "events_enabled",
    "gc_campaign",
    "lease_health",
    "merge_campaign",
    "metrics_from_dict",
    "metrics_to_dict",
    "open_lease_store",
    "order_units_by_cost",
    "pull_campaign",
    "push_campaign",
    "resolve_campaign_backend",
    "run_campaign",
    "shard_member_name",
    "work_campaign",
    "worker_member_name",
]
