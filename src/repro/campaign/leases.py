"""TTL lease records: the coordination layer of work-stealing campaigns.

``run --shard i/N`` is static round-robin — one slow or crashed host
strands its shard.  The work-stealing worker loop
(:func:`repro.campaign.runner.work_campaign`) replaces that with dynamic
claiming: any number of workers repeatedly *acquire* a TTL lease on a
pending (point, replication) unit, simulate it, commit the result to the
campaign backend, and *release* the lease.  This module is the lease
storage itself — one sidecar record per unit, kept in (or next to) the
campaign backend under the reserved ``.leases/`` prefix the result scans
ignore.

Leases are advisory, not locks.  The safety argument is layered:

* **liveness** — a lease expires ``ttl`` seconds after its last renewal,
  so a killed or hung worker's units become claimable again
  (*reclaimed*, with the record's ``generation`` bumped) without any
  central coordinator;
* **correctness** — two workers racing on one unit is *safe*, merely
  wasteful: results are content-addressed and commits idempotent
  (records for one key are bit-identical by construction), so
  double-execution cannot change a single output bit.  Lease stores
  therefore only need best-effort mutual exclusion — read-check-write
  over the same blob/row primitives the backends already have — not
  linearizable CAS.

A heartbeat thread (:class:`WorkerHeartbeat`) renews every held lease at
``ttl / 3`` and publishes a per-worker status record (claimed/simulated
counters), which ``campaign status --json`` aggregates into the ``work``
health payload (:func:`lease_health`).

Cost-ordered claiming: :func:`order_units_by_cost` sorts pending units by
estimated simulated cycles — observed ``total_cycles`` at the nearest
lower completed injection rate in the same sweep series, scaled linearly
by the rate ratio (cost grows with offered load, sharply near
saturation), falling back to the injection rate itself when nothing is
observed yet.  Expensive saturation points start first, so the campaign's
wall-clock is not hostage to whichever worker drew them last.
"""

from __future__ import annotations

import json
import logging
import os
import re
import socket
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.backends.objectstore import LEASE_PREFIX, LocalObjectClient, blob_client_for
from repro.backends.retry import DEFAULT_RETRY_POLICY, RetryingBlobClient
from repro.campaign.serialize import config_to_dict
from repro.errors import ConfigurationError
from repro.telemetry.metrics import metrics_registry

logger = logging.getLogger(__name__)

__all__ = [
    "LeaseHealth",
    "LeaseRecord",
    "LeaseStore",
    "MemoryLeaseStore",
    "BlobLeaseStore",
    "SQLiteLeaseStore",
    "WorkerHeartbeat",
    "WorkerRecord",
    "default_worker_id",
    "lease_health",
    "observed_unit_costs",
    "open_lease_store",
    "order_units_by_cost",
    "worker_member_name",
]

_SANITIZE_RE = re.compile(r"[^A-Za-z0-9_.-]+")


def _sanitize(name: str) -> str:
    cleaned = _SANITIZE_RE.sub("-", name).strip(".-")
    return cleaned or "worker"


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique per worker process on a fleet."""
    return _sanitize(f"{socket.gethostname()}-{os.getpid()}")


def worker_member_name(worker: str) -> str:
    """The backend member a worker writes under (cf. ``shard_member_name``)."""
    return f"points-worker-{_sanitize(worker)}"


@dataclass(frozen=True)
class LeaseRecord:
    """One unit's lease: who owns it, until when, and how often it has
    been (re)claimed (``generation`` 1 on first acquire, +1 per takeover)."""

    key: str
    worker: str
    acquired_at: float
    expires_at: float
    generation: int = 1

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "worker": self.worker,
            "acquired_at": self.acquired_at,
            "expires_at": self.expires_at,
            "generation": self.generation,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LeaseRecord":
        return cls(
            key=str(payload["key"]),
            worker=str(payload["worker"]),
            acquired_at=float(payload["acquired_at"]),
            expires_at=float(payload["expires_at"]),
            generation=int(payload.get("generation", 1)),
        )


@dataclass(frozen=True)
class WorkerRecord:
    """A worker's last published heartbeat (status counters ride in
    ``payload``: claimed/simulated/reused/ttl/…)."""

    worker: str
    updated_at: float
    payload: dict

    def to_dict(self) -> dict:
        return {"worker": self.worker, "updated_at": self.updated_at, **self.payload}


class LeaseStore(ABC):
    """The lease contract over four storage primitives.

    Subclasses implement ``_read`` / ``_write`` / ``_delete`` /
    ``lease_keys`` (plus the worker-record pair); the acquire/renew/release
    semantics live here once, under one re-entrant lock so a worker's
    heartbeat thread and claim loop never interleave mid-operation.  The
    read-check-write acquire is best-effort between *processes* by design —
    see the module docstring's safety argument.
    """

    def __init__(self) -> None:
        #: Expired foreign leases this handle took over.
        self.reclaims = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # lease lifecycle
    # ------------------------------------------------------------------ #
    def acquire(
        self, key: str, worker: str, ttl: float, now: Optional[float] = None
    ) -> Optional[LeaseRecord]:
        """Claim ``key`` for ``worker`` until ``now + ttl``.

        Returns the written lease, or ``None`` when another worker holds a
        live lease on the unit.  Re-acquiring one's own live lease renews
        it; taking over an expired lease bumps ``generation`` (and, for a
        foreign lease, the :attr:`reclaims` counter).
        """
        if ttl <= 0:
            raise ConfigurationError(f"lease ttl must be positive seconds (got {ttl})")
        now = time.time() if now is None else now
        with self._lock:
            current = self._read(key)
            if current is not None and not current.expired(now) and current.worker != worker:
                return None
            generation = 1
            reclaimed = False
            if current is not None:
                takeover = current.expired(now) or current.worker != worker
                generation = current.generation + 1 if takeover else current.generation
                if current.expired(now) and current.worker != worker:
                    self.reclaims += 1
                    reclaimed = True
                    logger.warning(
                        "worker %s reclaiming expired lease on unit %s from %s "
                        "(expired %.1fs ago, generation %d)",
                        worker,
                        key,
                        current.worker,
                        now - current.expires_at,
                        generation,
                    )
            registry = metrics_registry()
            if registry is not None:
                registry.counter(
                    "repro_lease_claims_total",
                    "Lease acquisitions by kind.",
                    labelnames=("kind",),
                ).inc(kind="reclaim" if reclaimed else "claim")
            record = LeaseRecord(
                key=key,
                worker=worker,
                acquired_at=now,
                expires_at=now + ttl,
                generation=generation,
            )
            self._write(record)
            return record

    def renew(self, key: str, worker: str, ttl: float, now: Optional[float] = None) -> bool:
        """Extend ``worker``'s lease on ``key``; ``False`` if it no longer
        owns one (expired-and-reclaimed, or already released)."""
        now = time.time() if now is None else now
        with self._lock:
            current = self._read(key)
            if current is None or current.worker != worker:
                return False
            self._write(
                LeaseRecord(
                    key=key,
                    worker=worker,
                    acquired_at=current.acquired_at,
                    expires_at=now + ttl,
                    generation=current.generation,
                )
            )
            return True

    def release(self, key: str, worker: str) -> bool:
        """Drop ``worker``'s lease on ``key`` (after commit, or on exit)."""
        with self._lock:
            current = self._read(key)
            if current is None or current.worker != worker:
                return False
            self._delete(key)
            return True

    def get(self, key: str) -> Optional[LeaseRecord]:
        with self._lock:
            return self._read(key)

    def leases(self) -> List[LeaseRecord]:
        """Every current lease record, sorted by key."""
        with self._lock:
            records = [self._read(key) for key in self.lease_keys()]
        return sorted((r for r in records if r is not None), key=lambda r: r.key)

    # ------------------------------------------------------------------ #
    # worker heartbeats
    # ------------------------------------------------------------------ #
    def heartbeat(self, worker: str, payload: dict, now: Optional[float] = None) -> None:
        """Publish a worker's liveness + status counters."""
        now = time.time() if now is None else now
        with self._lock:
            self._write_worker(WorkerRecord(worker=worker, updated_at=now, payload=dict(payload)))

    def workers(self) -> List[WorkerRecord]:
        """Every worker's last heartbeat, sorted by worker id."""
        with self._lock:
            return sorted(self._read_workers(), key=lambda w: w.worker)

    def close(self) -> None:
        """Release held resources; safe to call more than once."""

    # ------------------------------------------------------------------ #
    # storage primitives
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _read(self, key: str) -> Optional[LeaseRecord]:
        """The stored lease for ``key`` (``None`` when absent or torn —
        a torn lease record is reclaimable, never fatal)."""

    @abstractmethod
    def _write(self, record: LeaseRecord) -> None:
        """Store ``record``, replacing any previous lease on its key."""

    @abstractmethod
    def _delete(self, key: str) -> None:
        """Remove ``key``'s lease (a no-op when absent)."""

    @abstractmethod
    def lease_keys(self) -> List[str]:
        """Keys of every stored lease record."""

    @abstractmethod
    def _write_worker(self, record: WorkerRecord) -> None:
        """Store a worker heartbeat, replacing the previous one."""

    @abstractmethod
    def _read_workers(self) -> List[WorkerRecord]:
        """Every stored worker heartbeat."""


#: Process-wide registry of named in-memory lease stores, mirroring
#: ``mem://<name>`` result backends so an in-process campaign's workers and
#: status queries observe one another.
_NAMED_LEASE_STORES: Dict[str, "MemoryLeaseStore"] = {}


class MemoryLeaseStore(LeaseStore):
    """Lease store for ``mem://<name>`` campaigns (tests, in-process runs)."""

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self.name = name
        self._leases: Dict[str, LeaseRecord] = {}
        self._workers: Dict[str, WorkerRecord] = {}

    @classmethod
    def open(cls, name: str) -> "MemoryLeaseStore":
        instance = _NAMED_LEASE_STORES.get(name)
        if instance is None:
            instance = _NAMED_LEASE_STORES[name] = cls(name)
        return instance

    @staticmethod
    def discard(name: str) -> None:
        """Drop a named instance from the registry (test hygiene)."""
        _NAMED_LEASE_STORES.pop(name, None)

    def _read(self, key: str) -> Optional[LeaseRecord]:
        return self._leases.get(key)

    def _write(self, record: LeaseRecord) -> None:
        self._leases[record.key] = record

    def _delete(self, key: str) -> None:
        self._leases.pop(key, None)

    def lease_keys(self) -> List[str]:
        return list(self._leases)

    def _write_worker(self, record: WorkerRecord) -> None:
        self._workers[record.worker] = record

    def _read_workers(self) -> List[WorkerRecord]:
        return list(self._workers.values())


class BlobLeaseStore(LeaseStore):
    """Lease records as JSON blobs under ``.leases/`` of a blob store.

    Serves every blob-shaped campaign location: ``obj://`` and the
    ``dir://`` campaign directory via :class:`LocalObjectClient` (the
    directory backend only reads top-level ``*.jsonl`` member files, so the
    ``.leases/`` subtree is invisible to it), ``s3://`` / ``gs://`` via
    their SDK clients (result scans skip the prefix explicitly).  Updates
    are delete-then-put because the local client's put is first-write-wins.
    """

    _SUFFIX = ".json"

    def __init__(self, client, prefix: str = LEASE_PREFIX) -> None:
        super().__init__()
        self._client = client
        self._prefix = prefix
        #: Retry accounting when the client is a RetryingBlobClient.
        self.retry_stats = getattr(client, "stats", None)

    def _unit_path(self, key: str) -> str:
        return f"{self._prefix}/units/{key}{self._SUFFIX}"

    def _worker_path(self, worker: str) -> str:
        return f"{self._prefix}/workers/{_sanitize(worker)}{self._SUFFIX}"

    def _load(self, path: str, parse: Callable[[dict], object]) -> Optional[object]:
        try:
            data = self._client.get_blob(path)
        except KeyError:
            return None
        try:
            return parse(json.loads(data.decode("utf-8")))
        except (UnicodeDecodeError, ValueError, KeyError, TypeError):
            return None  # torn/foreign sidecar: treat as absent (reclaimable)

    def _read(self, key: str) -> Optional[LeaseRecord]:
        return self._load(self._unit_path(key), LeaseRecord.from_dict)

    def _write(self, record: LeaseRecord) -> None:
        path = self._unit_path(record.key)
        data = json.dumps(record.to_dict(), sort_keys=True).encode("utf-8")
        self._client.delete_blob(path)
        self._client.put_blob(path, data)

    def _delete(self, key: str) -> None:
        self._client.delete_blob(self._unit_path(key))

    def lease_keys(self) -> List[str]:
        prefix = f"{self._prefix}/units/"
        keys = []
        for path in self._client.list_prefix(prefix):
            name = path[len(prefix) :] if path.startswith(prefix) else path
            if name.endswith(self._SUFFIX) and "/" not in name:
                keys.append(name[: -len(self._SUFFIX)])
        return keys

    def _write_worker(self, record: WorkerRecord) -> None:
        path = self._worker_path(record.worker)
        data = json.dumps(record.to_dict(), sort_keys=True).encode("utf-8")
        self._client.delete_blob(path)
        self._client.put_blob(path, data)

    def _read_workers(self) -> List[WorkerRecord]:
        prefix = f"{self._prefix}/workers/"
        records = []
        for path in list(self._client.list_prefix(prefix)):
            payload = self._load(path, dict)
            if not isinstance(payload, dict) or "worker" not in payload:
                continue
            worker = str(payload.pop("worker"))
            updated = float(payload.pop("updated_at", 0.0))
            records.append(WorkerRecord(worker=worker, updated_at=updated, payload=payload))
        return records


class SQLiteLeaseStore(LeaseStore):
    """Lease records in two sidecar tables of the campaign's SQLite file.

    Shares the database (and its WAL/busy-timeout configuration) with the
    result backend; the backend's own schema only ever touches its
    ``points`` and ``meta`` tables, so the sidecars are invisible to it.
    The connection is opened ``check_same_thread=False`` because the
    heartbeat thread renews leases — cross-thread serialization is the base
    class's re-entrant lock.
    """

    _BUSY_TIMEOUT = 30.0

    def __init__(self, path) -> None:
        super().__init__()
        import sqlite3

        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._connection = sqlite3.connect(
            self.path,
            timeout=self._BUSY_TIMEOUT,
            isolation_level=None,  # autocommit: every statement is atomic
            check_same_thread=False,
        )
        cursor = self._connection.cursor()
        cursor.execute("PRAGMA journal_mode=WAL")
        cursor.execute(f"PRAGMA busy_timeout={int(self._BUSY_TIMEOUT * 1000)}")
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS leases ("
            "key TEXT PRIMARY KEY, worker TEXT NOT NULL, "
            "acquired_at REAL NOT NULL, expires_at REAL NOT NULL, "
            "generation INTEGER NOT NULL)"
        )
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS lease_workers ("
            "worker TEXT PRIMARY KEY, updated_at REAL NOT NULL, "
            "payload TEXT NOT NULL)"
        )

    def _read(self, key: str) -> Optional[LeaseRecord]:
        row = self._connection.execute(
            "SELECT key, worker, acquired_at, expires_at, generation "
            "FROM leases WHERE key = ?",
            (key,),
        ).fetchone()
        if row is None:
            return None
        return LeaseRecord(
            key=row[0], worker=row[1], acquired_at=row[2], expires_at=row[3], generation=row[4]
        )

    def _write(self, record: LeaseRecord) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO leases "
            "(key, worker, acquired_at, expires_at, generation) "
            "VALUES (?, ?, ?, ?, ?)",
            (record.key, record.worker, record.acquired_at, record.expires_at, record.generation),
        )

    def _delete(self, key: str) -> None:
        self._connection.execute("DELETE FROM leases WHERE key = ?", (key,))

    def lease_keys(self) -> List[str]:
        return [row[0] for row in self._connection.execute("SELECT key FROM leases")]

    def _write_worker(self, record: WorkerRecord) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO lease_workers (worker, updated_at, payload) "
            "VALUES (?, ?, ?)",
            (record.worker, record.updated_at, json.dumps(record.payload, sort_keys=True)),
        )

    def _read_workers(self) -> List[WorkerRecord]:
        rows = self._connection.execute(
            "SELECT worker, updated_at, payload FROM lease_workers"
        ).fetchall()
        records = []
        for worker, updated, payload in rows:
            try:
                parsed = json.loads(payload)
            except ValueError:
                parsed = {}
            records.append(WorkerRecord(worker=worker, updated_at=updated, payload=parsed))
        return records

    def close(self) -> None:
        self._connection.close()


def open_lease_store(uri: str) -> LeaseStore:
    """The lease store paired with a campaign backend URI.

    Leases live *with* the results — same database for ``sqlite://``, a
    ``.leases/`` subtree for the blob and directory layouts — so the
    campaign has exactly one coordination point and no extra configuration.
    A ``chaos+`` backend gets chaos-injected, retrying lease I/O too: the
    coordination layer must survive the same faults as the data layer.
    """
    from repro.backends.registry import parse_backend_uri

    scheme, location = parse_backend_uri(uri)
    chaos_spec = None
    if scheme.startswith("chaos+"):
        from repro.backends.chaos import parse_chaos_location

        scheme = scheme[len("chaos+") :]
        location, chaos_spec = parse_chaos_location(location)
    if scheme == "mem":
        if not location:
            raise ConfigurationError(
                "work-stealing needs a shareable backend; the anonymous "
                "mem:// store is private to each opener — use mem://<name> "
                "or a persistent backend"
            )
        return MemoryLeaseStore.open(location)
    if scheme == "sqlite":
        return SQLiteLeaseStore(location)
    if scheme == "dir":
        client = LocalObjectClient(location)
    elif scheme in ("obj", "s3", "gs"):
        client = blob_client_for(scheme, location)
    else:
        raise ConfigurationError(
            f"no lease store is defined for backend scheme {scheme!r}; "
            "work-stealing campaigns support mem://<name>, dir, sqlite, "
            "obj, s3 and gs backends (and their chaos+ variants)"
        )
    policy = DEFAULT_RETRY_POLICY
    if chaos_spec is not None:
        from repro.backends.chaos import ChaosBlobClient

        client = ChaosBlobClient(client, chaos_spec)
        policy = chaos_spec.policy()
    return BlobLeaseStore(RetryingBlobClient(client, policy=policy))


class WorkerHeartbeat:
    """A daemon thread renewing a worker's held leases and publishing its
    status record every ``ttl / 3`` seconds.

    ``held`` is the worker loop's live set of claimed unit keys (a copy is
    snapshotted per beat); ``status`` is a callable returning the counter
    payload to publish.  A wait/notify stop is used instead of a plain
    sleep so worker shutdown never blocks for a beat interval.
    """

    def __init__(
        self,
        store: LeaseStore,
        worker: str,
        ttl: float,
        held,
        status: Callable[[], dict],
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._store = store
        self._worker = worker
        self._ttl = ttl
        self._held = held
        self._status = status
        self._clock = clock
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{worker}", daemon=True
        )

    def beat(self) -> None:
        """One renewal + heartbeat pass (also called inline by the loop)."""
        now = self._clock()
        for key in list(self._held):
            self._store.renew(key, self._worker, self._ttl, now=now)
        self._store.heartbeat(self._worker, self._status(), now=now)
        registry = metrics_registry()
        if registry is not None:
            # How far one renewal+publish pass runs behind the wall clock —
            # sustained lag approaching the ttl/3 interval means renewals
            # are at risk of losing the race against lease expiry.
            registry.gauge(
                "repro_lease_heartbeat_lag_seconds",
                "Seconds one heartbeat pass took (renewals + publish).",
                labelnames=("worker",),
            ).set(max(0.0, self._clock() - now), worker=self._worker)

    def _run(self) -> None:
        interval = max(self._ttl / 3.0, 0.05)
        while not self._stop.wait(interval):
            try:
                self.beat()
            except Exception:
                # A failed beat must not kill the thread: the next beat (or
                # the lease TTL) resolves it either way.
                logger.warning(
                    "heartbeat pass failed for worker %s; retrying next beat",
                    self._worker,
                    exc_info=True,
                )
                continue

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=max(self._ttl, 1.0))


# --------------------------------------------------------------------- #
# cost-ordered claiming
# --------------------------------------------------------------------- #
def _series_key(config) -> str:
    """Units differing only in injection rate / seed belong to one series."""
    payload = config_to_dict(config)
    for volatile in ("injection_rate", "seed", "metadata"):
        payload.pop(volatile, None)
    return json.dumps(payload, sort_keys=True)


def observed_unit_costs(store, units) -> Dict[str, float]:
    """``key -> observed total_cycles`` for every already-completed unit."""
    costs: Dict[str, float] = {}
    for unit in units:
        if unit.key in store:
            served = store.get(unit.config)
            if served is not None:
                costs[unit.key] = float(served.metrics.total_cycles)
    return costs


def order_units_by_cost(units, observed: Dict[str, float]) -> list:
    """Pending units sorted most-expensive-first (ties by plan order).

    A unit's estimate is the observed cycle cost at the nearest
    lower-or-equal injection rate of its own series, scaled linearly by the
    rate ratio — monotone in offered load, which is what matters for
    longest-job-first scheduling; series with no observations yet rank by
    injection rate alone (higher load, higher cost).  Pure and
    deterministic: every worker computes the same order.
    """
    by_series: Dict[str, List[Tuple[float, float]]] = {}
    for unit in units:
        cost = observed.get(unit.key)
        if cost is not None:
            by_series.setdefault(_series_key(unit.config), []).append(
                (unit.config.injection_rate, cost)
            )
    for pairs in by_series.values():
        pairs.sort()

    def estimate(unit) -> float:
        rate = float(unit.config.injection_rate)
        pairs = by_series.get(_series_key(unit.config))
        if not pairs:
            return rate
        best = pairs[0]
        for known_rate, cycles in pairs:
            if known_rate > rate:
                break
            best = (known_rate, cycles)
        known_rate, cycles = best
        scale = rate / known_rate if known_rate > 0 else 1.0
        return cycles * scale

    return sorted(units, key=lambda unit: (-estimate(unit), unit.index))


# --------------------------------------------------------------------- #
# health reporting
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LeaseHealth:
    """The ``work`` payload of ``campaign status --json``: lease and worker
    health a dashboard (or the CI chaos job) watches for stragglers."""

    active_leases: int
    expired_leases: int
    reclaims: int
    retries: int
    workers: List[dict]

    def as_dict(self) -> dict:
        return {
            "active_leases": self.active_leases,
            "expired_leases": self.expired_leases,
            "reclaims": self.reclaims,
            "retries": self.retries,
            "workers": self.workers,
        }


def lease_health(uri: str, now: Optional[float] = None) -> Optional[LeaseHealth]:
    """Aggregate lease/worker health of a campaign backend.

    ``None`` when the backend scheme has no lease store (a third-party
    scheme) — status still works, it just reports no work-stealing health.
    Reclaim and retry totals are the sums workers reported in their final
    heartbeats plus the generation overshoot of live lease records, so
    the numbers survive worker exit.
    """
    now = time.time() if now is None else now
    if _sqlite_store_missing(uri):
        return LeaseHealth(0, 0, 0, 0, [])
    try:
        store = open_lease_store(uri)
    except ConfigurationError:
        return None
    try:
        leases = store.leases()
        workers = store.workers()
    finally:
        store.close()
    active = sum(1 for lease in leases if not lease.expired(now))
    expired = len(leases) - active
    reported_reclaims = sum(int(w.payload.get("reclaimed", 0)) for w in workers)
    retries = sum(int(w.payload.get("retries", 0)) for w in workers)
    rows = []
    for worker in workers:
        ttl = float(worker.payload.get("ttl", 60.0))
        rows.append(
            {
                "worker": worker.worker,
                "updated_at": worker.updated_at,
                "active": now - worker.updated_at < 3.0 * ttl,
                **worker.payload,
            }
        )
    return LeaseHealth(
        active_leases=active,
        expired_leases=expired,
        reclaims=reported_reclaims,
        retries=retries,
        workers=rows,
    )


def _sqlite_store_missing(uri: str) -> bool:
    """Whether ``uri`` is a sqlite backend whose file does not exist yet —
    probing its lease store would *create* the database, and a status query
    must never mutate the store it reports on."""
    from repro.backends.registry import parse_backend_uri

    scheme, location = parse_backend_uri(uri)
    if scheme == "chaos+sqlite":
        from repro.backends.chaos import parse_chaos_location

        scheme, location = "sqlite", parse_chaos_location(location)[0]
    return scheme == "sqlite" and not os.path.exists(location)
