"""Campaign manifests: every (point, replication) of an experiment as work units.

A :class:`CampaignPlan` turns a sweep or a figure experiment into an explicit,
shardable list of :class:`CampaignUnit` work units — one fully-specified
:class:`~repro.sim.config.SimulationConfig` per (point, replication), each
content-addressed by :func:`repro.sim.config.config_hash`.  The manifest is
written to ``campaign.json`` inside the campaign directory and is
self-contained: a shard runner rebuilds the exact configurations from it
without importing any experiment code, and the merge step re-derives the
published series from the same enumeration.

Enumeration reuses the *real* execution machinery: a
:class:`_PlanningExecutor` (a :class:`~repro.sim.parallel.SweepExecutor` that
records configurations instead of simulating them) is threaded through the
same ``run_injection_rate_sweep`` / experiment ``run()`` code paths a live run
takes, so the planned units are — by construction, not by convention — exactly
the runs a single-process execution would perform, with identical derived
seeds and metadata.  Saturation truncation never fires during planning (the
recorded placeholders are all unsaturated), so the plan covers the full grid;
the merge step re-applies the experiment's own truncation to the real,
store-served results.  That full-grid coverage is a deliberate trade-off: a
static work list is what makes shards coordination-free, at the cost of
simulating deep-post-saturation points a direct run's early-stop would have
skipped (each still bounded per-run by ``saturation_queue_limit``) and
truncating them back out at merge time.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.campaign.serialize import config_from_dict, config_to_dict
from repro.errors import ConfigurationError
from repro.metrics.collectors import NetworkMetrics
from repro.sim.config import SimulationConfig, config_hash
from repro.sim.parallel import ShardSpec, SweepExecutor
from repro.sim.runner import SimulationResult

__all__ = [
    "CampaignPlan",
    "CampaignUnit",
    "MANIFEST_NAME",
    "SIMULATING_FIGURES",
    "check_campaign_backend",
]


def check_campaign_backend(uri: str) -> str:
    """Validate a backend URI *as a campaign store* and return it.

    Beyond the registry's own parse, campaigns reject the anonymous
    ``mem://`` form: every lifecycle invocation would open a fresh private
    store, so results committed by ``run`` could never be observed by
    ``status``/``merge`` — the whole campaign would silently re-simulate
    forever.  Named ``mem://<name>`` stores (shared process-wide) and the
    persistent backends are fine.  Shared by plan-time validation and the
    run/merge/status resolution path, so the mistake fails loudly wherever
    the URI enters.
    """
    from repro.backends.registry import parse_backend_uri

    scheme, location = parse_backend_uri(uri)
    if scheme == "chaos+mem":
        # The chaos variant of mem:// keeps the same anonymity rule; its
        # location is <name>?<chaos params>.
        scheme, location = "mem", location.partition("?")[0]
    if scheme == "mem" and not location:
        raise ConfigurationError(
            "campaigns cannot use the anonymous mem:// backend: every "
            "invocation would open a fresh empty store, so run results could "
            "never be seen by status or merge — use mem://<name> (shared "
            "within one process) or a persistent dir:// / sqlite:// backend"
        )
    return uri

#: Manifest file name inside a campaign directory.
MANIFEST_NAME = "campaign.json"
#: Format version stamped on the manifest.
_MANIFEST_VERSION = 1
#: Figures that simulate (fig1 only builds fault regions, nothing to shard).
SIMULATING_FIGURES = ("fig3", "fig4", "fig5", "fig6", "fig7")


def _placeholder_metrics(config: SimulationConfig) -> NetworkMetrics:
    """A neutral (unsaturated, all-zero) metrics record for planning runs."""
    return NetworkMetrics(
        mean_latency=0.0,
        latency_stddev=0.0,
        max_latency=0.0,
        mean_network_latency=0.0,
        mean_hops=0.0,
        delivered_messages=0,
        measured_messages=0,
        generated_messages=0,
        measurement_cycles=0,
        total_cycles=0,
        num_nodes=config.topology.num_nodes,
        message_length=config.message_length,
        throughput_messages=0.0,
        throughput_flits=0.0,
        messages_absorbed_total=0,
        messages_absorbed_measured=0,
        absorbed_message_fraction=0.0,
        mean_absorptions_per_message=0.0,
        offered_load=config.injection_rate,
        saturated=False,
    )


class _PlanningExecutor(SweepExecutor):
    """An executor that records every configuration instead of simulating.

    Driven through the very same sweep/experiment code a live run uses, it
    captures the submission-order stream of configurations (validating each,
    so a bad campaign fails at plan time, not on a remote shard) and answers
    with unsaturated placeholders so no truncation path ever fires.
    """

    def __init__(self, replications: int = 1) -> None:
        super().__init__(jobs=1, replications=replications)
        self.recorded: List[SimulationConfig] = []

    def run_configs(
        self,
        configs: Sequence[SimulationConfig],
        progress: Optional[Callable[[SimulationResult], None]] = None,
    ) -> List[SimulationResult]:
        results = []
        for config in configs:
            config.validate()
            self.recorded.append(config)
            result = SimulationResult(config=config, metrics=_placeholder_metrics(config))
            results.append(result)
            if progress is not None:
                progress(result)
        return results


@dataclass(frozen=True)
class CampaignUnit:
    """One shardable work unit: a fully-specified configuration and its key."""

    index: int
    key: str
    config: SimulationConfig


@dataclass
class CampaignPlan:
    """The manifest of one campaign: what to run and how to reassemble it.

    ``kind`` is ``"sweep"`` (an explicit injection-rate sweep) or
    ``"experiment"`` (one of the paper's simulating figures); ``spec`` holds
    the kind-specific parameters the merge step needs to re-derive the
    published series (base configuration and rates, or figure name, seed,
    scale and replication count).  ``units`` is the full enumeration, in the
    submission order of a single-process run — unit ``index`` doubles as the
    shard-assignment position.
    """

    kind: str
    spec: dict
    units: List[CampaignUnit] = field(default_factory=list)
    #: Backend URI recorded at plan time (e.g. ``sqlite://…``); ``None``
    #: means the campaign directory's own ``dir://`` store.  Like the pinned
    #: experiment scale, the recorded backend travels with the manifest so
    #: every ``run``/``merge``/``status`` invocation lands on the same store
    #: without repeating the flag (an explicit ``--backend`` still wins).
    backend: Optional[str] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _units_from(configs: Sequence[SimulationConfig]) -> List[CampaignUnit]:
        return [
            CampaignUnit(index=i, key=config_hash(c), config=c)
            for i, c in enumerate(configs)
        ]

    @staticmethod
    def _checked_backend(backend: Optional[str]) -> Optional[str]:
        """Validate a backend URI at plan time (fail before any work exists)."""
        if backend is not None:
            check_campaign_backend(backend)
        return backend

    @classmethod
    def from_injection_sweep(
        cls,
        base_config: SimulationConfig,
        rates: Sequence[float],
        replications: int = 1,
        label: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "CampaignPlan":
        """Plan a replicated injection-rate sweep of ``base_config``.

        The enumerated units carry exactly the per-(point, replication)
        configurations — derived seeds, metadata tags — that
        :meth:`SweepExecutor.run_injection_rate_sweep` would execute with the
        same base seed, so a merged campaign is bit-identical to a
        single-shot run.
        """
        label = label or base_config.describe()
        planner = _PlanningExecutor(replications=replications)
        planner.run_injection_rate_sweep(
            base_config, rates, label=label, stop_after_saturation=0
        )
        spec = {
            "base_config": config_to_dict(base_config),
            "rates": [float(r) for r in rates],
            "label": label,
            "replications": replications,
        }
        return cls(
            kind="sweep",
            spec=spec,
            units=cls._units_from(planner.recorded),
            backend=cls._checked_backend(backend),
        )

    @classmethod
    def from_experiment(
        cls,
        figure: str,
        replications: int = 1,
        scale=None,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> "CampaignPlan":
        """Plan one of the paper's simulating figures (fig3–fig7).

        The figure's own ``run()`` is driven with a recording executor, so
        the plan enumerates exactly the configurations it would simulate.
        The resolved :class:`~repro.experiments.common.ExperimentScale` is
        pinned into the manifest: ``run``/``merge`` invocations reuse it
        regardless of their own ``REPRO_SCALE`` environment.
        """
        # Imported here: repro.experiments pulls in the figure modules, which
        # use repro.campaign lazily through the executor-resolution helper —
        # a module-level import would be circular.
        from repro.experiments import EXPERIMENTS
        from repro.experiments.common import get_scale

        if figure not in SIMULATING_FIGURES:
            raise ConfigurationError(
                f"cannot plan a campaign for {figure!r}; simulating figures are "
                f"{', '.join(SIMULATING_FIGURES)} (fig1 builds fault regions "
                "without simulating)"
            )
        scale = get_scale(scale)
        planner = _PlanningExecutor(replications=replications)
        kwargs = {"scale": scale, "executor": planner}
        if seed is not None:
            kwargs["seed"] = seed
        EXPERIMENTS[figure].run(**kwargs)
        spec = {
            "figure": figure,
            "seed": seed,
            "replications": replications,
            "scale": asdict(scale),
        }
        return cls(
            kind="experiment",
            spec=spec,
            units=cls._units_from(planner.recorded),
            backend=cls._checked_backend(backend),
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """The manifest as a JSON-ready payload.

        One serialisation for both carriers: :meth:`save` writes it to
        ``campaign.json`` and the serve daemon's ``GET /campaigns/<id>/plan``
        ships it to remote workers, who rebuild through
        :meth:`from_payload` with the same integrity checks a local load
        performs.
        """
        return {
            "version": _MANIFEST_VERSION,
            "kind": self.kind,
            "backend": self.backend,
            "spec": self.spec,
            "units": [
                {"index": u.index, "key": u.key, "config": config_to_dict(u.config)}
                for u in self.units
            ],
        }

    def save(self, directory) -> Path:
        """Write the manifest to ``<directory>/campaign.json`` and return its path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MANIFEST_NAME
        # Atomic publish: everything else in the lifecycle depends on this one
        # file, so a killed plan must leave either no manifest or a whole one.
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.to_payload(), indent=1) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        return path

    @staticmethod
    def _read_manifest(directory) -> tuple:
        """The manifest path and version-checked payload of a campaign directory."""
        path = Path(directory) / MANIFEST_NAME
        if not path.exists():
            raise ConfigurationError(
                f"no campaign manifest at {path}; create one with "
                "'repro campaign plan' (or CampaignPlan.save) first"
            )
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise ConfigurationError(
                f"campaign manifest {path} is not valid JSON ({exc}); "
                "re-plan the campaign"
            ) from exc
        if payload.get("version") != _MANIFEST_VERSION:
            raise ConfigurationError(
                f"unsupported campaign manifest version {payload.get('version')!r} "
                f"in {path} (this library writes version {_MANIFEST_VERSION})"
            )
        return path, payload

    @classmethod
    def load_keys(cls, directory) -> "tuple[str, List[str], Optional[str]]":
        """The manifest's kind, unit keys and recorded backend, without
        rebuilding configs.

        Status-style queries only need key membership, so this trusts the
        recorded content-addresses instead of paying a config reconstruction
        plus SHA-256 re-hash per unit the way :meth:`load` does — on
        million-point manifests that is the difference between reading a
        column and re-verifying the campaign.  Integrity is still enforced
        where it matters: ``run`` and ``merge`` always go through
        :meth:`load`.
        """
        _, payload = cls._read_manifest(directory)
        return (
            payload["kind"],
            [entry["key"] for entry in payload["units"]],
            payload.get("backend"),
        )

    @classmethod
    def from_payload(cls, payload: object, where: str = "(payload)") -> "CampaignPlan":
        """Rebuild and integrity-check a plan from its manifest payload.

        ``where`` names the payload's origin (a manifest path, a daemon URL)
        so every error is actionable.  The checks are the same wherever the
        payload came from: a disk manifest and a plan fetched over HTTP are
        equally untrusted inputs.
        """
        if not isinstance(payload, dict) or payload.get("version") != _MANIFEST_VERSION:
            version = payload.get("version") if isinstance(payload, dict) else payload
            raise ConfigurationError(
                f"unsupported campaign manifest version {version!r} "
                f"in {where} (this library reads version {_MANIFEST_VERSION})"
            )
        units = []
        for position, entry in enumerate(payload["units"]):
            # Shard ownership is defined by list position (unit.index doubles
            # as it), so a reordered or hand-edited manifest must fail loudly
            # rather than let two views of ownership disagree.
            if int(entry["index"]) != position:
                raise ConfigurationError(
                    f"campaign unit at position {position} in {where} records "
                    f"index {entry['index']}; unit indices must equal their "
                    "list position — the manifest was reordered or hand-edited; "
                    "re-plan the campaign"
                )
            try:
                config = config_from_dict(entry["config"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"campaign unit {entry.get('index')} in {where} does not "
                    f"reconstruct ({exc}); the manifest was hand-edited or "
                    "written by an incompatible library version — re-plan the "
                    "campaign"
                ) from exc
            # Recomputing the content-address catches any drift between the
            # manifest writer's key function and ours: a silent mismatch
            # would make every stored point an apparent miss.
            key = config_hash(config)
            if key != entry["key"]:
                raise ConfigurationError(
                    f"campaign unit {entry['index']} in {where} hashes to {key[:12]}… "
                    f"but the manifest records {entry['key'][:12]}…; the manifest "
                    "was written by an incompatible library version — re-plan the "
                    "campaign"
                )
            units.append(CampaignUnit(index=int(entry["index"]), key=key, config=config))
        return cls(
            kind=payload["kind"],
            spec=payload["spec"],
            units=units,
            backend=payload.get("backend"),
        )

    @classmethod
    def load(cls, directory) -> "CampaignPlan":
        """Load and integrity-check the manifest of a campaign directory."""
        path, payload = cls._read_manifest(directory)
        return cls.from_payload(payload, where=str(path))

    # ------------------------------------------------------------------ #
    # shard views
    # ------------------------------------------------------------------ #
    def shard_units(self, shard: Optional[ShardSpec]) -> List[CampaignUnit]:
        """The units owned by ``shard`` (all of them when ``shard`` is None)."""
        if shard is None:
            return list(self.units)
        return [u for u in self.units if shard.owns(u.index)]
