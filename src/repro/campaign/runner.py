"""Campaign lifecycle: run shards, merge stores, report status.

The lifecycle over one campaign directory (manifest + result backend):

* :func:`run_campaign` streams (a shard of) the planned work units through
  the executor's producer/consumer loop: every completed (point,
  replication) is committed to the backend the moment it finishes, so a
  killed ``run`` loses at most in-flight work, ``status`` reflects live
  progress, and re-invocation resumes with only the unfinished units
  recomputed (completed ones come back as recorded ``reused`` hits);
* :func:`merge_campaign` re-derives the published series by replaying the
  original sweep/experiment against the merged backend: with every unit
  stored this simulates nothing and the output is bit-identical to a
  single-shot run with the same base seed (any unit still missing is
  simulated on the spot and reported);
* :func:`campaign_status` summarises plan-vs-store completion per backend
  member, for humans (table) and CI dashboards (``--json``);
* :func:`push_campaign` / :func:`pull_campaign` reconcile the campaign's
  backend with any other backend URI by copying framed records with
  content-address dedup (:func:`repro.backends.sync.sync_backends`) — the
  cross-host half of the lifecycle: hosts that ran shards into local stores
  push them to a shared ``obj://``/``s3://`` store (or pull a colleague's
  records in), and a later ``merge`` anywhere sees the union, bit-identical
  to a single-shot run;
* :func:`gc_campaign` removes stored records the plan's key-set no longer
  references (the residue of a re-plan or an abandoned campaign sharing the
  store), so status and disk usage track the current plan.

Which backend a campaign uses is resolved in one place
(:func:`resolve_campaign_backend`): an explicit argument/flag wins, then the
URI recorded in the manifest at plan time, then the ``REPRO_BACKEND``
environment variable, and finally the campaign directory's own ``dir://``
store — the historical layout, byte-for-byte.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.analysis.tables import series_table
from repro.backends.registry import DEFAULT_MEMBER, open_backend, scan_backend
from repro.backends.sync import SyncReport, sync_backends
from repro.campaign.leases import (
    WorkerHeartbeat,
    default_worker_id,
    lease_health,
    observed_unit_costs,
    open_lease_store,
    order_units_by_cost,
    worker_member_name,
)
from repro.campaign.plan import CampaignPlan, check_campaign_backend
from repro.campaign.serialize import config_from_dict
from repro.campaign.store import shard_member_name
from repro.errors import ConfigurationError
from repro.sim.parallel import ShardSpec, SweepExecutor
from repro.sim.runner import SimulationResult
from repro.telemetry.events import EventLog, open_event_log

logger = logging.getLogger(__name__)

#: Environment switch for campaign event tracing (the CLI's ``--events``
#: flag wins; any non-empty value other than ``0``/``false`` enables it).
ENV_EVENTS = "REPRO_EVENTS"


def events_enabled(flag: Optional[bool] = None) -> bool:
    """Whether a campaign invocation should write an event log."""
    if flag is not None:
        return flag
    return os.environ.get(ENV_EVENTS, "").strip().lower() not in ("", "0", "false")


def _open_campaign_events(uri: str, run: str) -> Optional[EventLog]:
    """An event log beside the campaign results, or ``None`` when the
    backend scheme cannot host one (events must never fail a run)."""
    try:
        return open_event_log(uri, run)
    except ConfigurationError as exc:
        logger.warning("event tracing disabled for this run: %s", exc)
        return None


def _attach_retry_listener(event_log: EventLog, *stores) -> List[object]:
    """Route blob retry/giveup accounting into the event stream.

    Returns the stats objects that were hooked so the caller can detach
    them (listeners must not outlive the event log)."""
    hooked = []
    for store in stores:
        stats = getattr(store, "retry_stats", None)
        if stats is None or getattr(stats, "listener", None) is not None:
            continue
        stats.listener = lambda outcome, token, exc: event_log.emit(
            "blob", outcome, op=token, error=f"{type(exc).__name__}: {exc}"
        )
        hooked.append(stats)
    return hooked


__all__ = [
    "CampaignGC",
    "CampaignMerge",
    "CampaignRunReport",
    "CampaignStatus",
    "CampaignTransport",
    "CampaignWorkReport",
    "campaign_status",
    "events_enabled",
    "gc_campaign",
    "merge_campaign",
    "pull_campaign",
    "push_campaign",
    "resolve_campaign_backend",
    "run_campaign",
    "work_campaign",
]


def resolve_campaign_backend(
    directory, backend: Optional[str] = None, recorded: Optional[str] = None
) -> str:
    """The backend URI a campaign invocation should use.

    One instance of the documented knob precedence
    (:func:`repro.execution.resolve_backend_uri`): the explicit ``backend``
    argument (the CLI's ``--backend`` escape hatch), then the URI
    ``recorded`` in the manifest at plan time (pinned like the experiment
    scale, so all lifecycle invocations land on one store), then
    ``REPRO_BACKEND``, then the campaign directory itself as a ``dir://``
    store — the historical default layout.  ``REPRO_CACHE_DIR`` is
    deliberately *not* on this ladder (``cache_dir_env=False``): a cache
    directory in the environment must not silently redirect a campaign away
    from its recorded store.
    """
    from repro.execution import resolve_backend_uri

    uri = resolve_backend_uri(
        backend,
        manifest=recorded,
        default=f"dir://{directory}",
        cache_dir_env=False,
    )
    return check_campaign_backend(uri)


@dataclass(frozen=True)
class CampaignRunReport:
    """What one ``run`` invocation did to a campaign."""

    shard: Optional[ShardSpec]
    total_units: int
    shard_units: int
    reused: int
    simulated: int
    deferred: int
    backend: str = ""

    @property
    def completed(self) -> int:
        """Units of this shard now present in the store."""
        return self.reused + self.simulated

    def describe(self) -> str:
        shard = f"shard {self.shard}" if self.shard else "all shards"
        line = (
            f"{shard}: {self.shard_units}/{self.total_units} units owned, "
            f"{self.simulated} simulated, {self.reused} reused from the store"
        )
        if self.deferred:
            line += f", {self.deferred} deferred by --max-units"
        if self.backend:
            line += f" [{self.backend}]"
        return line


@dataclass(frozen=True)
class CampaignWorkReport:
    """What one work-stealing worker did to a campaign."""

    worker: str
    total_units: int
    claimed: int
    simulated: int
    reused: int
    reclaimed: int
    conflicts: int
    waits: int
    retries: int
    backend: str = ""

    @property
    def completed(self) -> int:
        """Units this worker resolved (simulated or reused from the store)."""
        return self.simulated + self.reused

    def describe(self) -> str:
        line = (
            f"worker {self.worker}: {self.claimed}/{self.total_units} units "
            f"claimed, {self.simulated} simulated, {self.reused} reused from "
            "the store"
        )
        if self.reclaimed:
            line += f", {self.reclaimed} reclaimed from expired leases"
        if self.conflicts:
            line += f", {self.conflicts} lease conflicts"
        if self.waits:
            line += f", {self.waits} waits on foreign leases"
        if self.retries:
            line += f", {self.retries} transient faults retried"
        if self.backend:
            line += f" [{self.backend}]"
        return line


def _retry_count(*stores) -> int:
    """Total transient-fault retries recorded by stores that track them."""
    total = 0
    for store in stores:
        stats = getattr(store, "retry_stats", None)
        total += int(getattr(stats, "retries", 0) or 0)
    return total


@dataclass
class CampaignTransport:
    """Everything one worker needs from a campaign, transport-agnostic.

    The work loop (:func:`work_campaign`) only ever touches a campaign
    through this face: the integrity-checked plan, a result store the
    executor caches against, a lease store, and a way to observe peers'
    commits.  A *local* transport binds those to a backend URI (store scan,
    filesystem/SQLite/object leases); a *remote* one
    (:func:`repro.serve.client.open_remote_campaign`) binds every member to
    the serve daemon's HTTP API — the loop is byte-for-byte the same.
    """

    plan: CampaignPlan
    #: Human-readable origin: a backend URI, or the daemon campaign URL.
    uri: str
    store: object
    leases: object
    #: Zero-argument scan: the campaign's currently stored unit keys.
    completed_keys: Callable[[], frozenset]
    event_log: Optional[EventLog] = None


def _local_transport(
    directory, worker: str, backend: Optional[str], events: Optional[bool]
) -> CampaignTransport:
    """The historical shared-backend transport for one worker."""
    plan = CampaignPlan.load(directory)
    uri = resolve_campaign_backend(directory, backend, plan.backend)
    return CampaignTransport(
        plan=plan,
        uri=uri,
        store=open_backend(uri, member=worker_member_name(worker)),
        leases=open_lease_store(uri),
        # A fresh scan each round is how peers' commits are observed — an
        # open store handle indexed the backend at open time.
        completed_keys=lambda: scan_backend(uri).keys,
        event_log=(
            _open_campaign_events(uri, worker) if events_enabled(events) else None
        ),
    )


def work_campaign(
    directory=None,
    worker: Optional[str] = None,
    ttl: float = 60.0,
    jobs: int = 1,
    max_units: Optional[int] = None,
    poll_interval: Optional[float] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    backend: Optional[str] = None,
    events: Optional[bool] = None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
    server: Optional[str] = None,
) -> CampaignWorkReport:
    """One work-stealing worker: claim, simulate, commit, release, repeat.

    Any number of workers run this concurrently (same host or many) against
    one campaign backend.  Each round the worker re-scans the backend for
    completed keys (observing its peers' commits), claims up to ``2 *
    jobs`` of the most expensive pending units under TTL leases
    (:mod:`repro.campaign.leases` — the look-ahead window deliberately
    leaves work unclaimed for peers), streams them through the executor,
    and releases each lease as its result commits.  When every pending unit
    is leased by live peers the worker polls (``poll_interval``, default
    ``ttl / 4`` capped to [0.1s, 2s]) until a peer commits — or dies, in
    which case its lease expires and the unit is *reclaimed* and re-run,
    which is safe by construction: commits are idempotent and
    content-addressed, so a unit executed twice stores bit-identical
    records.  The worker exits when the campaign is complete (for this
    plan's unit set) or its ``max_units`` simulation budget is spent.

    With ``server`` (the CLI's ``campaign work --server URL``) the worker
    binds to a ``repro serve`` daemon instead of a directory: the plan is
    fetched from ``GET /campaigns/<id>/plan`` and leases, peer observation
    and result commits all go over the daemon's HTTP API — no shared
    filesystem, same loop, and the merged campaign is still bit-identical
    to a single-shot run because the commits land in the daemon's
    content-addressed backend.

    A heartbeat thread renews held leases at ``ttl / 3`` and publishes the
    worker's counters for ``campaign status --json``; ``ttl`` should
    comfortably exceed the longest single simulation so a *healthy*
    worker's lease never expires mid-unit (expiry then only ever signals a
    dead or wedged worker).

    With ``events`` (or ``REPRO_EVENTS=1``) the worker writes a structured
    JSONL event log beside the results (:mod:`repro.telemetry.events`):
    run start/finish, lease claims/reclaims/releases/waits, per-unit
    commits with wall time, and blob retry/giveup faults — what ``repro
    campaign tail`` follows.  Event logs live beside the backend, which a
    remote worker cannot reach, so ``--server`` runs log a warning and
    disable them.
    """
    if ttl <= 0:
        raise ConfigurationError(
            f"lease ttl must be positive seconds (got {ttl}); pick one "
            "comfortably above the longest single simulation"
        )
    if max_units is not None and max_units < 1:
        raise ConfigurationError(
            f"max_units must be a positive bound on newly simulated units "
            f"(got {max_units}); omit it to run every pending unit"
        )
    worker = worker if worker else default_worker_id()
    if server is not None:
        if directory is not None or backend is not None:
            raise ConfigurationError(
                "--server replaces the campaign directory and --backend: the "
                "daemon owns the manifest and the store — drop them, or drop "
                "--server to work a local campaign"
            )
        if events_enabled(events):
            logger.warning(
                "event tracing is backend-side and unavailable over --server; "
                "events disabled for this worker"
            )
        # Imported lazily: the serve package is HTTP-face machinery a
        # filesystem worker never needs.
        from repro.serve.client import open_remote_campaign

        transport = open_remote_campaign(server, worker)
    elif directory is not None:
        transport = _local_transport(directory, worker, backend, events)
    else:
        raise ConfigurationError(
            "work_campaign needs a campaign directory or a --server URL "
            "(http://host:port/campaigns/<id> on a 'repro serve' daemon)"
        )
    return _work_transport(
        transport,
        worker,
        ttl=ttl,
        jobs=jobs,
        max_units=max_units,
        poll_interval=poll_interval,
        progress=progress,
        clock=clock,
        sleep=sleep,
    )


def _work_transport(
    transport: CampaignTransport,
    worker: str,
    ttl: float,
    jobs: int,
    max_units: Optional[int],
    poll_interval: Optional[float],
    progress: Optional[Callable[[SimulationResult], None]],
    clock: Callable[[], float],
    sleep: Callable[[float], None],
) -> CampaignWorkReport:
    """The claim → simulate → commit → release loop over any transport."""
    plan, uri = transport.plan, transport.uri
    store, leases = transport.store, transport.leases
    event_log = transport.event_log
    hooked_stats: List[object] = []
    if event_log is not None:
        hooked_stats = _attach_retry_listener(event_log, store, leases)
        event_log.emit(
            "run",
            "started",
            worker=worker,
            total_units=len(plan.units),
            backend=uri,
            ttl=ttl,
            jobs=jobs,
        )
    counters = {"claimed": 0, "simulated": 0, "reused": 0, "conflicts": 0, "waits": 0}
    held: set = set()
    logger.info(
        "worker %s starting on campaign %s (%d units)",
        worker,
        uri,
        len(plan.units),
    )

    def status_payload() -> dict:
        return {
            "ttl": ttl,
            "claimed": counters["claimed"],
            "simulated": counters["simulated"],
            "reused": counters["reused"],
            "reclaimed": leases.reclaims,
            "retries": _retry_count(store, leases),
        }

    heartbeat = WorkerHeartbeat(leases, worker, ttl, held, status_payload, clock=clock)
    poll = poll_interval if poll_interval is not None else min(2.0, max(0.1, ttl / 4.0))
    window = max(1, jobs) * 2
    executor = SweepExecutor(jobs=jobs, cache=store)
    # Expensive units first: estimates come from whatever this campaign has
    # already committed (lower-rate points of the same series).
    queue = order_units_by_cost(plan.units, observed_unit_costs(store, plan.units))
    heartbeat.start()
    try:
        while True:
            if max_units is not None and counters["simulated"] >= max_units:
                break
            # A fresh scan each round is how peers' commits are observed
            # (over HTTP this is the daemon's keys endpoint).
            done = transport.completed_keys()
            pending = [unit for unit in queue if unit.key not in done]
            if not pending:
                break
            batch = []
            for unit in pending:
                if len(batch) >= window:
                    break
                if max_units is not None and counters["simulated"] + len(batch) >= max_units:
                    break
                reclaims_before = leases.reclaims
                record = leases.acquire(unit.key, worker, ttl, now=clock())
                if record is None:
                    counters["conflicts"] += 1
                    continue
                held.add(unit.key)
                batch.append(unit)
                if event_log is not None:
                    event_log.emit(
                        "lease",
                        "reclaimed" if leases.reclaims > reclaims_before else "claimed",
                        key=unit.key,
                        generation=record.generation,
                    )
            if not batch:
                # Everything pending is leased by live peers: wait for their
                # commits — or for their leases to expire and be reclaimed.
                counters["waits"] += 1
                if event_log is not None:
                    event_log.emit("lease", "wait", pending=len(pending))
                    event_log.flush()
                sleep(poll)
                continue
            counters["claimed"] += len(batch)
            for event in executor.stream_configs([unit.config for unit in batch]):
                unit = batch[event.index]
                counters["reused" if event.reused else "simulated"] += 1
                leases.release(unit.key, worker)
                held.discard(unit.key)
                if event_log is not None:
                    event_log.emit(
                        "unit",
                        "committed",
                        key=unit.key,
                        index=unit.index,
                        injection_rate=unit.config.injection_rate,
                        reused=event.reused,
                        seconds=round(event.seconds, 6),
                    )
                    event_log.emit("lease", "released", key=unit.key)
                    event_log.flush()
                if progress is not None:
                    progress(event.result)
    finally:
        heartbeat.stop()
        for key in list(held):
            # A *clean* exit (including an executor error unwinding through
            # here) frees its claims immediately; only a killed worker makes
            # peers wait out the TTL.
            leases.release(key, worker)
            held.discard(key)
        retries = _retry_count(store, leases)
        reclaimed = leases.reclaims
        try:
            leases.heartbeat(worker, status_payload(), now=clock())
        except Exception:
            pass  # a final-status write must not mask the real error
        if event_log is not None:
            for stats in hooked_stats:
                stats.listener = None  # type: ignore[attr-defined]
            try:
                event_log.emit(
                    "run",
                    "finished",
                    worker=worker,
                    claimed=counters["claimed"],
                    simulated=counters["simulated"],
                    reused=counters["reused"],
                    conflicts=counters["conflicts"],
                    waits=counters["waits"],
                    reclaimed=reclaimed,
                    retries=retries,
                )
                event_log.close()
            except Exception:
                pass  # a telemetry write must not mask the real error
        leases.close()
        store.close()
        logger.info(
            "worker %s finished: %d simulated, %d reused, %d reclaimed",
            worker,
            counters["simulated"],
            counters["reused"],
            reclaimed,
        )
    return CampaignWorkReport(
        worker=worker,
        total_units=len(plan.units),
        claimed=counters["claimed"],
        simulated=counters["simulated"],
        reused=counters["reused"],
        reclaimed=reclaimed,
        conflicts=counters["conflicts"],
        waits=counters["waits"],
        retries=retries,
        backend=uri,
    )


@dataclass(frozen=True)
class CampaignMerge:
    """The outcome of merging a campaign back into its published series."""

    kind: str
    results: object
    summary: str
    reused: int
    simulated: int
    backend: str = ""

    def describe(self) -> str:
        line = f"merged {self.reused} stored units"
        if self.simulated:
            line += (
                f"; {self.simulated} units were missing from the store and were "
                "simulated during the merge (run the remaining shards to avoid this)"
            )
        return line


@dataclass(frozen=True)
class CampaignStatus:
    """Plan-vs-store completion of a campaign directory."""

    directory: str
    kind: str
    total_units: int
    completed_units: int
    members: List[Tuple[str, int]]
    skipped_records: int
    backend: str = ""
    #: Work-stealing health (:func:`repro.campaign.leases.lease_health`):
    #: active/expired leases, reclaim and retry totals, per-worker
    #: heartbeats.  ``None`` when the backend scheme has no lease store.
    work: Optional[dict] = field(default=None, compare=False)

    @property
    def pending_units(self) -> int:
        return self.total_units - self.completed_units

    @property
    def complete(self) -> bool:
        return self.completed_units == self.total_units

    def as_dict(self) -> dict:
        """Machine-readable view (the ``campaign status --json`` payload)."""
        return {
            "directory": self.directory,
            "kind": self.kind,
            "backend": self.backend,
            "total_units": self.total_units,
            "completed_units": self.completed_units,
            "pending_units": self.pending_units,
            "complete": self.complete,
            "members": [
                {"member": name, "records": count} for name, count in self.members
            ],
            "skipped_records": self.skipped_records,
            "work": self.work,
        }


def run_campaign(
    directory,
    shard: Optional[ShardSpec] = None,
    jobs: int = 1,
    max_units: Optional[int] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    backend: Optional[str] = None,
    steal: bool = False,
    ttl: float = 60.0,
    worker: Optional[str] = None,
    events: Optional[bool] = None,
):
    """Stream (a shard of) a planned campaign into its result backend.

    The run is a producer/consumer drain of
    :meth:`~repro.sim.parallel.SweepExecutor.stream_configs`: each completed
    unit is committed to the backend before its event is consumed here, so a
    kill at any instant loses at most the in-flight simulations and a
    re-invocation resumes with only those recomputed (completed units are
    served from the backend and counted as ``reused``).  Nothing is
    accumulated in memory — a million-unit shard streams through in O(1)
    result space.  ``max_units`` bounds the number of *newly simulated*
    units before returning — a deterministic interruption used by the resume
    tests and the CI smoke job.  Each shard writes under its own member
    name, so shards of one campaign can run concurrently (even on different
    hosts against a shared or later-merged backend).

    With ``steal`` the invocation becomes one work-stealing worker
    (:func:`work_campaign`, returning its :class:`CampaignWorkReport`):
    instead of owning a fixed shard, it claims pending units under TTL
    leases alongside any number of peers.  Static sharding and stealing
    are mutually exclusive — a stealing worker's share *is* whatever it
    manages to claim.
    """
    if steal:
        if shard is not None:
            raise ConfigurationError(
                "--steal replaces static sharding: drop --shard and start "
                "any number of workers (each claims pending units under TTL "
                "leases; 'campaign work' is the same loop)"
            )
        return work_campaign(
            directory,
            worker=worker,
            ttl=ttl,
            jobs=jobs,
            max_units=max_units,
            progress=progress,
            backend=backend,
            events=events,
        )
    if max_units is not None and max_units < 1:
        raise ConfigurationError(
            f"max_units must be a positive bound on newly simulated units "
            f"(got {max_units}); omit it to run every pending unit"
        )
    plan = CampaignPlan.load(directory)
    uri = resolve_campaign_backend(directory, backend, plan.backend)
    member = shard_member_name(shard.index, shard.count) if shard else DEFAULT_MEMBER
    store = open_backend(uri, member=member)
    event_log = (
        _open_campaign_events(uri, f"{member}-{os.getpid()}")
        if events_enabled(events)
        else None
    )
    if event_log is not None:
        _attach_retry_listener(event_log, store)
        event_log.emit(
            "run",
            "started",
            shard=str(shard) if shard else "",
            total_units=len(plan.units),
            backend=uri,
            jobs=jobs,
        )
    reused = simulated = 0
    try:
        owned = plan.shard_units(shard)
        kept = owned
        if max_units is not None:
            # Deterministic interruption: keep every completed unit (they
            # resolve to store hits) plus the first ``max_units`` pending ones.
            kept = []
            budget = max_units
            for unit in owned:
                if unit.key in store:
                    kept.append(unit)
                elif budget > 0:
                    kept.append(unit)
                    budget -= 1
        deferred = len(owned) - len(kept)
        executor = SweepExecutor(jobs=jobs, cache=store)
        for event in executor.stream_configs([u.config for u in kept]):
            if event.reused:
                reused += 1
            else:
                simulated += 1
            if event_log is not None:
                unit = kept[event.index]
                event_log.emit(
                    "unit",
                    "committed",
                    key=unit.key,
                    index=unit.index,
                    injection_rate=unit.config.injection_rate,
                    reused=event.reused,
                    seconds=round(event.seconds, 6),
                )
            if progress is not None:
                progress(event.result)
    finally:
        if event_log is not None:
            try:
                event_log.emit(
                    "run", "finished", reused=reused, simulated=simulated
                )
                event_log.close()
            except Exception:
                pass  # a telemetry write must not mask the real error
        store.close()
    return CampaignRunReport(
        shard=shard,
        total_units=len(plan.units),
        shard_units=len(owned),
        reused=reused,
        simulated=simulated,
        deferred=deferred,
        backend=uri,
    )


def merge_campaign(directory, jobs: int = 1, backend: Optional[str] = None) -> CampaignMerge:
    """Reassemble a campaign's published series from its merged backend.

    Replays the original sweep or experiment with a backend-backed executor:
    stored units come back bit-identical to a fresh run by construction, so
    the merged series equals a single-shot execution with the same base seed
    — whichever backend held them.  An experiment-kind merge runs the
    figure's own code, which re-applies its saturation truncation against
    the real results; a sweep-kind merge returns the full planned grid
    (``stop_after_saturation=0`` — the plan enumerated every point, so the
    merge publishes every point).  Units missing from the backend
    (unfinished shards) are simulated on the spot and counted in the
    returned report.
    """
    plan = CampaignPlan.load(directory)
    uri = resolve_campaign_backend(directory, backend, plan.backend)
    store = open_backend(uri)
    try:
        executor = SweepExecutor(
            jobs=jobs, replications=int(plan.spec["replications"]), cache=store
        )
        hits_before, misses_before = store.hits, store.misses
        if plan.kind == "sweep":
            base = config_from_dict(plan.spec["base_config"])
            results: object = executor.run_injection_rate_sweep(
                base,
                plan.spec["rates"],
                label=plan.spec["label"],
                stop_after_saturation=0,
            )
            summary = series_table([results], metric="latency")
        else:
            # Imported lazily for the same circularity reason as in plan.py.
            from repro.experiments import EXPERIMENTS
            from repro.experiments.common import ExperimentScale

            module = EXPERIMENTS[plan.spec["figure"]]
            kwargs = {"scale": ExperimentScale(**plan.spec["scale"]), "executor": executor}
            if plan.spec.get("seed") is not None:
                kwargs["seed"] = plan.spec["seed"]
            results = module.run(**kwargs)
            summary = module.summarize(results)
        reused = store.hits - hits_before
        simulated = store.misses - misses_before
    finally:
        store.close()
    return CampaignMerge(
        kind=plan.kind,
        results=results,
        summary=summary,
        reused=reused,
        simulated=simulated,
        backend=uri,
    )


@dataclass(frozen=True)
class CampaignGC:
    """What one ``campaign gc`` invocation found (and removed)."""

    directory: str
    backend: str
    planned_units: int
    stored_records: int
    abandoned: int
    removed: int
    dry_run: bool = False

    def describe(self) -> str:
        if self.dry_run:
            return (
                f"{self.abandoned} of {self.stored_records} stored records are "
                f"abandoned by the plan (dry run; nothing removed) [{self.backend}]"
            )
        return (
            f"removed {self.removed} abandoned records, kept "
            f"{self.stored_records - self.removed} [{self.backend}]"
        )


def gc_campaign(directory, backend: Optional[str] = None, dry_run: bool = False) -> "CampaignGC":
    """Remove backend records the campaign plan does not reference.

    A record is *abandoned* when its content-address key is absent from the
    manifest's unit key-set — typically left behind by a re-plan (different
    rates, replications or scale hash to different keys) or by an earlier
    campaign that wrote into the same store.  The gc removes exactly those
    records, so ``status`` and disk usage reflect the current plan and
    nothing else.

    The key-set comparison is the only membership test, so the gc deletes
    records of *any other* campaign sharing the backend: do not gc a shared
    ``obj://``/``s3://`` store unless this campaign is its sole owner.  With
    ``dry_run`` the report counts the abandoned records without deleting
    anything.
    """
    _, unit_keys, recorded = CampaignPlan.load_keys(directory)
    uri = resolve_campaign_backend(directory, backend, recorded)
    store = open_backend(uri)
    try:
        stored = store.keys()
        abandoned = stored - frozenset(unit_keys)
        removed = 0 if dry_run else store.delete_keys(abandoned)
    finally:
        store.close()
    return CampaignGC(
        directory=str(directory),
        backend=uri,
        planned_units=len(unit_keys),
        stored_records=len(stored),
        abandoned=len(abandoned),
        removed=removed,
        dry_run=dry_run,
    )


def _campaign_local_backend(directory, backend: Optional[str]) -> str:
    """The campaign's own backend URI, resolved through the cheap manifest
    path (push/pull move records; they never need reconstructed configs)."""
    _, _, recorded = CampaignPlan.load_keys(directory)
    return resolve_campaign_backend(directory, backend, recorded)


def push_campaign(directory, to: str, backend: Optional[str] = None) -> SyncReport:
    """Copy this campaign's records *to* another backend URI.

    ``to`` is any registered backend URI (typically a shared ``obj://`` or
    ``s3://`` store another host will pull from or merge against); the
    source is the campaign's own backend (``backend`` overrides it exactly
    as it does for ``run``/``merge``/``status``).  Content-address dedup
    makes a push idempotent: re-pushing copies nothing.
    """
    return sync_backends(
        _campaign_local_backend(directory, backend), check_campaign_backend(to)
    )


def pull_campaign(directory, from_uri: str, backend: Optional[str] = None) -> SyncReport:
    """Copy records *from* another backend URI into this campaign's backend.

    The mirror of :func:`push_campaign`: after pulling the stores another
    host pushed, ``status`` counts their units complete and ``merge``
    assembles the union without simulating them.
    """
    return sync_backends(
        check_campaign_backend(from_uri), _campaign_local_backend(directory, backend)
    )


def campaign_status(directory, backend: Optional[str] = None) -> CampaignStatus:
    """Plan-vs-store completion summary of a campaign directory.

    Uses the keys-only views on both sides — :meth:`CampaignPlan.load_keys`
    for the manifest and :func:`repro.backends.registry.scan_backend` for
    the backend — since status answers a membership count and never needs
    reconstructed configs or metrics, so it stays cheap on campaigns far too
    large to load in full.
    """
    kind, unit_keys, recorded = CampaignPlan.load_keys(directory)
    uri = resolve_campaign_backend(directory, backend, recorded)
    scan = scan_backend(uri)
    completed = sum(1 for key in unit_keys if key in scan.keys)
    health = lease_health(uri)
    return CampaignStatus(
        directory=str(directory),
        kind=kind,
        total_units=len(unit_keys),
        completed_units=completed,
        members=scan.members,
        skipped_records=scan.skipped_records,
        backend=uri,
        work=health.as_dict() if health is not None else None,
    )
