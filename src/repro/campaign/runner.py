"""Campaign lifecycle: run shards, merge stores, report status.

The lifecycle over one campaign directory (manifest + point store):

* :func:`run_campaign` executes (a shard of) the planned work units against
  the disk-backed store — completed units are served from disk (counted as
  ``reused``), so a killed or partial run simply resumes on re-invocation;
* :func:`merge_campaign` re-derives the published series by replaying the
  original sweep/experiment against the merged store: with every unit on
  disk this simulates nothing and the output is bit-identical to a
  single-shot run with the same base seed (any unit still missing is
  simulated on the spot and reported);
* :func:`campaign_status` summarises plan-vs-store completion per member
  file, for humans and the CI smoke job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.analysis.tables import series_table
from repro.campaign.plan import CampaignPlan
from repro.campaign.serialize import config_from_dict
from repro.campaign.store import PointStore, shard_member_name
from repro.errors import ConfigurationError
from repro.sim.parallel import ShardSpec, SweepExecutor
from repro.sim.runner import SimulationResult

__all__ = [
    "CampaignMerge",
    "CampaignRunReport",
    "CampaignStatus",
    "campaign_status",
    "merge_campaign",
    "run_campaign",
]


@dataclass(frozen=True)
class CampaignRunReport:
    """What one ``run`` invocation did to a campaign."""

    shard: Optional[ShardSpec]
    total_units: int
    shard_units: int
    reused: int
    simulated: int
    deferred: int

    @property
    def completed(self) -> int:
        """Units of this shard now present in the store."""
        return self.reused + self.simulated

    def describe(self) -> str:
        shard = f"shard {self.shard}" if self.shard else "all shards"
        line = (
            f"{shard}: {self.shard_units}/{self.total_units} units owned, "
            f"{self.simulated} simulated, {self.reused} reused from the store"
        )
        if self.deferred:
            line += f", {self.deferred} deferred by --max-units"
        return line


@dataclass(frozen=True)
class CampaignMerge:
    """The outcome of merging a campaign back into its published series."""

    kind: str
    results: object
    summary: str
    reused: int
    simulated: int

    def describe(self) -> str:
        line = f"merged {self.reused} stored units"
        if self.simulated:
            line += (
                f"; {self.simulated} units were missing from the store and were "
                "simulated during the merge (run the remaining shards to avoid this)"
            )
        return line


@dataclass(frozen=True)
class CampaignStatus:
    """Plan-vs-store completion of a campaign directory."""

    directory: str
    kind: str
    total_units: int
    completed_units: int
    members: List[Tuple[str, int]]
    skipped_records: int

    @property
    def pending_units(self) -> int:
        return self.total_units - self.completed_units

    @property
    def complete(self) -> bool:
        return self.completed_units == self.total_units


def run_campaign(
    directory,
    shard: Optional[ShardSpec] = None,
    jobs: int = 1,
    max_units: Optional[int] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
) -> CampaignRunReport:
    """Execute (a shard of) a planned campaign against its disk store.

    Every owned unit already in the store is served from disk (a recorded
    cache hit) and only the rest are simulated, so re-invoking after a kill
    resumes exactly where the previous run stopped.  ``max_units`` bounds the
    number of *newly simulated* units before returning — a deterministic
    interruption used by the resume tests and the CI smoke job.  Each shard
    appends to its own member file, so shards of one campaign can run
    concurrently (even on different hosts against a shared or later-merged
    directory).
    """
    if max_units is not None and max_units < 1:
        raise ConfigurationError(
            f"max_units must be a positive bound on newly simulated units "
            f"(got {max_units}); omit it to run every pending unit"
        )
    plan = CampaignPlan.load(directory)
    member = shard_member_name(shard.index, shard.count) if shard else "points"
    store = PointStore(directory, member=member)
    owned = plan.shard_units(shard)
    kept = owned
    if max_units is not None:
        # Deterministic interruption: keep every completed unit (they resolve
        # to store hits) plus the first ``max_units`` pending ones.
        kept = []
        budget = max_units
        for unit in owned:
            if unit.key in store:
                kept.append(unit)
            elif budget > 0:
                kept.append(unit)
                budget -= 1
    deferred = len(owned) - len(kept)
    executor = SweepExecutor(jobs=jobs, cache=store)
    hits_before, misses_before = store.hits, store.misses
    executor.run_configs([u.config for u in kept], progress=progress)
    return CampaignRunReport(
        shard=shard,
        total_units=len(plan.units),
        shard_units=len(owned),
        reused=store.hits - hits_before,
        simulated=store.misses - misses_before,
        deferred=deferred,
    )


def merge_campaign(directory, jobs: int = 1) -> CampaignMerge:
    """Reassemble a campaign's published series from its merged store.

    Replays the original sweep or experiment with a store-backed executor:
    stored units come back bit-identical to a fresh run by construction, so
    the merged series equals a single-shot execution with the same base seed.
    An experiment-kind merge runs the figure's own code, which re-applies its
    saturation truncation against the real results; a sweep-kind merge
    returns the full planned grid (``stop_after_saturation=0`` — the plan
    enumerated every point, so the merge publishes every point).  Units
    missing from the store (unfinished shards) are simulated on the spot and
    counted in the returned report.
    """
    plan = CampaignPlan.load(directory)
    store = PointStore(directory)
    executor = SweepExecutor(
        jobs=jobs, replications=int(plan.spec["replications"]), cache=store
    )
    hits_before, misses_before = store.hits, store.misses
    if plan.kind == "sweep":
        base = config_from_dict(plan.spec["base_config"])
        results: object = executor.run_injection_rate_sweep(
            base,
            plan.spec["rates"],
            label=plan.spec["label"],
            stop_after_saturation=0,
        )
        summary = series_table([results], metric="latency")
    else:
        # Imported lazily for the same circularity reason as in plan.py.
        from repro.experiments import EXPERIMENTS
        from repro.experiments.common import ExperimentScale

        module = EXPERIMENTS[plan.spec["figure"]]
        kwargs = {"scale": ExperimentScale(**plan.spec["scale"]), "executor": executor}
        if plan.spec.get("seed") is not None:
            kwargs["seed"] = plan.spec["seed"]
        results = module.run(**kwargs)
        summary = module.summarize(results)
    return CampaignMerge(
        kind=plan.kind,
        results=results,
        summary=summary,
        reused=store.hits - hits_before,
        simulated=store.misses - misses_before,
    )


def campaign_status(directory) -> CampaignStatus:
    """Plan-vs-store completion summary of a campaign directory.

    Uses the keys-only views on both sides — :meth:`CampaignPlan.load_keys`
    for the manifest and :meth:`PointStore.scan_keys` for the store — since
    status answers a membership count and never needs reconstructed configs
    or metrics, so it stays cheap on campaigns far too large to load in full.
    """
    kind, unit_keys = CampaignPlan.load_keys(directory)
    scan = PointStore.scan_keys(directory)
    completed = sum(1 for key in unit_keys if key in scan.keys)
    return CampaignStatus(
        directory=str(directory),
        kind=kind,
        total_units=len(unit_keys),
        completed_units=completed,
        members=scan.members,
        skipped_records=scan.skipped_records,
    )
