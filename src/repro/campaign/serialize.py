"""Back-compat shim: campaign serialisation moved to :mod:`repro.backends`.

The JSON round-trip helpers grew from campaign-only artefacts into the
record format of every persistent result backend, so the implementation now
lives in :mod:`repro.backends.serialize`; this module re-exports it for the
established import path.
"""

from repro.backends.serialize import (
    config_from_dict,
    config_to_dict,
    metrics_from_dict,
    metrics_to_dict,
)

__all__ = [
    "config_from_dict",
    "config_to_dict",
    "metrics_from_dict",
    "metrics_to_dict",
]
