"""The campaign point store — now the ``dir://`` member of the backend family.

``PointStore`` is the historical name of what is today
:class:`repro.backends.directory.DirectoryBackend`: the append-only JSONL
directory layout the campaign subsystem introduced.  The class (and its
on-disk format) is unchanged — it simply moved down into the
:mod:`repro.backends` layer when result storage became pluggable, so this
module re-exports it under the established names for existing callers.

New code should select backends by URI through
:func:`repro.backends.open_backend` (``dir://<path>`` opens exactly this
layout) rather than constructing ``PointStore`` directly.
"""

from repro.backends.base import BackendScan as StoreKeyScan
from repro.backends.directory import DirectoryBackend, shard_member_name

__all__ = ["PointStore", "StoreKeyScan", "shard_member_name"]

#: Back-compat alias: the disk-backed campaign store *is* the dir:// backend.
PointStore = DirectoryBackend
