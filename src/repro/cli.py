"""Command-line interface.

Exposes the most common workflows without writing Python:

* ``python -m repro simulate`` — run one simulation and print its metrics;
* ``python -m repro sweep`` — run a latency-vs-load sweep and print the curve;
* ``python -m repro experiment`` — regenerate one of the paper's figures;
* ``python -m repro regions`` — render the fault-region shapes of Fig. 1.

The CLI is a thin veneer over the public library API (``repro.SimulationConfig``
/ ``repro.run_simulation`` / ``repro.experiments``); anything it can do can
also be done programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.plotting import ascii_multi_series
from repro.analysis.tables import format_table
from repro.experiments import EXPERIMENTS
from repro.experiments import fig1_regions
from repro.experiments.common import get_jobs
from repro.faults.injection import random_node_faults
from repro.faults.model import FaultSet
from repro.faults.regions import REGION_SHAPES, make_fault_region
from repro.routing.registry import available_routing_algorithms
from repro.sim.config import SimulationConfig
from repro.sim.parallel import SweepExecutor
from repro.sim.runner import run_simulation
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology

__all__ = ["main", "build_parser"]


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--radix", type=int, default=8, help="nodes per dimension (k)")
    parser.add_argument("--dimensions", type=int, default=2, help="number of dimensions (n)")
    parser.add_argument("--mesh", action="store_true", help="use a mesh instead of a torus")
    parser.add_argument(
        "--routing",
        default="swbased-deterministic",
        choices=available_routing_algorithms(),
        help="routing algorithm",
    )
    parser.add_argument("--virtual-channels", type=int, default=4, help="V per physical channel")
    parser.add_argument("--buffer-depth", type=int, default=2, help="flits per VC buffer")
    parser.add_argument("--message-length", type=int, default=32, help="M in flits")
    parser.add_argument("--faults", type=int, default=0, help="number of random faulty nodes")
    parser.add_argument(
        "--fault-region",
        choices=sorted(REGION_SHAPES),
        help="use a coalesced fault region of this shape instead of random faults",
    )
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    parser.add_argument("--warmup", type=int, default=100, help="warm-up messages")
    parser.add_argument("--messages", type=int, default=1000, help="measured messages")
    parser.add_argument(
        "--reinjection-delay", type=int, default=0, help="software re-injection overhead Δ"
    )


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the sweep (default: the REPRO_JOBS environment "
            "variable, else 1 = serial; results are identical either way)"
        ),
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=1,
        help="independent seeds per sweep point (>1 adds 95%% confidence intervals)",
    )


def _build_config(args: argparse.Namespace, injection_rate: float) -> SimulationConfig:
    topology_cls = MeshTopology if args.mesh else TorusTopology
    topology = topology_cls(radix=args.radix, dimensions=args.dimensions)
    if args.fault_region:
        faults = make_fault_region(topology, args.fault_region).to_fault_set()
    elif args.faults > 0:
        faults = random_node_faults(topology, args.faults, rng=args.seed)
    else:
        faults = FaultSet.empty()
    return SimulationConfig(
        topology=topology,
        routing=args.routing,
        num_virtual_channels=args.virtual_channels,
        buffer_depth=args.buffer_depth,
        message_length=args.message_length,
        injection_rate=injection_rate,
        faults=faults,
        warmup_messages=args.warmup,
        measure_messages=args.messages,
        reinjection_delay=args.reinjection_delay,
        seed=args.seed,
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Software-Based fault-tolerant routing in multi-dimensional networks "
            "(reproduction of Safaei et al., IPDPS 2006)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one simulation and print its metrics")
    _add_network_arguments(simulate)
    simulate.add_argument("--rate", type=float, default=0.004, help="injection rate (lambda)")

    sweep = sub.add_parser("sweep", help="latency/throughput vs injection rate")
    _add_network_arguments(sweep)
    _add_executor_arguments(sweep)
    sweep.add_argument("--max-rate", type=float, default=0.016, help="largest injection rate")
    sweep.add_argument("--points", type=int, default=6, help="number of sweep points")
    sweep.add_argument("--plot", action="store_true", help="render an ASCII latency curve")

    experiment = sub.add_parser("experiment", help="regenerate one of the paper's figures")
    experiment.add_argument("figure", choices=sorted(EXPERIMENTS), help="figure id (e.g. fig3)")
    _add_executor_arguments(experiment)

    regions = sub.add_parser("regions", help="render the Fig. 1 fault-region shapes")
    regions.add_argument("--radix", type=int, default=8, help="radix of the 2-D torus to draw")

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _build_config(args, args.rate)
    result = run_simulation(config)
    rows = [result.as_row()]
    print(
        format_table(
            rows,
            columns=[
                "routing", "injection_rate", "faulty_nodes", "mean_latency",
                "throughput_messages", "messages_absorbed_total", "saturated",
            ],
            title=config.describe(),
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    jobs = get_jobs(args.jobs)
    executor = SweepExecutor(jobs=jobs, replications=args.replications)
    config = _build_config(args, args.max_rate)
    rates = [args.max_rate * (i + 1) / args.points for i in range(args.points)]
    sweep = executor.run_injection_rate_sweep(
        config, rates, label=config.describe(), stop_after_saturation=1
    )
    rows = []
    for i, rate in enumerate(sweep.rates):
        row = {
            "rate": rate,
            "mean_latency": sweep.latency_mean[i],
            "throughput": sweep.throughput_mean[i],
            "saturated": sweep.saturated[i],
        }
        if args.replications > 1:
            row["latency_ci95"] = sweep.latency_ci[i]
            row["throughput_ci95"] = sweep.throughput_ci[i]
        rows.append(row)
    columns = ["rate", "mean_latency", "throughput", "saturated"]
    if args.replications > 1:
        columns = [
            "rate", "mean_latency", "latency_ci95",
            "throughput", "throughput_ci95", "saturated",
        ]
    # effective_jobs reflects the serial fallback on fork-less platforms, so
    # the title never claims parallelism that did not happen
    title = (
        f"{sweep.label} (jobs={executor.effective_jobs}, "
        f"replications={args.replications})"
    )
    print(format_table(rows, columns=columns, title=title))
    if args.plot:
        print()
        print(
            ascii_multi_series(
                [(sweep.label, sweep.rates, sweep.latency_mean)],
                x_label="injection rate (messages/node/cycle)",
            )
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    jobs = get_jobs(args.jobs)
    # Validate the executor flags up front (raises ConfigurationError) even
    # for figures that do not simulate (fig1 builds regions only).
    SweepExecutor(jobs=jobs, replications=args.replications)
    # Every experiment's run() accepts jobs/replications (fig1 ignores them);
    # forwarding unconditionally means a module that drops them fails loudly
    # instead of silently running serial/unreplicated.
    results = EXPERIMENTS[args.figure].run(jobs=jobs, replications=args.replications)
    print(EXPERIMENTS[args.figure].summarize(results))
    return 0


def _cmd_regions(args: argparse.Namespace) -> int:
    print(fig1_regions.summarize(fig1_regions.run(radix=args.radix)))
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "experiment": _cmd_experiment,
    "regions": _cmd_regions,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
