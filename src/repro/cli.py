"""Command-line interface.

Exposes the most common workflows without writing Python:

* ``python -m repro simulate`` — run one simulation and print its metrics;
* ``python -m repro sweep`` — run a latency-vs-load sweep and print the curve;
* ``python -m repro experiment`` — regenerate one of the paper's figures;
* ``python -m repro regions`` — render the fault-region shapes of Fig. 1;
* ``python -m repro campaign`` — plan / run / merge / status / push / pull /
  gc of backend-stored, shardable, resumable (and cross-host) experiment
  campaigns, plus ``tail`` (follow the structured event log of a live
  campaign) and ``watch`` (serve ``/metrics`` + ``/status`` over HTTP);
* ``python -m repro serve`` — the campaign service daemon: submit plans,
  claim leases and commit results over a JSON HTTP API (``campaign work
  --server URL`` workers need no shared filesystem), with a live HTML
  dashboard at ``/`` and Prometheus gauges at ``/metrics``.

The CLI is a thin veneer over the public library API (``repro.SimulationConfig``
/ ``repro.run_simulation`` / ``repro.experiments`` / ``repro.campaign``);
anything it can do can also be done programmatically.

Diagnostics go through :mod:`logging` to stderr (``--log-level`` /
``--quiet``); result tables and machine-readable payloads stay on stdout.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional, Sequence

from repro import __version__
from repro.analysis.plotting import ascii_multi_series
from repro.analysis.tables import campaign_status_table, format_table
from repro.campaign import (
    CampaignPlan,
    SIMULATING_FIGURES,
    campaign_status,
    gc_campaign,
    merge_campaign,
    pull_campaign,
    push_campaign,
    run_campaign,
    work_campaign,
)
from repro.errors import ConfigurationError
from repro.execution import ExecutionContext
from repro.experiments import EXPERIMENTS
from repro.experiments import fig1_regions
from repro.experiments.common import get_jobs
from repro.faults.injection import random_node_faults
from repro.faults.model import FaultSet
from repro.faults.regions import REGION_SHAPES, make_fault_region
from repro.routing.registry import available_routing_algorithms
from repro.sim.config import SimulationConfig
from repro.sim.parallel import ShardSpec
from repro.sim.runner import run_simulation
from repro.telemetry.profile import StageProfiler, profile_call
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology

__all__ = ["main", "build_parser"]

logger = logging.getLogger(__name__)

_LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def _configure_logging(args: argparse.Namespace) -> None:
    """Route library diagnostics to stderr at the requested level.

    ``basicConfig`` is a no-op when the embedding application (or a test
    harness) already configured handlers — the CLI never fights its host.
    """
    level = "error" if args.quiet else args.log_level
    logging.basicConfig(
        stream=sys.stderr,
        level=getattr(logging, level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )


def _add_network_arguments(
    parser: argparse.ArgumentParser, include_seed: bool = True
) -> List[str]:
    """Register the network/workload flags; returns their dests (seed excluded,
    it is shared campaign-wide rather than network-specific)."""
    actions = [
        parser.add_argument("--radix", type=int, default=8, help="nodes per dimension (k)"),
        parser.add_argument("--dimensions", type=int, default=2, help="number of dimensions (n)"),
        parser.add_argument("--mesh", action="store_true", help="use a mesh instead of a torus"),
        parser.add_argument(
            "--routing",
            default="swbased-deterministic",
            choices=available_routing_algorithms(),
            help="routing algorithm",
        ),
        parser.add_argument("--virtual-channels", type=int, default=4, help="V per physical channel"),
        parser.add_argument("--buffer-depth", type=int, default=2, help="flits per VC buffer"),
        parser.add_argument("--message-length", type=int, default=32, help="M in flits"),
        parser.add_argument("--faults", type=int, default=0, help="number of random faulty nodes"),
        parser.add_argument(
            "--fault-region",
            choices=sorted(REGION_SHAPES),
            help="use a coalesced fault region of this shape instead of random faults",
        ),
    ]
    if include_seed:
        parser.add_argument("--seed", type=int, default=1, help="random seed")
    actions += [
        parser.add_argument("--warmup", type=int, default=100, help="warm-up messages"),
        parser.add_argument("--messages", type=int, default=1000, help="measured messages"),
        parser.add_argument(
            "--reinjection-delay", type=int, default=0, help="software re-injection overhead Δ"
        ),
        parser.add_argument(
            "--trace-rerouting",
            action="store_true",
            help=(
                "attach a per-message rerouting trace ring buffer (fault-tolerant "
                "algorithms only); livelock diagnostics then include the offending "
                "message's rewrite-by-rewrite trace"
            ),
        ),
        parser.add_argument(
            "--engine",
            default="auto",
            choices=("auto", "dict", "array"),
            help=(
                "engine implementation: the dict reference engine or the "
                "array kernel (bit-identical metrics, faster on large "
                "networks); auto defers to $REPRO_ENGINE, then dict"
            ),
        ),
    ]
    return [action.dest for action in actions]


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the sweep (default: the REPRO_JOBS environment "
            "variable, else 1 = serial; results are identical either way)"
        ),
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=1,
        help="independent seeds per sweep point (>1 adds 95%% confidence intervals)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "directory of a disk-backed point store shared across invocations "
            "(default: the REPRO_CACHE_DIR environment variable, else no disk "
            "cache); already-simulated points are reused instead of re-run; "
            "shorthand for --backend dir://DIR"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        help=(
            "result backend URI shared across invocations — mem://, dir://PATH, "
            "sqlite://PATH, obj://PATH or s3://BUCKET/PREFIX (default: "
            "--cache-dir if given, then the REPRO_BACKEND environment "
            "variable, then REPRO_CACHE_DIR); already-simulated points are "
            "reused instead of re-run"
        ),
    )


def _build_config(args: argparse.Namespace, injection_rate: float) -> SimulationConfig:
    topology_cls = MeshTopology if args.mesh else TorusTopology
    topology = topology_cls(radix=args.radix, dimensions=args.dimensions)
    if args.fault_region:
        faults = make_fault_region(topology, args.fault_region).to_fault_set()
    elif args.faults > 0:
        faults = random_node_faults(topology, args.faults, rng=args.seed)
    else:
        faults = FaultSet.empty()
    return SimulationConfig(
        topology=topology,
        routing=args.routing,
        num_virtual_channels=args.virtual_channels,
        buffer_depth=args.buffer_depth,
        message_length=args.message_length,
        injection_rate=injection_rate,
        faults=faults,
        warmup_messages=args.warmup,
        measure_messages=args.messages,
        reinjection_delay=args.reinjection_delay,
        seed=args.seed,
        trace_rerouting=args.trace_rerouting,
        engine=args.engine,
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Software-Based fault-tolerant routing in multi-dimensional networks "
            "(reproduction of Safaei et al., IPDPS 2006)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default="warning",
        help=(
            "stderr diagnostic verbosity (default warning: retry/give-up and "
            "lease-reclaim warnings only; info adds campaign progress, debug "
            "adds saturation declarations and per-request telemetry)"
        ),
    )
    parser.add_argument(
        "-q", "--quiet",
        action="store_true",
        help="only log errors to stderr (shorthand for --log-level error)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one simulation and print its metrics")
    _add_network_arguments(simulate)
    simulate.add_argument("--rate", type=float, default=0.004, help="injection rate (lambda)")
    simulate.add_argument(
        "--profile",
        action="store_true",
        help=(
            "wrap the run in cProfile and print the hottest functions after "
            "the result table (implies --profile-stages)"
        ),
    )
    simulate.add_argument(
        "--profile-stages",
        action="store_true",
        help=(
            "time the engine's pipeline stages (generate/inject/route/"
            "transfer/drain) and print a per-stage breakdown after the "
            "result table"
        ),
    )

    sweep = sub.add_parser("sweep", help="latency/throughput vs injection rate")
    _add_network_arguments(sweep)
    _add_executor_arguments(sweep)
    sweep.add_argument("--max-rate", type=float, default=0.016, help="largest injection rate")
    sweep.add_argument("--points", type=int, default=6, help="number of sweep points")
    sweep.add_argument("--plot", action="store_true", help="render an ASCII latency curve")

    experiment = sub.add_parser("experiment", help="regenerate one of the paper's figures")
    experiment.add_argument("figure", choices=sorted(EXPERIMENTS), help="figure id (e.g. fig3)")
    _add_executor_arguments(experiment)

    regions = sub.add_parser("regions", help="render the Fig. 1 fault-region shapes")
    regions.add_argument("--radix", type=int, default=8, help="radix of the 2-D torus to draw")

    serve = sub.add_parser(
        "serve",
        help="campaign service daemon: JSON API + live dashboard over HTTP",
        description=(
            "Host campaigns behind one stdlib HTTP daemon: POST /campaigns "
            "submits a plan (idempotent — the id is the content-address of "
            "the plan), GET /campaigns/<id>/status reports completion, "
            "workers claim leases and commit results over the API ('campaign "
            "work --server URL' needs no shared filesystem), "
            "GET /campaigns/<id>/series returns the merged replicated series "
            "(cached by content-address, invalidated by the store's "
            "completed-unit count), GET / renders a live HTML dashboard and "
            "GET /metrics exposes per-campaign Prometheus gauges.  Runs in "
            "the foreground until interrupted."
        ),
    )
    serve.add_argument(
        "--backend", required=True,
        help=(
            "result backend URI every hosted campaign stores into — "
            "dir://PATH, sqlite://PATH, obj://PATH or s3://BUCKET/PREFIX "
            "(anonymous mem:// is rejected: workers in other processes could "
            "never see it)"
        ),
    )
    serve.add_argument(
        "--dir", default="./.repro-serve",
        help=(
            "state directory for hosted campaign manifests (default "
            "./.repro-serve); campaigns submitted before a restart are "
            "re-hosted from it"
        ),
    )
    serve.add_argument(
        "--port", type=int, default=8080,
        help="TCP port to bind (default 8080; 0 = an ephemeral port, printed at start)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; use 0.0.0.0 to expose)",
    )

    campaign = sub.add_parser(
        "campaign",
        help="disk-backed, shardable, resumable experiment campaigns",
        description=(
            "Lifecycle: 'plan' writes a campaign.json manifest enumerating every "
            "(point, replication) work unit; 'run' executes (a shard of) the "
            "pending units against the campaign's result backend, resuming past "
            "work automatically; 'merge' reassembles the published series from "
            "the store; 'status' reports completion; 'push'/'pull' copy records "
            "to/from another backend (content-address-deduped), so shards run "
            "on different hosts reconcile through a shared obj:// or s3:// "
            "store."
        ),
    )
    csub = campaign.add_subparsers(dest="campaign_command", required=True)

    backend_help = (
        "result backend URI: mem://, dir://PATH, sqlite://PATH, obj://PATH "
        "or s3://BUCKET/PREFIX (default: the URI recorded in the manifest "
        "at plan time, then REPRO_BACKEND, then the campaign directory's "
        "own dir:// store)"
    )

    plan = csub.add_parser("plan", help="enumerate a campaign's work units")
    plan.add_argument(
        "target",
        choices=sorted(SIMULATING_FIGURES) + ["sweep"],
        help="a simulating figure (fig3..fig7) or 'sweep' for an explicit sweep",
    )
    plan.add_argument("--dir", required=True, help="campaign directory to create")
    plan.add_argument(
        "--replications", type=int, default=1, help="independent seeds per point"
    )
    plan.add_argument(
        "--backend", default=None,
        help=(
            "record this backend URI in the manifest so every run/merge/status "
            "invocation uses it without repeating the flag (default: the "
            "campaign directory's own dir:// store)"
        ),
    )
    plan.add_argument(
        "--seed", type=int, default=None,
        help=(
            "base seed (default: the figure's published seed for figure "
            "targets, 1 for the sweep target)"
        ),
    )
    # The network/sweep arguments apply to the 'sweep' target only (the seed
    # is the unified --seed above): a figure target silently ignoring them
    # would let a user plan a multi-host campaign for a configuration they
    # never asked for, so the command checks each against the parser's own
    # default.  Both the dest list and the defaults come from the parser —
    # never a duplicated table that could drift.
    sweep_only = _add_network_arguments(plan, include_seed=False)
    plan.add_argument("--max-rate", type=float, default=0.016, help="largest injection rate")
    plan.add_argument("--points", type=int, default=6, help="number of sweep points")
    plan.set_defaults(
        _plan_parser=plan, _sweep_only_dests=(*sweep_only, "max_rate", "points")
    )

    crun = csub.add_parser("run", help="execute (a shard of) the planned units")
    crun.add_argument("--dir", required=True, help="campaign directory")
    crun.add_argument(
        "--shard", default=None,
        help="run only this shard of the work units, as INDEX/COUNT (e.g. 2/4)",
    )
    crun.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS, else 1)",
    )
    crun.add_argument(
        "--max-units", type=int, default=None,
        help="simulate at most this many new units, then stop (resume later)",
    )
    crun.add_argument("--backend", default=None, help=backend_help)
    crun.add_argument(
        "--steal", action="store_true",
        help=(
            "work-steal instead of owning a shard: claim pending units under "
            "TTL leases alongside any number of concurrent workers (same as "
            "'campaign work'); incompatible with --shard"
        ),
    )
    crun.add_argument(
        "--ttl", type=float, default=60.0,
        help=(
            "lease TTL in seconds for --steal (default 60): pick one "
            "comfortably above the longest single simulation, since a dead "
            "worker's units only free up after its leases expire"
        ),
    )
    crun.add_argument(
        "--worker", default=None,
        help="worker id for --steal (default: <hostname>-<pid>)",
    )
    crun.add_argument(
        "--events", action="store_true", default=None,
        help=(
            "write a structured JSONL event log (run/lease/unit/blob events) "
            "to the campaign backend's .events/ area; follow it live with "
            "'campaign tail' (default: the REPRO_EVENTS environment variable)"
        ),
    )

    work = csub.add_parser(
        "work",
        help="run one work-stealing worker until the campaign completes",
        description=(
            "One lease-based worker: repeatedly claim the most expensive "
            "pending (point, replication) units under TTL leases, simulate, "
            "commit to the campaign backend, release.  Start any number of "
            "these (across hosts, against a shared backend) — a killed or "
            "hung worker's units are reclaimed after its leases expire and "
            "re-executed safely, since commits are idempotent and "
            "content-addressed."
        ),
    )
    work.add_argument(
        "--dir", default=None,
        help="campaign directory (or use --server to work a hosted campaign)",
    )
    work.add_argument(
        "--server", default=None,
        help=(
            "work a campaign hosted by 'repro serve' instead of a local "
            "directory: the campaign URL the daemon printed at submit time, "
            "e.g. http://HOST:PORT/campaigns/ID; leases and results travel "
            "over the API, so no shared filesystem is needed"
        ),
    )
    work.add_argument(
        "--worker", default=None, help="worker id (default: <hostname>-<pid>)"
    )
    work.add_argument(
        "--ttl", type=float, default=60.0,
        help="lease TTL in seconds (default 60); see 'campaign run --ttl'",
    )
    work.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS, else 1)",
    )
    work.add_argument(
        "--max-units", type=int, default=None,
        help="simulate at most this many new units, then stop",
    )
    work.add_argument(
        "--poll-interval", type=float, default=None,
        help=(
            "seconds to wait when every pending unit is leased by a peer "
            "(default: ttl/4, capped to [0.1, 2])"
        ),
    )
    work.add_argument(
        "--events", action="store_true", default=None,
        help=(
            "write a structured JSONL event log to the campaign backend's "
            ".events/ area (default: the REPRO_EVENTS environment variable)"
        ),
    )
    work.add_argument("--backend", default=None, help=backend_help)

    merge = csub.add_parser("merge", help="reassemble the series from the store")
    merge.add_argument("--dir", required=True, help="campaign directory")
    merge.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for any units still missing from the store",
    )
    merge.add_argument("--backend", default=None, help=backend_help)

    status = csub.add_parser("status", help="report plan-vs-store completion")
    status.add_argument("--dir", required=True, help="campaign directory")
    status.add_argument("--backend", default=None, help=backend_help)
    status.add_argument(
        "--json", action="store_true",
        help="print machine-readable JSON instead of the table (CI dashboards)",
    )

    push = csub.add_parser(
        "push", help="copy this campaign's records to another backend"
    )
    push.add_argument("--dir", required=True, help="campaign directory")
    push.add_argument(
        "--to", required=True,
        help=(
            "destination backend URI, e.g. obj:///mnt/shared/fig3 or "
            "s3://bucket/campaigns/fig3; records the destination already "
            "holds are skipped (content-address dedup), so a push is "
            "idempotent"
        ),
    )
    push.add_argument("--backend", default=None, help=backend_help)

    pull = csub.add_parser(
        "pull", help="copy records from another backend into this campaign's"
    )
    pull.add_argument("--dir", required=True, help="campaign directory")
    pull.add_argument(
        "--from", dest="from_uri", required=True,
        help=(
            "source backend URI another host pushed to (any registered "
            "scheme); after the pull, status counts its units complete and "
            "merge assembles the union without simulating them"
        ),
    )
    pull.add_argument("--backend", default=None, help=backend_help)

    gc = csub.add_parser(
        "gc", help="remove stored records the plan does not reference"
    )
    gc.add_argument("--dir", required=True, help="campaign directory")
    gc.add_argument(
        "--dry-run", action="store_true",
        help="report how many records are abandoned without deleting anything",
    )
    gc.add_argument(
        "--backend", default=None,
        help=backend_help + (
            "; gc removes every record whose key the plan does not list, so "
            "only gc a store this campaign owns exclusively"
        ),
    )

    tail = csub.add_parser(
        "tail",
        help="print the campaign's structured event log",
        description=(
            "Print the JSONL events that workers started with --events (or "
            "REPRO_EVENTS=1) committed to the backend's .events/ area, merged "
            "across workers and ordered by timestamp.  With --follow, keep "
            "polling for new events until interrupted — a cross-host 'tail "
            "-f' for a live campaign."
        ),
    )
    tail.add_argument("--dir", required=True, help="campaign directory")
    tail.add_argument("--backend", default=None, help=backend_help)
    tail.add_argument(
        "-f", "--follow", action="store_true",
        help="keep polling for new events until interrupted",
    )
    tail.add_argument(
        "--poll", type=float, default=0.5,
        help="seconds between polls with --follow (default 0.5)",
    )
    tail.add_argument(
        "--json", action="store_true",
        help="print raw JSON events instead of the one-line rendering",
    )

    watch = csub.add_parser(
        "watch",
        help="serve /metrics (Prometheus) and /status (JSON) over HTTP",
        description=(
            "A stdlib-only HTTP endpoint for dashboards and scrapers: "
            "/metrics renders the campaign's completion/lease gauges (plus "
            "any in-process telemetry counters) in Prometheus text format, "
            "and /status returns the same JSON payload as 'campaign status "
            "--json'.  Runs in the foreground until interrupted."
        ),
    )
    watch.add_argument("--dir", required=True, help="campaign directory")
    watch.add_argument("--backend", default=None, help=backend_help)
    watch.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (default 0 = an ephemeral port, printed at start)",
    )
    watch.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; use 0.0.0.0 to expose)",
    )

    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = _build_config(args, args.rate)
    profiler = StageProfiler() if (args.profile or args.profile_stages) else None
    if args.profile:
        result, profile_report = profile_call(
            lambda: run_simulation(config, stage_profiler=profiler)
        )
    else:
        result = run_simulation(config, stage_profiler=profiler)
        profile_report = None
    rows = [result.as_row()]
    print(
        format_table(
            rows,
            columns=[
                "routing", "injection_rate", "faulty_nodes", "mean_latency",
                "throughput_messages", "messages_absorbed_total", "saturated",
            ],
            title=config.describe(),
        )
    )
    # The profile breakdown is requested output, not a diagnostic: stdout.
    if profiler is not None:
        print()
        print(profiler.describe())
    if profile_report is not None:
        print()
        print(profile_report.rstrip())
    return 0


def _sweep_rates(max_rate: float, points: int) -> List[float]:
    """The CLI's evenly spaced rate grid.

    Shared by ``sweep`` and ``campaign plan sweep`` on purpose: the
    planned-campaign ≡ direct-sweep bit-identity requires the two paths to
    compute bit-identical floats.
    """
    return [max_rate * (i + 1) / points for i in range(points)]


def _cmd_sweep(args: argparse.Namespace) -> int:
    context = ExecutionContext.resolve(
        jobs=args.jobs,
        replications=args.replications,
        cache_dir=args.cache_dir,
        backend=args.backend,
    )
    executor = context.make_executor()
    config = _build_config(args, args.max_rate)
    rates = _sweep_rates(args.max_rate, args.points)
    sweep = executor.run_injection_rate_sweep(
        config, rates, label=config.describe(), stop_after_saturation=1
    )
    rows = []
    for i, rate in enumerate(sweep.rates):
        row = {
            "rate": rate,
            "mean_latency": sweep.latency_mean[i],
            "throughput": sweep.throughput_mean[i],
            "saturated": sweep.saturated[i],
        }
        if args.replications > 1:
            row["latency_ci95"] = sweep.latency_ci[i]
            row["throughput_ci95"] = sweep.throughput_ci[i]
        rows.append(row)
    columns = ["rate", "mean_latency", "throughput", "saturated"]
    if args.replications > 1:
        columns = [
            "rate", "mean_latency", "latency_ci95",
            "throughput", "throughput_ci95", "saturated",
        ]
    # effective_jobs reflects the serial fallback on fork-less platforms, so
    # the title never claims parallelism that did not happen
    title = (
        f"{sweep.label} (jobs={executor.effective_jobs}, "
        f"replications={args.replications})"
    )
    print(format_table(rows, columns=columns, title=title))
    if args.plot:
        print()
        print(
            ascii_multi_series(
                [(sweep.label, sweep.rates, sweep.latency_mean)],
                x_label="injection rate (messages/node/cycle)",
            )
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    # Resolving the context up front validates the flags (raises
    # ConfigurationError) even for figures that do not simulate (fig1 builds
    # regions only).  Every experiment's run() accepts context= (fig1
    # ignores it); forwarding unconditionally means a module that drops the
    # parameter fails loudly instead of silently building its own executor.
    context = ExecutionContext.resolve(
        jobs=args.jobs,
        replications=args.replications,
        cache_dir=args.cache_dir,
        backend=args.backend,
    )
    results = EXPERIMENTS[args.figure].run(context=context)
    print(EXPERIMENTS[args.figure].summarize(results))
    return 0


def _cmd_regions(args: argparse.Namespace) -> int:
    print(fig1_regions.summarize(fig1_regions.run(radix=args.radix)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serve daemon pulls the whole campaign stack in,
    # which every other subcommand should not pay for.
    from repro.serve.daemon import CampaignServer

    try:
        server = CampaignServer(
            args.dir, args.backend, host=args.host, port=args.port
        )
    except ConfigurationError as exc:
        # Same contract as the campaign commands: misuse (port in use, an
        # anonymous mem:// backend, …) gets the actionable message on
        # stderr, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The bound URL is the command's output contract (scripts scrape it to
    # find the ephemeral port), so it goes to stdout.
    print(
        f"serving campaign API on http://{args.host}:{server.port}/ "
        "(dashboard at /, API under /campaigns, gauges at /metrics)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    try:
        return _CAMPAIGN_COMMANDS[args.campaign_command](args)
    except ConfigurationError as exc:
        # Misuse (bad shard specs, missing manifests, …), not a crash: the
        # actionable message without a traceback.  This is the command's
        # own error output (always visible, like argparse's usage errors),
        # not a library diagnostic, so it writes stderr directly instead of
        # going through logging where -q or a host handler could eat it.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_campaign_plan(args: argparse.Namespace) -> int:
    if args.target == "sweep":
        if args.seed is None:
            args.seed = 1  # the network default used by simulate/sweep
        config = _build_config(args, args.max_rate)
        plan = CampaignPlan.from_injection_sweep(
            config, _sweep_rates(args.max_rate, args.points),
            replications=args.replications, backend=args.backend,
        )
    else:
        overridden = [
            "--" + name.replace("_", "-")
            for name in args._sweep_only_dests
            if getattr(args, name) != args._plan_parser.get_default(name)
        ]
        if overridden:
            raise ConfigurationError(
                f"{', '.join(overridden)} only apply to the 'sweep' target; "
                f"a {args.target} campaign always uses the figure's published "
                "configuration (scaled by REPRO_SCALE at plan time) — drop the "
                "flags, or plan a 'sweep' campaign to customise the network"
            )
        plan = CampaignPlan.from_experiment(
            args.target, replications=args.replications, seed=args.seed,
            backend=args.backend,
        )
    path = plan.save(args.dir)
    suffix = f" [{plan.backend}]" if plan.backend else ""
    print(f"planned {len(plan.units)} work units ({plan.kind}) -> {path}{suffix}")
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    shard = ShardSpec.parse(args.shard) if args.shard else None
    report = run_campaign(
        args.dir, shard=shard, jobs=get_jobs(args.jobs), max_units=args.max_units,
        backend=args.backend, steal=args.steal, ttl=args.ttl, worker=args.worker,
        events=args.events,
    )
    print(report.describe())
    return 0


def _cmd_campaign_work(args: argparse.Namespace) -> int:
    report = work_campaign(
        args.dir, worker=args.worker, ttl=args.ttl, jobs=get_jobs(args.jobs),
        max_units=args.max_units, poll_interval=args.poll_interval,
        backend=args.backend, events=args.events, server=args.server,
    )
    print(report.describe())
    return 0


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    merge = merge_campaign(args.dir, jobs=get_jobs(args.jobs), backend=args.backend)
    print(merge.summary)
    print(merge.describe())
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    status = campaign_status(args.dir, backend=args.backend)
    if args.json:
        print(json.dumps(status.as_dict(), indent=2))
    else:
        print(campaign_status_table(status))
    return 0 if status.complete else 1


def _cmd_campaign_push(args: argparse.Namespace) -> int:
    print(push_campaign(args.dir, to=args.to, backend=args.backend).describe())
    return 0


def _cmd_campaign_pull(args: argparse.Namespace) -> int:
    print(pull_campaign(args.dir, from_uri=args.from_uri, backend=args.backend).describe())
    return 0


def _cmd_campaign_gc(args: argparse.Namespace) -> int:
    print(gc_campaign(args.dir, backend=args.backend, dry_run=args.dry_run).describe())
    return 0


def _campaign_backend_uri(args: argparse.Namespace) -> str:
    """The backend URI tail/watch should read, resolved exactly like every
    other lifecycle command (explicit flag > manifest > env > dir://)."""
    from repro.campaign import resolve_campaign_backend

    _kind, _keys, recorded = CampaignPlan.load_keys(args.dir)
    return resolve_campaign_backend(args.dir, args.backend, recorded)


def _format_event(event: dict) -> str:
    import time as _time

    ts = float(event.get("ts", 0.0))
    clock = _time.strftime("%H:%M:%S", _time.localtime(ts))
    millis = int(round((ts % 1.0) * 1000))
    head = (
        f"{clock}.{millis:03d} {event.get('run', '?')} "
        f"{event.get('kind', '?')}/{event.get('event', '?')}"
    )
    skip = {"ts", "run", "seq", "kind", "event"}
    fields = " ".join(
        f"{key}={event[key]}" for key in sorted(event) if key not in skip
    )
    return f"{head} {fields}".rstrip()


def _cmd_campaign_tail(args: argparse.Namespace) -> int:
    from repro.telemetry.events import tail_events

    uri = _campaign_backend_uri(args)
    try:
        for event in tail_events(uri, follow=args.follow, poll=args.poll):
            if args.json:
                print(json.dumps(event, sort_keys=True))
            else:
                print(_format_event(event))
            sys.stdout.flush()
    except KeyboardInterrupt:
        pass
    except BrokenPipeError:
        # `tail ... | head` closing stdout early is normal usage, not an
        # error; detach stdout so interpreter shutdown doesn't re-raise.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    from repro.telemetry.httpd import CampaignWatchServer

    server = CampaignWatchServer(
        args.dir, backend=args.backend, host=args.host, port=args.port
    )
    # The bound URL is the command's output contract (scripts scrape it to
    # find the ephemeral port), so it goes to stdout.
    print(f"serving http://{args.host}:{server.port}/metrics", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


_CAMPAIGN_COMMANDS = {
    "plan": _cmd_campaign_plan,
    "run": _cmd_campaign_run,
    "work": _cmd_campaign_work,
    "merge": _cmd_campaign_merge,
    "status": _cmd_campaign_status,
    "push": _cmd_campaign_push,
    "pull": _cmd_campaign_pull,
    "gc": _cmd_campaign_gc,
    "tail": _cmd_campaign_tail,
    "watch": _cmd_campaign_watch,
}

_COMMANDS = {
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "experiment": _cmd_experiment,
    "regions": _cmd_regions,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    _configure_logging(args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
