"""The paper's contribution: Software-Based fault-tolerant routing in n-D tori.

This package implements:

* the **re-routing tables** consulted by the software messaging layer when a
  message is absorbed (:mod:`repro.core.rerouting_tables`);
* the **planar (2-D) Software-Based re-routing policy** of Suh et al. — the
  scheme the paper extends (:mod:`repro.core.swbased2d`);
* the **n-dimensional Software-Based routing algorithm** ``SW-Based-nD`` of
  Fig. 2 of the paper, in both its deterministic (e-cube based) and adaptive
  (Duato's-Protocol based) flavours (:mod:`repro.core.swbased_nd`);
* machine-checked **deadlock-freedom** evidence via channel-dependency-graph
  acyclicity (:mod:`repro.core.deadlock`);
* **livelock** accounting and bounds (:mod:`repro.core.livelock`).
"""

from repro.core.deadlock import (
    build_channel_dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
)
from repro.core.livelock import LivelockGuard, absorption_bound
from repro.core.rerouting_tables import (
    DetourKind,
    ReroutingAction,
    ReroutingDecision,
    ReroutingTables,
)
from repro.core.swbased2d import PlanarRerouter, partner_dimension
from repro.core.swbased_nd import SoftwareBasedRouting, SWBased2DRouting

__all__ = [
    "ReroutingTables",
    "ReroutingAction",
    "ReroutingDecision",
    "DetourKind",
    "PlanarRerouter",
    "partner_dimension",
    "SWBased2DRouting",
    "SoftwareBasedRouting",
    "build_channel_dependency_graph",
    "is_deadlock_free",
    "find_dependency_cycle",
    "LivelockGuard",
    "absorption_bound",
]
