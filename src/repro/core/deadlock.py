"""Channel-dependency-graph construction and deadlock-freedom checking.

The paper's deadlock-freedom argument (Section 4) rests on the acyclicity of
the channel dependency graph (CDG) of the underlying deterministic routing
restriction: e-cube order plus the Dally–Seitz dateline virtual-channel
classes on the torus, with absorbed messages removed from the network before
their headers are modified.  For the adaptive flavour, Duato's theory only
requires the *escape* sub-network's extended CDG to be acyclic.

This module builds that dependency graph for a concrete topology, fault set
and routing algorithm by enumerating source/destination pairs and walking the
deterministic (escape) path each message would follow, including — optionally
— the non-minimal paths taken by messages whose direction was reversed by the
software layer.  The graph nodes are virtual channels ``(router, output port,
virtual channel)`` and an edge ``a → b`` means "a message holding ``a`` may
next request ``b``".

The construction is exact but quadratic in the number of nodes, so it is meant
for the small networks used in tests (e.g. 4-ary and 5-ary 2-/3-cubes); the
simulation engine never calls it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import networkx as nx

from repro.errors import RoutingError
from repro.routing.base import DETERMINISTIC_MODE, RoutingAlgorithm, RoutingHeader
from repro.topology.channels import MINUS, PLUS

__all__ = [
    "build_channel_dependency_graph",
    "is_deadlock_free",
    "find_dependency_cycle",
]

#: A CDG vertex: (router id, output port index, virtual channel index).
ChannelVC = Tuple[int, int, int]


def _escape_header(routing: RoutingAlgorithm, source: int, destination: int) -> RoutingHeader:
    """A header forced onto the deterministic / escape path."""
    header = routing.initial_header(source, destination)
    header.routing_mode = DETERMINISTIC_MODE
    return header


def _walk_path(
    routing: RoutingAlgorithm,
    source: int,
    header: RoutingHeader,
    max_hops: int,
) -> List[List[ChannelVC]]:
    """The sequence of virtual-channel sets a deterministic message acquires.

    Each element of the returned list is the set of CDG vertices the header
    may occupy for one hop (all virtual channels of the allowed class on the
    selected physical channel).  The walk stops at delivery, at absorption
    (the message leaves the network, so no further dependencies arise) or when
    ``max_hops`` is exceeded (which indicates a routing bug and raises).
    """
    topology = routing.topology
    node = source
    hops: List[List[ChannelVC]] = []
    for _ in range(max_hops):
        decision = routing.route(node, header)
        if decision.deliver or decision.absorb:
            return hops
        if not decision.candidates:
            raise RoutingError(
                f"routing produced no candidates and no terminal decision at node {node}"
            )
        # Deterministic/escape routing yields exactly one candidate.
        candidate = decision.candidates[0]
        hops.append([(node, candidate.port, vc) for vc in candidate.virtual_channels])
        next_node = topology.neighbor_via_port(node, candidate.port)
        if next_node is None:  # pragma: no cover - defensive
            raise RoutingError(f"candidate port {candidate.port} leaves the network at {node}")
        node = next_node
    raise RoutingError(
        f"deterministic walk from {source} towards {header.target} exceeded {max_hops} hops"
    )


def build_channel_dependency_graph(
    routing: RoutingAlgorithm,
    include_reversed_overrides: bool = True,
    sources: Optional[Iterable[int]] = None,
    destinations: Optional[Iterable[int]] = None,
) -> nx.DiGraph:
    """Build the (escape) channel dependency graph of ``routing``.

    Parameters
    ----------
    routing:
        The routing algorithm under analysis.  For adaptive algorithms the
        escape network is analysed (which is what Duato's theorem requires).
    include_reversed_overrides:
        Also walk, for every dimension, the non-minimal path of a message
        whose direction in that dimension was reversed by the Software-Based
        re-routing policy.  This covers the paper's claim that re-routed
        messages keep the dependency graph acyclic.
    sources, destinations:
        Restrict the enumeration (defaults to all healthy nodes).  Useful to
        keep test runtimes low on larger networks.
    """
    topology = routing.topology
    faults = routing.faults
    healthy = [n for n in topology.nodes() if not faults.is_node_faulty(n)]
    src_list = list(sources) if sources is not None else healthy
    dst_list = list(destinations) if destinations is not None else healthy
    max_hops = sum(topology.radices) * max(2, topology.dimensions)

    graph = nx.DiGraph()
    for src in src_list:
        if faults.is_node_faulty(src):
            continue
        for dst in dst_list:
            if dst == src or faults.is_node_faulty(dst):
                continue
            headers = [_escape_header(routing, src, dst)]
            if include_reversed_overrides:
                offsets = topology.offsets(src, dst)
                for dim, off in enumerate(offsets):
                    if off == 0:
                        continue
                    reversed_header = _escape_header(routing, src, dst)
                    minimal_dir = PLUS if off > 0 else MINUS
                    reversed_header.direction_overrides[dim] = -minimal_dir
                    reversed_header.reversed_dimensions.add(dim)
                    headers.append(reversed_header)
            for header in headers:
                try:
                    hops = _walk_path(routing, src, header, max_hops)
                except RoutingError:
                    # A walk interrupted by absorption contributes the prefix
                    # of dependencies it produced; walks that cannot even be
                    # performed (e.g. the destination became unreachable for a
                    # reversed header) contribute nothing.
                    continue
                for vcs in hops:
                    graph.add_nodes_from(vcs)
                for prev, curr in zip(hops, hops[1:]):
                    for a in prev:
                        for b in curr:
                            graph.add_edge(a, b)
    return graph


def is_deadlock_free(
    routing: RoutingAlgorithm,
    include_reversed_overrides: bool = True,
    sources: Optional[Iterable[int]] = None,
    destinations: Optional[Iterable[int]] = None,
) -> bool:
    """True when the (escape) channel dependency graph of ``routing`` is acyclic."""
    graph = build_channel_dependency_graph(
        routing, include_reversed_overrides, sources, destinations
    )
    return nx.is_directed_acyclic_graph(graph)


def find_dependency_cycle(graph: nx.DiGraph) -> Optional[List[Tuple[ChannelVC, ChannelVC]]]:
    """A cycle of the dependency graph, or ``None`` if the graph is acyclic.

    Returned as a list of edges, which makes failing tests print the offending
    dependency chain directly.
    """
    try:
        return list(nx.find_cycle(graph, orientation="original"))
    except nx.NetworkXNoCycle:
        return None
