"""Livelock accounting for Software-Based re-routing.

Unlike deadlocked messages, livelocked messages keep moving but never reach
their destination.  The Software-Based scheme can misroute messages (reversal
sends them the long way around a dimension; detours add orthogonal hops), so
the paper argues (Section 4) that the number of re-routing steps per fault
region is bounded by the region's extent, which bounds the total number of
absorptions of any message as long as fault regions are finite and the healthy
network stays connected.

The simulation engine enforces that argument operationally through a
:class:`LivelockGuard`: every absorption of a message is checked against a
bound derived from the topology and fault set; exceeding the bound raises
:class:`~repro.errors.LivelockError`, which in practice flags either a routing
bug or a fault pattern outside the algorithm's guarantees (e.g. a disconnected
network).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LivelockError
from repro.faults.model import FaultSet
from repro.topology.base import Topology

__all__ = ["absorption_bound", "LivelockGuard"]


def absorption_bound(topology: Topology, faults: FaultSet, slack: int = 8) -> int:
    """A conservative upper bound on per-message absorptions.

    The bound follows the paper's livelock argument: a message can be absorbed

    * at most twice per dimension for same-dimension reversals (once per
      direction), and
    * at most once per faulty node while stepping orthogonally around the
      fault regions (a detour makes one hop of progress along the region
      boundary per absorption, and a region of ``f`` faulty nodes has a
      boundary of at most ``2n·f`` channels).

    ``slack`` extra absorptions account for absorptions at intermediate target
    nodes (which the engine also counts as software deliveries).  The bound is
    intentionally loose — it is a safety net, not a performance parameter.
    """
    n = topology.dimensions
    region_term = 2 * n * max(1, faults.num_faulty_nodes + faults.num_faulty_links)
    return 2 * n + region_term + slack


class LivelockGuard:
    """Tracks per-message absorption counts against the livelock bound.

    Parameters
    ----------
    max_absorptions:
        Hard bound; ``None`` derives it from :func:`absorption_bound`.
    topology, faults:
        Used only when ``max_absorptions`` is ``None``.
    """

    def __init__(
        self,
        max_absorptions: Optional[int] = None,
        topology: Optional[Topology] = None,
        faults: Optional[FaultSet] = None,
    ) -> None:
        if max_absorptions is None:
            if topology is None:
                raise ValueError("either max_absorptions or a topology must be provided")
            max_absorptions = absorption_bound(
                topology, faults if faults is not None else FaultSet.empty()
            )
        if max_absorptions <= 0:
            raise ValueError("max_absorptions must be positive")
        self._max_absorptions = int(max_absorptions)
        self._worst_seen = 0

    @property
    def max_absorptions(self) -> int:
        """The enforced bound."""
        return self._max_absorptions

    @property
    def worst_seen(self) -> int:
        """Largest absorption count observed so far (for reporting)."""
        return self._worst_seen

    def check(self, message_id: int, absorptions: int) -> None:
        """Record an absorption and enforce the bound.

        Raises
        ------
        LivelockError
            When ``absorptions`` exceeds the configured bound.
        """
        if absorptions > self._worst_seen:
            self._worst_seen = absorptions
        if absorptions > self._max_absorptions:
            raise LivelockError(
                f"message {message_id} was absorbed {absorptions} times, exceeding the "
                f"livelock bound of {self._max_absorptions}; the fault pattern likely "
                f"violates the connectivity assumption or a routing bug is present"
            )
