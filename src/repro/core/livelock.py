"""Livelock accounting for Software-Based re-routing.

Unlike deadlocked messages, livelocked messages keep moving but never reach
their destination.  The Software-Based scheme can misroute messages (reversal
sends them the long way around a dimension; detours add orthogonal hops), so
the paper argues (Section 4) that the number of re-routing steps per fault
region is bounded by the region's extent, which bounds the total number of
absorptions of any message as long as fault regions are finite and the healthy
network stays connected.

The simulation engine enforces that argument operationally through a
:class:`LivelockGuard`: every absorption of a message is checked against a
bound derived from the topology and fault set; exceeding the bound raises
:class:`~repro.errors.LivelockError`, which in practice flags either a routing
bug or a fault pattern outside the algorithm's guarantees (e.g. a disconnected
network).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import LivelockError
from repro.faults.model import FaultSet
from repro.routing.trace import format_trace
from repro.topology.base import Topology

__all__ = ["absorption_bound", "LivelockGuard"]


def absorption_bound(topology: Topology, faults: FaultSet, slack: int = 8) -> int:
    """A conservative upper bound on per-message absorptions.

    Per *absorption epoch* (one attempt at routing the current target), the
    bound follows the paper's livelock argument, adjusted for how this
    implementation counts absorptions:

    * at most twice per dimension for same-dimension reversals (once per
      direction), and
    * at most twice per boundary channel of the fault regions while stepping
      orthogonally around them — a region of ``f`` faulty nodes has a
      boundary of at most ``2n·f`` channels, and every detour step costs
      *two* absorptions here, because arriving at the detour's intermediate
      target is itself a software absorption (the resume rewrite).

    On fault patterns whose deterministic rewrite sequence cycles, the
    route-progress invariant in
    :class:`~repro.core.swbased2d.PlanarRerouter` escalates through its
    escape ladder, whose final rung restarts the route at a fresh
    intermediate — opening a new epoch.  Restart intermediates prefer the
    destination's healthy neighbourhood, of which there are at most ``2n``,
    so with faults present the epoch bound is multiplied by ``1 + 2n`` (the
    original approach plus one epoch per destination doorway).  ``slack``
    covers the remaining odds and ends (escape rewrites, spurious resumes).

    The result is a diagnostic net, not a tight theorem: a genuine livelock
    recurs indefinitely and blows through any finite bound, while the escape
    ladder's worst observed convergence stays well inside this one.  It is
    intentionally loose — a safety net, not a performance parameter.
    """
    n = topology.dimensions
    num_faults = faults.num_faulty_nodes + faults.num_faulty_links
    per_epoch = 2 * n + 4 * n * max(1, num_faults)
    epochs = 1 if num_faults == 0 else 1 + 2 * n
    return epochs * per_epoch + slack


class LivelockGuard:
    """Tracks per-message absorption counts against the livelock bound.

    Parameters
    ----------
    max_absorptions:
        Hard bound; ``None`` derives it from :func:`absorption_bound`.
    topology, faults:
        Used only when ``max_absorptions`` is ``None``.
    """

    def __init__(
        self,
        max_absorptions: Optional[int] = None,
        topology: Optional[Topology] = None,
        faults: Optional[FaultSet] = None,
    ) -> None:
        if max_absorptions is None:
            if topology is None:
                raise ValueError("either max_absorptions or a topology must be provided")
            max_absorptions = absorption_bound(
                topology, faults if faults is not None else FaultSet.empty()
            )
        if max_absorptions <= 0:
            raise ValueError("max_absorptions must be positive")
        self._max_absorptions = int(max_absorptions)
        self._worst_seen = 0

    @property
    def max_absorptions(self) -> int:
        """The enforced bound."""
        return self._max_absorptions

    @property
    def worst_seen(self) -> int:
        """Largest absorption count observed so far (for reporting)."""
        return self._worst_seen

    def check(
        self, message_id: int, absorptions: int, trace: Iterable = ()
    ) -> None:
        """Record an absorption and enforce the bound.

        ``trace`` is the offending message's rerouting trace buffer (empty
        when tracing is disabled); it is embedded in the raised error so the
        cycling rewrite sequence is visible in the diagnostic.

        Raises
        ------
        LivelockError
            When ``absorptions`` exceeds the configured bound.
        """
        if absorptions > self._worst_seen:
            self._worst_seen = absorptions
        if absorptions > self._max_absorptions:
            entries = tuple(trace)
            message = (
                f"message {message_id} was absorbed {absorptions} times, exceeding the "
                f"livelock bound of {self._max_absorptions}; the fault pattern likely "
                f"violates the connectivity assumption or a routing bug is present"
            )
            rendered = format_trace(entries)
            if rendered:
                message = f"{message}\n{rendered}"
            else:
                message += (
                    "; enable rerouting tracing (trace_rerouting=True / "
                    "--trace-rerouting) to capture the per-rewrite trace"
                )
            raise LivelockError(message, trace=entries)
