"""The three re-routing tables consulted by the Software-Based messaging layer.

When a message is absorbed at a node because the outgoing channel(s) it needs
lead to faulty components, the node's message-passing software decides how to
modify the header before re-injecting the message.  The original 2-D
Software-Based algorithm (Suh et al., IEEE TPDS 2000) encodes that decision in
three tables; the 2006 paper summarises their intent:

    "When a message encounters a fault, it is first re-routed in the same
    dimension in the opposite direction.  If another fault is encountered, the
    message is routed in an orthogonal dimension in an attempt to route around
    the faulty regions."

Suh et al.'s exact table contents are not reprinted in the 2006 paper, so this
module reconstructs them from that description (see DESIGN.md, "Substitutions
and scale").  The three tables are:

* **reversal table** — for the first fault a message meets in a dimension:
  reverse the travel direction within that dimension (non-minimal, using the
  torus wrap-around);
* **detour table** — for a fault met after the dimension has already been
  reversed (or when the opposite direction is also faulty): step into an
  orthogonal dimension of the active dimension pair; the table also encodes
  *how* the intermediate node address is formed, which differs depending on
  whether the detour dimension is routed before or after the blocked dimension
  by e-cube order;
* **resume table** — for a message absorbed at an intermediate target node:
  re-target the final destination and continue.

The tables are exhaustive over their (small, discrete) input domain, which
makes them directly testable: every possible state maps to exactly one action.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

__all__ = [
    "ReroutingAction",
    "DetourKind",
    "ReroutingDecision",
    "ReroutingTables",
    "EscapeRung",
]


class ReroutingAction(Enum):
    """High-level action the software layer applies to an absorbed message."""

    #: Reverse the travel direction within the blocked dimension.
    REVERSE = "reverse"
    #: Step into an orthogonal dimension via an intermediate node address.
    DETOUR = "detour"
    #: The message was absorbed at an intermediate target: aim at the final
    #: destination again.
    RESUME = "resume"


class EscapeRung(Enum):
    """The escape ladder applied when the route-progress invariant trips.

    The rewrite sequence of the three tables is deterministic: with a static
    fault set, the decision at a node is a pure function of the node and the
    header's canonical state.  Revisiting a ``(node, state)`` pair therefore
    proves the message is cycling and will cycle forever.  Instead of
    repeating the cycling decision, the rerouter escalates one rung per
    revisit:

    ``ALTERNATE_DIMENSION``
        Detour through a different orthogonal dimension than the one the
        normal preference order would pick, stepping the message out of the
        plane the cycle lives in.  Skipped on 2-D networks (there is no
        alternate orthogonal dimension).

    ``ANTI_STICKY``
        Flip every sticky detour direction and detour again.  The stickiness
        that normally prevents oscillation is exactly what keeps a message
        orbiting a multi-region pattern; reversing it walks the message around
        the regions the other way.

    ``RESTART``
        Full-state restart: clear every override, reversal and sticky detour,
        forget the visited set (opening a new absorption epoch) and aim the
        message at a fresh healthy intermediate node never used by a previous
        restart.  The pool of fresh intermediates is finite and never
        replenished, so the ladder terminates.
    """

    ALTERNATE_DIMENSION = "alternate-dimension"
    ANTI_STICKY = "anti-sticky"
    RESTART = "restart"


class DetourKind(Enum):
    """How the intermediate node address of a detour is formed.

    ``SINGLE_HOP``
        The intermediate node is the neighbour one hop away in the detour
        dimension.  Used when the detour dimension is routed *after* the
        blocked dimension by e-cube order, so that the path towards the
        intermediate node does not re-enter the blocked dimension.

    ``COLUMN``
        The intermediate node is one hop away in the detour dimension *and*
        carries the target coordinate of the blocked dimension, i.e. the
        message crosses the fault region in the adjacent column before coming
        back.  Used when the detour dimension is routed *before* the blocked
        dimension, where a single-hop detour would be undone immediately by
        minimal routing (ping-pong livelock).
    """

    SINGLE_HOP = "single-hop"
    COLUMN = "column"


@dataclass(frozen=True)
class ReroutingDecision:
    """The decision returned by :meth:`ReroutingTables.decide`."""

    action: ReroutingAction
    detour_kind: DetourKind | None = None


# State of the blocked message as seen by the tables:
#   (already_reversed, opposite_direction_faulty)
_ReversalKey = Tuple[bool, bool]
# Relationship of the chosen detour dimension to the blocked dimension:
#   True  -> detour dimension is routed after the blocked one (higher index)
#   False -> detour dimension is routed before the blocked one (lower index)
_DetourKey = bool
# Whether the intermediate target equals the final destination (always False
# when the resume table is consulted, kept for exhaustiveness).
_ResumeKey = bool


class ReroutingTables:
    """Exhaustive decision tables for the Software-Based re-routing policy.

    The tables are built once per routing-algorithm instance; they are pure
    data (no topology knowledge) so that the planar rerouter in
    :mod:`repro.core.swbased2d` remains the single place where node addresses
    are computed.
    """

    def __init__(self) -> None:
        self._reversal_table: Dict[_ReversalKey, ReroutingAction] = {
            # First fault in this dimension and the opposite direction is
            # healthy: reverse within the dimension.
            (False, False): ReroutingAction.REVERSE,
            # First fault but the opposite direction is also blocked at this
            # node: reversing is pointless, detour orthogonally.
            (False, True): ReroutingAction.DETOUR,
            # Already reversed once: a second fault in the same dimension
            # always triggers the orthogonal detour.
            (True, False): ReroutingAction.DETOUR,
            (True, True): ReroutingAction.DETOUR,
        }
        self._detour_table: Dict[_DetourKey, DetourKind] = {
            # Detour dimension routed after the blocked dimension (e.g. detour
            # in Y while X is blocked): a single orthogonal hop suffices.
            True: DetourKind.SINGLE_HOP,
            # Detour dimension routed before the blocked dimension (e.g. detour
            # in X while Y is blocked): carry the blocked dimension's target
            # coordinate so minimal routing does not undo the detour.
            False: DetourKind.COLUMN,
        }
        self._resume_table: Dict[_ResumeKey, ReroutingAction] = {
            False: ReroutingAction.RESUME,
            True: ReroutingAction.RESUME,
        }

    # ------------------------------------------------------------------ #
    # table lookups
    # ------------------------------------------------------------------ #
    def decide(
        self,
        already_reversed: bool,
        opposite_direction_faulty: bool,
        detour_dimension_is_higher: bool,
    ) -> ReroutingDecision:
        """Decision for a message absorbed because of a fault.

        Parameters
        ----------
        already_reversed:
            Whether the same-dimension reversal was already applied to the
            blocked dimension for this message.
        opposite_direction_faulty:
            Whether the channel in the opposite direction of the blocked
            dimension is itself faulty at the absorbing node.
        detour_dimension_is_higher:
            Whether the orthogonal dimension that would be used for a detour
            is routed after the blocked dimension by e-cube order.  Only
            consulted when the action is a detour.
        """
        action = self._reversal_table[(already_reversed, opposite_direction_faulty)]
        if action is ReroutingAction.REVERSE:
            return ReroutingDecision(action=action)
        kind = self._detour_table[detour_dimension_is_higher]
        return ReroutingDecision(action=ReroutingAction.DETOUR, detour_kind=kind)

    def decide_resume(self, target_is_final: bool) -> ReroutingDecision:
        """Decision for a message absorbed at an intermediate target node."""
        return ReroutingDecision(action=self._resume_table[target_is_final])

    # ------------------------------------------------------------------ #
    # introspection (used by tests and documentation)
    # ------------------------------------------------------------------ #
    @property
    def reversal_table(self) -> Dict[_ReversalKey, ReroutingAction]:
        """The raw reversal table (state → action)."""
        return dict(self._reversal_table)

    @property
    def detour_table(self) -> Dict[_DetourKey, DetourKind]:
        """The raw detour table (detour-dimension relation → intermediate kind)."""
        return dict(self._detour_table)

    @property
    def resume_table(self) -> Dict[_ResumeKey, ReroutingAction]:
        """The raw resume table."""
        return dict(self._resume_table)

    def is_exhaustive(self) -> bool:
        """True when every reachable state has an entry in its table."""
        reversal_ok = set(self._reversal_table) == {
            (False, False),
            (False, True),
            (True, False),
            (True, True),
        }
        detour_ok = set(self._detour_table) == {True, False}
        resume_ok = set(self._resume_table) == {True, False}
        return reversal_ok and detour_ok and resume_ok
