"""Planar (2-D) Software-Based re-routing policy.

This module implements the software side of ``detRouting2D`` /
``adapRouting2D`` from Fig. 2 of the paper: what the message-passing layer of
a node does to the header of a message that was absorbed because its required
outgoing channel(s) lead to faults.  The policy operates on the message's
*active dimension pair* — the blocked dimension and its partner in the
SW-Based-nD pairing — and consults the three re-routing tables of
:mod:`repro.core.rerouting_tables`:

1. *reversal*: force the opposite direction within the blocked dimension (the
   torus wrap-around provides the alternative path);
2. *detour*: install an intermediate node address one step away in an
   orthogonal dimension; the exact form of the intermediate address depends on
   whether the detour dimension is routed before or after the blocked one
   (see :class:`~repro.core.rerouting_tables.DetourKind`);
3. *resume*: a message absorbed at an intermediate target is simply aimed at
   its final destination again.

On top of the tables the rerouter enforces a **route-progress invariant**:
with a static fault set the rewrite at a node is a pure function of the node
and the header's canonical state, so revisiting a ``(node, state)`` pair
proves the deterministic rewrite sequence is cycling.  On revisit the rerouter
escalates through the documented escape ladder
(:class:`~repro.core.rerouting_tables.EscapeRung`) instead of repeating the
cycling decision.  This replaces the old blind modulo-``valve_period`` state
reset, which could re-arm a message's reversal state just as it re-entered a
previously escaped fault region and thereby *cause* the very livelock it was
meant to break.

The class is topology- and fault-aware but completely independent of the
simulation engine, so it can be unit-tested exhaustively on hand-crafted fault
patterns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.rerouting_tables import (
    DetourKind,
    EscapeRung,
    ReroutingAction,
    ReroutingTables,
)
from repro.errors import RoutingError
from repro.faults.model import FaultSet
from repro.routing.base import RoutingHeader
from repro.routing.trace import ReroutingTraceEntry
from repro.topology.base import Topology
from repro.topology.channels import MINUS, PLUS

__all__ = ["partner_dimension", "PlanarRerouter"]


def partner_dimension(dimension: int, dimensions: int) -> int:
    """The partner of ``dimension`` in the SW-Based-nD dimension pairing.

    The algorithm of Fig. 2 routes messages through consecutive dimension
    pairs ``(i, i+1)``; the partner of dimension ``i`` is therefore ``i+1``,
    except for the highest dimension, whose pair is ``(n-2, n-1)``.
    """
    if dimensions < 2:
        raise ValueError("the Software-Based pairing needs at least two dimensions")
    if not 0 <= dimension < dimensions:
        raise ValueError(f"dimension {dimension} out of range for {dimensions} dimensions")
    if dimension + 1 < dimensions:
        return dimension + 1
    return dimension - 1


class PlanarRerouter:
    """Software re-routing policy applied by the messaging layer on absorption."""

    def __init__(
        self,
        topology: Topology,
        faults: Optional[FaultSet] = None,
        tables: Optional[ReroutingTables] = None,
    ) -> None:
        if topology.dimensions < 2:
            raise ValueError("Software-Based routing requires at least a 2-D network")
        self._topology = topology
        self._faults = faults if faults is not None else FaultSet.empty()
        self._tables = tables if tables is not None else ReroutingTables()
        self._stats: Dict[str, int] = {}

    @property
    def tables(self) -> ReroutingTables:
        """The re-routing tables consulted by this policy."""
        return self._tables

    @property
    def stats(self) -> Dict[str, int]:
        """Aggregate rewrite/escape counters across all messages (a copy)."""
        return dict(self._stats)

    @property
    def topology(self) -> Topology:
        """The network this policy operates on."""
        return self._topology

    @property
    def faults(self) -> FaultSet:
        """The static fault set known to the policy."""
        return self._faults

    # ------------------------------------------------------------------ #
    # header-state helpers (mirror RoutingAlgorithm's override semantics)
    # ------------------------------------------------------------------ #
    def _remaining_offset(self, node: int, header: RoutingHeader, dimension: int) -> int:
        topo = self._topology
        current = topo.coords(node)[dimension]
        target = topo.coords(header.target)[dimension]
        if current == target:
            return 0
        override = header.direction_overrides.get(dimension)
        if override is None or not topo.wraparound:
            return topo.offsets(node, header.target)[dimension]
        k = topo.radices[dimension]
        if override == PLUS:
            return (target - current) % k
        return -((current - target) % k)

    def _channel_is_faulty(self, node: int, dimension: int, direction: int) -> bool:
        neighbour = self._topology.neighbor(node, dimension, direction)
        if neighbour is None:
            return True
        return self._faults.is_link_faulty(node, neighbour)

    def blocked_dimension(self, node: int, header: RoutingHeader) -> Optional[Tuple[int, int]]:
        """The dimension/direction e-cube order would route next, or ``None``.

        This is the dimension the re-routing decision reasons about.  It is
        recomputed from the header state (rather than plumbed through the
        absorption machinery) so the policy is self-contained.
        """
        for dim in range(self._topology.dimensions):
            offset = self._remaining_offset(node, header, dim)
            if offset != 0:
                direction = PLUS if offset > 0 else MINUS
                return dim, direction
        return None

    # ------------------------------------------------------------------ #
    # the policy
    # ------------------------------------------------------------------ #
    def rewrite(self, node: int, header: RoutingHeader) -> ReroutingAction:
        """Mutate ``header`` so that re-injection at ``node`` makes progress.

        Returns the action that was applied (useful for statistics and tests).

        Before consulting the tables the route-progress invariant is checked:
        if this message was already rewritten at this node with the same
        canonical header state during the current absorption epoch, the
        deterministic rewrite sequence is provably cycling and the escape
        ladder takes over (see :meth:`_escalate`).

        Raises
        ------
        RoutingError
            If no healthy outgoing direction exists at ``node`` (the node is
            isolated, contradicting the paper's connectivity assumption), or
            if the header targets a faulty node.
        """
        if self._faults.is_node_faulty(header.final_destination):
            raise RoutingError(
                f"message destined to faulty node {header.final_destination} "
                f"cannot be re-routed"
            )

        blocked = self.blocked_dimension(node, header)
        if blocked is None:
            # Absorbed exactly at its target: behave like the resume table.
            decision = self._tables.decide_resume(not header.is_intermediate)
            self._resume_retarget(header, node)
            self._count("resumes")
            if header.trace is not None:
                self._record(header, node, None, 0, "resume", decision.action)
            return decision.action

        dim, direction = blocked

        # Route-progress invariant: a revisit of (node, canonical state) means
        # the table decision about to be repeated already failed to make
        # progress once — escalate instead of cycling.
        state_key = header.progress_key(node)
        if header.visited_states is None:
            header.visited_states = set()
        if state_key in header.visited_states:
            return self._escalate(node, header, dim, direction)
        header.visited_states.add(state_key)

        already_reversed = dim in header.reversed_dimensions
        opposite_faulty = self._channel_is_faulty(node, dim, -direction)
        # Probe the detour dimension that would be used, so the table lookup
        # can select the intermediate-address form.
        detour_probe = self._select_detour(node, header, dim, probe_only=True)
        detour_is_higher = detour_probe[0] > dim if detour_probe is not None else True

        decision = self._tables.decide(already_reversed, opposite_faulty, detour_is_higher)

        if decision.action is ReroutingAction.REVERSE:
            self._apply_reversal(header, dim, direction)
            self._count("reversals")
            if header.trace is not None:
                self._record(header, node, dim, direction, "reverse", decision.action)
            return decision.action

        # DETOUR
        if detour_probe is None:
            # No orthogonal channel is available at this node.  If the opposite
            # direction within the blocked dimension is healthy, fall back to a
            # (repeated) reversal — it is the only remaining way to make
            # progress.  Otherwise the node really is cut off, which violates
            # the paper's connectivity assumption (h).
            if not opposite_faulty:
                self._apply_reversal(header, dim, direction)
                self._count("reversals")
                if header.trace is not None:
                    self._record(
                        header, node, dim, direction, "reverse", ReroutingAction.REVERSE
                    )
                return ReroutingAction.REVERSE
            if not self._channel_is_faulty(node, dim, direction):
                # Spurious absorption: the channel the message was waiting for
                # is actually healthy (possible when the software layer is
                # invoked conservatively).  Re-inject with an unchanged header.
                self._count("spurious_resumes")
                if header.trace is not None:
                    self._record(
                        header, node, dim, direction, "spurious-resume", ReroutingAction.RESUME
                    )
                return ReroutingAction.RESUME
            raise RoutingError(
                f"node {node} has no healthy outgoing channel at all; "
                f"the fault set isolates it (violates assumption (h))"
            )
        detour_dim, detour_dir = detour_probe
        self._apply_detour(node, header, dim, detour_dim, detour_dir, decision.detour_kind)
        self._count("detours")
        if header.trace is not None:
            self._record(header, node, dim, direction, "detour", decision.action)
        return decision.action

    def resume(self, header: RoutingHeader, node: Optional[int] = None) -> ReroutingAction:
        """Handle absorption at an intermediate target: aim at the destination again."""
        decision = self._tables.decide_resume(not header.is_intermediate)
        at = node if node is not None else header.target
        self._resume_retarget(header, at)
        self._count("resumes")
        if header.trace is not None:
            self._record(header, at, None, 0, "resume", decision.action)
        return decision.action

    def _resume_retarget(self, header: RoutingHeader, node: int) -> None:
        """Aim a resumed message at its next waypoint.

        The final destination, unless a full-state restart installed a pending
        intermediate the message has not passed through yet — a detour on the
        way to that intermediate must resume *towards the intermediate*, or
        the restart would collapse back into the original (cycling) route.
        """
        pending = header.pending_intermediate
        if pending is not None and node != pending:
            header.retarget(pending)
            return
        header.pending_intermediate = None
        header.retarget(header.final_destination)

    # ------------------------------------------------------------------ #
    # the escape ladder (route-progress invariant violated)
    # ------------------------------------------------------------------ #
    def _escalate(
        self, node: int, header: RoutingHeader, dim: int, direction: int
    ) -> ReroutingAction:
        """Escalate one :class:`EscapeRung` past the message's current level.

        Rungs that cannot apply at this node (no alternate orthogonal
        dimension, no healthy detour channel) fall through to the next, ending
        at the full-state restart, which always applies while fresh healthy
        intermediates remain.
        """
        self._count("revisits")
        rung = header.escape_level + 1

        if rung <= 1 and self._escape_alternate_dimension(node, header, dim, direction):
            return ReroutingAction.DETOUR
        if rung <= 2 and self._escape_anti_sticky(node, header, dim, direction):
            return ReroutingAction.DETOUR
        return self._escape_restart(node, header, dim, direction)

    def _escape_alternate_dimension(
        self, node: int, header: RoutingHeader, dim: int, direction: int
    ) -> bool:
        """Rung 1: detour through a dimension the normal preference skips."""
        normal = self._select_detour(node, header, dim, probe_only=True)
        if normal is None:
            return False
        probe = self._select_detour(
            node, header, dim, probe_only=True, exclude_dimension=normal[0]
        )
        if probe is None:
            # On 2-D networks there is no alternate orthogonal dimension.
            return False
        detour_dim, detour_dir = probe
        decision = self._tables.decide(True, True, detour_dim > dim)
        self._apply_detour(node, header, dim, detour_dim, detour_dir, decision.detour_kind)
        header.escape_level = 1
        self._count("escape_alternate_dimension")
        self._record(
            header, node, dim, direction,
            f"escape:{EscapeRung.ALTERNATE_DIMENSION.value}", ReroutingAction.DETOUR,
        )
        return True

    def _escape_anti_sticky(
        self, node: int, header: RoutingHeader, dim: int, direction: int
    ) -> bool:
        """Rung 2: flip the sticky detour directions and detour again."""
        if header.detour_directions:
            flipped = {d: -s for d, s in header.detour_directions.items()}
            header.detour_directions.clear()
            header.detour_directions.update(flipped)
        probe = self._select_detour(node, header, dim, probe_only=True)
        if probe is None:
            return False
        detour_dim, detour_dir = probe
        decision = self._tables.decide(True, True, detour_dim > dim)
        self._apply_detour(node, header, dim, detour_dim, detour_dir, decision.detour_kind)
        header.escape_level = 2
        self._count("escape_anti_sticky")
        self._record(
            header, node, dim, direction,
            f"escape:{EscapeRung.ANTI_STICKY.value}", ReroutingAction.DETOUR,
        )
        return True

    def _escape_restart(
        self, node: int, header: RoutingHeader, dim: int, direction: int
    ) -> ReroutingAction:
        """Rung 3: full-state restart aimed at a fresh healthy intermediate.

        Clears every override, reversal and sticky detour, forgets the visited
        set (opening a new absorption epoch) and targets the healthy node —
        never used by a previous restart of this message — closest to the
        final destination (ties broken by distance from the current node, then
        node id, so the choice is deterministic).  Preferring
        destination-adjacent intermediates matters: when the destination is
        only enterable through one healthy neighbour (e.g. a mesh corner
        walled in by faults), the first restart already aims at that
        neighbour, and the resume from there walks straight in instead of
        replaying a doomed approach from afar.

        Candidates whose e-cube route from the current node *starts with the
        very channel this message is stuck at* are deprioritised: such an
        intermediate would replay the whole doomed approach before the next
        restart (observed on 3-D meshes, where a fault wall blocks the low
        dimension at every reachable coordinate and the only way out is to
        route a higher dimension first).  The pool of fresh intermediates is
        finite and never replenished, so repeated restarts cannot recur
        forever.
        """
        topo = self._topology
        faults = self._faults
        if header.used_restart_targets is None:
            header.used_restart_targets = set()
        used = header.used_restart_targets
        destination = header.final_destination
        best: Optional[Tuple[int, int, int, int]] = None
        for candidate in range(topo.num_nodes):
            if candidate == node or candidate == destination or candidate in used:
                continue
            if faults.is_node_faulty(candidate):
                continue
            offsets = topo.offsets(node, candidate)
            same_doorway = 0
            for d in range(topo.dimensions):
                if offsets[d] != 0:
                    first_dir = PLUS if offsets[d] > 0 else MINUS
                    same_doorway = int(d == dim and first_dir == direction)
                    break
            score = (
                same_doorway,
                topo.distance(candidate, destination),
                topo.distance(node, candidate),
                candidate,
            )
            if best is None or score < best:
                best = score
        if best is None:
            raise RoutingError(
                f"escape ladder exhausted at node {node}: every healthy node has "
                f"already served as a restart intermediate for this message; the "
                f"fault pattern likely violates the connectivity assumption (h)"
            )
        intermediate = best[3]
        used.add(intermediate)
        header.clear_rerouting_state()
        # The visited set deliberately survives the restart: canonical states
        # embed the target and pending intermediate, so the fresh epoch cannot
        # collide with old entries spuriously — but if the restarted route
        # degenerates into an approach that already failed (same node, same
        # state), the invariant fires on the first rewrite instead of
        # re-walking the whole doomed epoch.
        header.escape_level = 0
        header.pending_intermediate = intermediate
        header.retarget(intermediate)
        header.misroutes += 1
        self._count("escape_restarts")
        self._record(
            header, node, dim, direction,
            f"escape:{EscapeRung.RESTART.value}", ReroutingAction.DETOUR,
        )
        return ReroutingAction.DETOUR

    # ------------------------------------------------------------------ #
    # statistics and tracing
    # ------------------------------------------------------------------ #
    def _count(self, counter: str) -> None:
        self._stats[counter] = self._stats.get(counter, 0) + 1

    def _record(
        self,
        header: RoutingHeader,
        node: int,
        blocked_dim: Optional[int],
        blocked_direction: int,
        decision: str,
        action: ReroutingAction,
    ) -> None:
        # Hot call sites in rewrite()/resume() pre-check ``header.trace`` so
        # the tracing-off path never pays the call; the guard here keeps the
        # rare escalation sites safe to call unconditionally.
        if header.trace is None:
            return
        header.record_trace(
            ReroutingTraceEntry(
                node=node,
                blocked_dimension=blocked_dim,
                blocked_direction=blocked_direction,
                decision=decision,
                action=action.value,
                escape_level=header.escape_level,
                target=header.target,
                direction_overrides=tuple(sorted(header.direction_overrides.items())),
                reversed_dimensions=tuple(sorted(header.reversed_dimensions)),
                detour_directions=tuple(sorted(header.detour_directions.items())),
            )
        )

    # ------------------------------------------------------------------ #
    # actions
    # ------------------------------------------------------------------ #
    def _apply_reversal(self, header: RoutingHeader, dim: int, direction: int) -> None:
        header.direction_overrides[dim] = -direction
        header.reversed_dimensions.add(dim)
        header.misroutes += 1

    def _apply_detour(
        self,
        node: int,
        header: RoutingHeader,
        blocked_dim: int,
        detour_dim: int,
        detour_dir: int,
        kind: Optional[DetourKind],
    ) -> None:
        topo = self._topology
        step_neighbour = topo.neighbor(node, detour_dim, detour_dir)
        assert step_neighbour is not None  # _select_detour only returns healthy channels

        if kind is DetourKind.COLUMN:
            intermediate = self._column_intermediate(node, header, blocked_dim, step_neighbour)
        else:
            intermediate = step_neighbour

        header.detour_directions[detour_dim] = detour_dir
        header.retarget(intermediate)
        header.misroutes += 1

    def _column_intermediate(
        self, node: int, header: RoutingHeader, blocked_dim: int, step_neighbour: int
    ) -> int:
        """Intermediate address for a COLUMN detour.

        The intermediate node lies in the detour column (the coordinates of
        ``step_neighbour``) and carries the blocked dimension's target
        coordinate, so that the message crosses the fault region in the
        adjacent column before coming back.  If that exact node is faulty, the
        blocked-dimension coordinate is walked back towards the current
        coordinate until a healthy node is found; the walk terminates because
        ``step_neighbour`` itself is healthy.
        """
        topo = self._topology
        faults = self._faults
        column = list(topo.coords(step_neighbour))
        target_coord = topo.coords(header.target)[blocked_dim]
        current_coord = column[blocked_dim]
        k = topo.radices[blocked_dim]

        # Direction of travel within the blocked dimension (override-aware).
        override = header.direction_overrides.get(blocked_dim)
        if override is not None:
            travel_dir = override
        else:
            offset = self._remaining_offset(node, header, blocked_dim)
            travel_dir = PLUS if offset > 0 else MINUS

        # Candidate coordinates from the target coordinate back towards the
        # current coordinate, walking against the travel direction.
        coord = target_coord
        while True:
            column[blocked_dim] = coord
            candidate = topo.node_id(column)
            if not faults.is_node_faulty(candidate):
                return candidate
            if coord == current_coord:
                # Fully degenerated to the plain orthogonal step.
                return step_neighbour
            if topo.wraparound:
                coord = (coord - travel_dir) % k
            else:
                coord = coord - travel_dir
                if not 0 <= coord < k:
                    return step_neighbour

    # ------------------------------------------------------------------ #
    # detour selection
    # ------------------------------------------------------------------ #
    def _select_detour(
        self,
        node: int,
        header: RoutingHeader,
        blocked_dim: int,
        probe_only: bool = False,
        exclude_dimension: Optional[int] = None,
    ) -> Optional[Tuple[int, int]]:
        """Choose the orthogonal dimension and direction for a detour.

        Preference order for the dimension: the SW-Based-nD pair partner of the
        blocked dimension first, then the remaining dimensions.  Preference
        order for the direction within a dimension: the message's sticky
        detour direction (to avoid oscillating around a region), then the
        minimal direction towards the final destination, then ``+``/``-``.
        Only healthy channels are returned.  ``exclude_dimension`` removes one
        dimension from consideration (used by the escape ladder's
        alternate-dimension rung).
        """
        topo = self._topology
        n = topo.dimensions
        preferred = [partner_dimension(blocked_dim, n)]
        for dim in range(n):
            if dim != blocked_dim and dim not in preferred:
                preferred.append(dim)
        if exclude_dimension is not None:
            preferred = [dim for dim in preferred if dim != exclude_dimension]

        final_offsets = topo.offsets(node, header.final_destination)
        for dim in preferred:
            directions: List[int] = []
            sticky = header.detour_directions.get(dim)
            if sticky is not None:
                directions.append(sticky)
            if final_offsets[dim] > 0 and PLUS not in directions:
                directions.append(PLUS)
            elif final_offsets[dim] < 0 and MINUS not in directions:
                directions.append(MINUS)
            for fallback in (PLUS, MINUS):
                if fallback not in directions:
                    directions.append(fallback)
            for direction in directions:
                if not self._channel_is_faulty(node, dim, direction):
                    return dim, direction
        return None
