"""Planar (2-D) Software-Based re-routing policy.

This module implements the software side of ``detRouting2D`` /
``adapRouting2D`` from Fig. 2 of the paper: what the message-passing layer of
a node does to the header of a message that was absorbed because its required
outgoing channel(s) lead to faults.  The policy operates on the message's
*active dimension pair* — the blocked dimension and its partner in the
SW-Based-nD pairing — and consults the three re-routing tables of
:mod:`repro.core.rerouting_tables`:

1. *reversal*: force the opposite direction within the blocked dimension (the
   torus wrap-around provides the alternative path);
2. *detour*: install an intermediate node address one step away in an
   orthogonal dimension; the exact form of the intermediate address depends on
   whether the detour dimension is routed before or after the blocked one
   (see :class:`~repro.core.rerouting_tables.DetourKind`);
3. *resume*: a message absorbed at an intermediate target is simply aimed at
   its final destination again.

The class is topology- and fault-aware but completely independent of the
simulation engine, so it can be unit-tested exhaustively on hand-crafted fault
patterns.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.rerouting_tables import DetourKind, ReroutingAction, ReroutingTables
from repro.errors import RoutingError
from repro.faults.model import FaultSet
from repro.routing.base import RoutingHeader
from repro.topology.base import Topology
from repro.topology.channels import MINUS, PLUS

__all__ = ["partner_dimension", "PlanarRerouter"]


def partner_dimension(dimension: int, dimensions: int) -> int:
    """The partner of ``dimension`` in the SW-Based-nD dimension pairing.

    The algorithm of Fig. 2 routes messages through consecutive dimension
    pairs ``(i, i+1)``; the partner of dimension ``i`` is therefore ``i+1``,
    except for the highest dimension, whose pair is ``(n-2, n-1)``.
    """
    if dimensions < 2:
        raise ValueError("the Software-Based pairing needs at least two dimensions")
    if not 0 <= dimension < dimensions:
        raise ValueError(f"dimension {dimension} out of range for {dimensions} dimensions")
    if dimension + 1 < dimensions:
        return dimension + 1
    return dimension - 1


class PlanarRerouter:
    """Software re-routing policy applied by the messaging layer on absorption."""

    def __init__(
        self,
        topology: Topology,
        faults: Optional[FaultSet] = None,
        tables: Optional[ReroutingTables] = None,
    ) -> None:
        if topology.dimensions < 2:
            raise ValueError("Software-Based routing requires at least a 2-D network")
        self._topology = topology
        self._faults = faults if faults is not None else FaultSet.empty()
        self._tables = tables if tables is not None else ReroutingTables()

    @property
    def tables(self) -> ReroutingTables:
        """The re-routing tables consulted by this policy."""
        return self._tables

    @property
    def topology(self) -> Topology:
        """The network this policy operates on."""
        return self._topology

    @property
    def faults(self) -> FaultSet:
        """The static fault set known to the policy."""
        return self._faults

    # ------------------------------------------------------------------ #
    # header-state helpers (mirror RoutingAlgorithm's override semantics)
    # ------------------------------------------------------------------ #
    def _remaining_offset(self, node: int, header: RoutingHeader, dimension: int) -> int:
        topo = self._topology
        current = topo.coords(node)[dimension]
        target = topo.coords(header.target)[dimension]
        if current == target:
            return 0
        override = header.direction_overrides.get(dimension)
        if override is None or not topo.wraparound:
            return topo.offsets(node, header.target)[dimension]
        k = topo.radices[dimension]
        if override == PLUS:
            return (target - current) % k
        return -((current - target) % k)

    def _channel_is_faulty(self, node: int, dimension: int, direction: int) -> bool:
        neighbour = self._topology.neighbor(node, dimension, direction)
        if neighbour is None:
            return True
        return self._faults.is_link_faulty(node, neighbour)

    def blocked_dimension(self, node: int, header: RoutingHeader) -> Optional[Tuple[int, int]]:
        """The dimension/direction e-cube order would route next, or ``None``.

        This is the dimension the re-routing decision reasons about.  It is
        recomputed from the header state (rather than plumbed through the
        absorption machinery) so the policy is self-contained.
        """
        for dim in range(self._topology.dimensions):
            offset = self._remaining_offset(node, header, dim)
            if offset != 0:
                direction = PLUS if offset > 0 else MINUS
                return dim, direction
        return None

    # ------------------------------------------------------------------ #
    # the policy
    # ------------------------------------------------------------------ #
    def rewrite(self, node: int, header: RoutingHeader) -> ReroutingAction:
        """Mutate ``header`` so that re-injection at ``node`` makes progress.

        Returns the action that was applied (useful for statistics and tests).

        Raises
        ------
        RoutingError
            If no healthy outgoing direction exists at ``node`` (the node is
            isolated, contradicting the paper's connectivity assumption), or
            if the header targets a faulty node.
        """
        if self._faults.is_node_faulty(header.final_destination):
            raise RoutingError(
                f"message destined to faulty node {header.final_destination} "
                f"cannot be re-routed"
            )

        blocked = self.blocked_dimension(node, header)
        if blocked is None:
            # Absorbed exactly at its target: behave like the resume table.
            decision = self._tables.decide_resume(not header.is_intermediate)
            header.retarget(header.final_destination)
            return decision.action

        dim, direction = blocked
        already_reversed = dim in header.reversed_dimensions
        opposite_faulty = self._channel_is_faulty(node, dim, -direction)
        # Probe the detour dimension that would be used, so the table lookup
        # can select the intermediate-address form.
        detour_probe = self._select_detour(node, header, dim, probe_only=True)
        detour_is_higher = detour_probe[0] > dim if detour_probe is not None else True

        decision = self._tables.decide(already_reversed, opposite_faulty, detour_is_higher)

        if decision.action is ReroutingAction.REVERSE:
            self._apply_reversal(header, dim, direction)
            return decision.action

        # DETOUR
        if detour_probe is None:
            # No orthogonal channel is available at this node.  If the opposite
            # direction within the blocked dimension is healthy, fall back to a
            # (repeated) reversal — it is the only remaining way to make
            # progress.  Otherwise the node really is cut off, which violates
            # the paper's connectivity assumption (h).
            if not opposite_faulty:
                self._apply_reversal(header, dim, direction)
                return ReroutingAction.REVERSE
            if not self._channel_is_faulty(node, dim, direction):
                # Spurious absorption: the channel the message was waiting for
                # is actually healthy (possible when the software layer is
                # invoked conservatively).  Re-inject with an unchanged header.
                return ReroutingAction.RESUME
            raise RoutingError(
                f"node {node} has no healthy outgoing channel at all; "
                f"the fault set isolates it (violates assumption (h))"
            )
        detour_dim, detour_dir = detour_probe
        self._apply_detour(node, header, dim, detour_dim, detour_dir, decision.detour_kind)
        return decision.action

    def resume(self, header: RoutingHeader) -> ReroutingAction:
        """Handle absorption at an intermediate target: aim at the destination again."""
        decision = self._tables.decide_resume(not header.is_intermediate)
        header.retarget(header.final_destination)
        return decision.action

    # ------------------------------------------------------------------ #
    # actions
    # ------------------------------------------------------------------ #
    def _apply_reversal(self, header: RoutingHeader, dim: int, direction: int) -> None:
        header.direction_overrides[dim] = -direction
        header.reversed_dimensions.add(dim)
        header.misroutes += 1

    def _apply_detour(
        self,
        node: int,
        header: RoutingHeader,
        blocked_dim: int,
        detour_dim: int,
        detour_dir: int,
        kind: Optional[DetourKind],
    ) -> None:
        topo = self._topology
        step_neighbour = topo.neighbor(node, detour_dim, detour_dir)
        assert step_neighbour is not None  # _select_detour only returns healthy channels

        if kind is DetourKind.COLUMN:
            intermediate = self._column_intermediate(node, header, blocked_dim, step_neighbour)
        else:
            intermediate = step_neighbour

        header.detour_directions[detour_dim] = detour_dir
        header.retarget(intermediate)
        header.misroutes += 1

    def _column_intermediate(
        self, node: int, header: RoutingHeader, blocked_dim: int, step_neighbour: int
    ) -> int:
        """Intermediate address for a COLUMN detour.

        The intermediate node lies in the detour column (the coordinates of
        ``step_neighbour``) and carries the blocked dimension's target
        coordinate, so that the message crosses the fault region in the
        adjacent column before coming back.  If that exact node is faulty, the
        blocked-dimension coordinate is walked back towards the current
        coordinate until a healthy node is found; the walk terminates because
        ``step_neighbour`` itself is healthy.
        """
        topo = self._topology
        faults = self._faults
        column = list(topo.coords(step_neighbour))
        target_coord = topo.coords(header.target)[blocked_dim]
        current_coord = column[blocked_dim]
        k = topo.radices[blocked_dim]

        # Direction of travel within the blocked dimension (override-aware).
        override = header.direction_overrides.get(blocked_dim)
        if override is not None:
            travel_dir = override
        else:
            offset = self._remaining_offset(node, header, blocked_dim)
            travel_dir = PLUS if offset > 0 else MINUS

        # Candidate coordinates from the target coordinate back towards the
        # current coordinate, walking against the travel direction.
        coord = target_coord
        while True:
            column[blocked_dim] = coord
            candidate = topo.node_id(column)
            if not faults.is_node_faulty(candidate):
                return candidate
            if coord == current_coord:
                # Fully degenerated to the plain orthogonal step.
                return step_neighbour
            if topo.wraparound:
                coord = (coord - travel_dir) % k
            else:
                coord = coord - travel_dir
                if not 0 <= coord < k:  # pragma: no cover - defensive for meshes
                    return step_neighbour

    # ------------------------------------------------------------------ #
    # detour selection
    # ------------------------------------------------------------------ #
    def _select_detour(
        self, node: int, header: RoutingHeader, blocked_dim: int, probe_only: bool = False
    ) -> Optional[Tuple[int, int]]:
        """Choose the orthogonal dimension and direction for a detour.

        Preference order for the dimension: the SW-Based-nD pair partner of the
        blocked dimension first, then the remaining dimensions.  Preference
        order for the direction within a dimension: the message's sticky
        detour direction (to avoid oscillating around a region), then the
        minimal direction towards the final destination, then ``+``/``-``.
        Only healthy channels are returned.
        """
        topo = self._topology
        n = topo.dimensions
        preferred = [partner_dimension(blocked_dim, n)]
        for dim in range(n):
            if dim != blocked_dim and dim not in preferred:
                preferred.append(dim)

        final_offsets = topo.offsets(node, header.final_destination)
        for dim in preferred:
            directions: List[int] = []
            sticky = header.detour_directions.get(dim)
            if sticky is not None:
                directions.append(sticky)
            if final_offsets[dim] > 0 and PLUS not in directions:
                directions.append(PLUS)
            elif final_offsets[dim] < 0 and MINUS not in directions:
                directions.append(MINUS)
            for fallback in (PLUS, MINUS):
                if fallback not in directions:
                    directions.append(fallback)
            for direction in directions:
                if not self._channel_is_faulty(node, dim, direction):
                    return dim, direction
        return None
