"""SW-Based-nD: Software-Based fault-tolerant routing for n-dimensional tori.

This is the paper's contribution (Fig. 2).  The algorithm comes in two
flavours:

* **deterministic** — in the absence of faults it is identical to
  dimension-order (e-cube) routing; when a message's required outgoing channel
  is faulty, the message is absorbed by the local node's software layer, its
  header is rewritten by the planar re-routing policy
  (:class:`~repro.core.swbased2d.PlanarRerouter`) and it is re-injected;
* **adaptive** — in the absence of faults it is identical to Duato's Protocol
  fully adaptive routing; a message is absorbed only when *every* profitable
  outgoing channel at its current router is faulty, after which it is routed
  deterministically for the rest of its journey
  (``routing_type := Deterministic`` in Fig. 2).

The n-dimensional structure of the paper — messages traverse consecutive
dimension *pairs* ``(i, i+1)`` and the fault-handling subroutines only ever
reason about two dimensions at a time — is reflected here by the planar
rerouter: the re-routing decision for a fault in dimension ``i`` detours
through the pair partner ``i+1`` (or ``i-1`` for the last dimension) before
considering any other dimension.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Tuple

from repro.core.rerouting_tables import ReroutingAction, ReroutingTables
from repro.core.swbased2d import PlanarRerouter, partner_dimension
from repro.errors import ConfigurationError
from repro.faults.model import FaultSet
from repro.routing.base import (
    ADAPTIVE_MODE,
    DETERMINISTIC_MODE,
    RoutingAlgorithm,
    RoutingDecision,
    RoutingHeader,
)
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.duato import DuatoRouting
from repro.topology.base import Topology

__all__ = ["SoftwareBasedRouting", "SWBased2DRouting"]


class SoftwareBasedRouting(RoutingAlgorithm):
    """The SW-Based-nD routing algorithm (deterministic or adaptive flavour).

    Parameters
    ----------
    topology:
        A k-ary n-cube (or mesh) with at least two dimensions.
    faults:
        The static fault set.  The network induced by healthy components must
        remain connected (assumption (h)); use
        :func:`repro.faults.assert_faults_keep_network_connected` to verify.
    num_virtual_channels:
        Virtual channels per physical channel (``V``).  The deterministic
        flavour needs ``V >= 2``; the adaptive flavour needs ``V >= 3``.
    mode:
        ``"deterministic"`` or ``"adaptive"``.
    valve_period:
        Deprecated and ignored.  The old "robustness valve" cleared a
        message's reversal state every ``valve_period`` absorptions, which
        could re-arm the state of a message just as it re-entered a previously
        escaped fault region and thereby *cause* a deterministic livelock on
        multi-region fault patterns (it also triggered on fault patterns the
        paper evaluates, contrary to what this docstring used to claim — see
        ``tests/test_core_swbased_nd.py``).  It has been replaced by the
        per-message route-progress invariant and escape ladder in
        :class:`~repro.core.swbased2d.PlanarRerouter`.  The parameter is kept
        so existing configurations keep constructing.
    trace_rerouting:
        When true, every message carries a bounded ring buffer of
        :class:`~repro.routing.trace.ReroutingTraceEntry` records describing
        each software rewrite; the engine embeds it in livelock diagnostics.
    trace_depth:
        Capacity of the per-message trace ring buffer (most recent rewrites
        are kept).
    """

    def __init__(
        self,
        topology: Topology,
        faults: Optional[FaultSet] = None,
        num_virtual_channels: int = 2,
        mode: str = DETERMINISTIC_MODE,
        valve_period: int = 12,
        tables: Optional[ReroutingTables] = None,
        trace_rerouting: bool = False,
        trace_depth: int = 64,
    ) -> None:
        if mode not in (DETERMINISTIC_MODE, ADAPTIVE_MODE):
            raise ConfigurationError(f"unknown Software-Based mode {mode!r}")
        if topology.dimensions < 2:
            raise ConfigurationError(
                "Software-Based routing requires a network with at least 2 dimensions"
            )
        self._mode = mode
        super().__init__(topology, faults, num_virtual_channels)
        self.name = f"swbased-{mode}"
        if mode == ADAPTIVE_MODE:
            self._inner: RoutingAlgorithm = DuatoRouting(
                topology, self._faults, num_virtual_channels
            )
        else:
            self._inner = DimensionOrderRouting(topology, self._faults, num_virtual_channels)
        self._tables = tables if tables is not None else ReroutingTables()
        self._rerouter = PlanarRerouter(topology, self._faults, self._tables)
        self._valve_period = int(valve_period)
        self._trace_rerouting = bool(trace_rerouting)
        if trace_depth < 1:
            raise ConfigurationError("trace_depth must be at least 1")
        self._trace_depth = int(trace_depth)

    # ------------------------------------------------------------------ #
    # constructors used by the registry
    # ------------------------------------------------------------------ #
    @classmethod
    def deterministic(
        cls,
        topology: Topology,
        faults: Optional[FaultSet] = None,
        num_virtual_channels: int = 2,
        **kwargs,
    ) -> "SoftwareBasedRouting":
        """The deterministic flavour (e-cube when fault free)."""
        return cls(topology, faults, num_virtual_channels, mode=DETERMINISTIC_MODE, **kwargs)

    @classmethod
    def adaptive(
        cls,
        topology: Topology,
        faults: Optional[FaultSet] = None,
        num_virtual_channels: int = 3,
        **kwargs,
    ) -> "SoftwareBasedRouting":
        """The adaptive flavour (Duato's Protocol when fault free)."""
        return cls(topology, faults, num_virtual_channels, mode=ADAPTIVE_MODE, **kwargs)

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    @property
    def mode(self) -> str:
        """``"deterministic"`` or ``"adaptive"``."""
        return self._mode

    @property
    def uses_adaptive_channels(self) -> bool:
        return self._mode == ADAPTIVE_MODE

    @property
    def is_fault_tolerant(self) -> bool:
        return True

    @property
    def tables(self) -> ReroutingTables:
        """The re-routing tables used by the software layer."""
        return self._tables

    @property
    def rerouter(self) -> PlanarRerouter:
        """The planar re-routing policy (exposed for tests and analysis)."""
        return self._rerouter

    @property
    def valve_period(self) -> int:
        """Deprecated: the configured (but ignored) valve period.

        Kept for API compatibility; the valve reset it used to control was
        replaced by the route-progress invariant (see the class docstring).
        """
        return self._valve_period

    @property
    def trace_rerouting(self) -> bool:
        """True when messages carry a per-message rerouting trace buffer."""
        return self._trace_rerouting

    @property
    def trace_depth(self) -> int:
        """Capacity of the per-message rerouting trace ring buffer."""
        return self._trace_depth

    def rerouting_stats(self) -> Dict[str, int]:
        """Aggregate rewrite/escape counters from the planar rerouter."""
        return self._rerouter.stats

    # ------------------------------------------------------------------ #
    # the routing function (network side)
    # ------------------------------------------------------------------ #
    def initial_header(self, source: int, destination: int) -> RoutingHeader:
        mode = ADAPTIVE_MODE if self._mode == ADAPTIVE_MODE else DETERMINISTIC_MODE
        header = RoutingHeader(
            final_destination=destination,
            target=destination,
            routing_mode=mode,
        )
        if self._trace_rerouting:
            header.trace = deque(maxlen=self._trace_depth)
        return header

    def route(self, node: int, header: RoutingHeader) -> RoutingDecision:
        return self._inner.route(node, header)

    # ------------------------------------------------------------------ #
    # the software side (messaging layer callbacks)
    # ------------------------------------------------------------------ #
    def rewrite_after_absorption(self, node: int, header: RoutingHeader) -> ReroutingAction:
        """Software re-routing of a message absorbed at ``node`` because of a fault.

        Once a message encounters a fault it is routed deterministically for
        the rest of its journey (Fig. 2 of the paper), so the routing mode is
        downgraded here before the planar policy rewrites the header.  The
        planar rerouter itself enforces the route-progress invariant, so no
        periodic state reset happens here any more (the old valve could re-arm
        a cycling message's state and perpetuate the livelock it was meant to
        break).
        """
        header.routing_mode = DETERMINISTIC_MODE
        return self._rerouter.rewrite(node, header)

    def on_intermediate_target_reached(self, node: int, header: RoutingHeader) -> None:
        """A message reached an intermediate target: aim it at its destination again."""
        self._rerouter.resume(header, node)

    # ------------------------------------------------------------------ #
    # the paper's dimension-pair structure (for analysis and tests)
    # ------------------------------------------------------------------ #
    def active_pair(self, node: int, header: RoutingHeader) -> Optional[Tuple[int, int]]:
        """The dimension pair ``(i, partner)`` the message is currently working in.

        ``i`` is the lowest dimension whose offset towards the current target
        is non-zero; the partner follows the SW-Based-nD pairing.  Returns
        ``None`` when the message has reached its target.
        """
        for dim in range(self._topology.dimensions):
            if self.remaining_offset(node, header, dim) != 0:
                return dim, partner_dimension(dim, self._topology.dimensions)
        return None


class SWBased2DRouting(SoftwareBasedRouting):
    """Convenience wrapper for the original 2-D algorithm of Suh et al.

    ``SW-Based-2D`` is exactly ``SW-Based-nD`` instantiated on a 2-dimensional
    torus; this subclass simply enforces the dimensionality so that tests and
    examples reproducing the original algorithm cannot accidentally use a
    higher-dimensional network.
    """

    def __init__(
        self,
        topology: Topology,
        faults: Optional[FaultSet] = None,
        num_virtual_channels: int = 2,
        mode: str = DETERMINISTIC_MODE,
        **kwargs,
    ) -> None:
        if topology.dimensions != 2:
            raise ConfigurationError(
                f"SW-Based-2D requires a 2-dimensional network, got {topology.dimensions}-D"
            )
        super().__init__(topology, faults, num_virtual_channels, mode=mode, **kwargs)
        self.name = f"swbased2d-{mode}"
