"""Exception hierarchy shared across the library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "RoutingError",
    "DeadlockError",
    "LivelockError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigurationError(ReproError):
    """An invalid simulation or experiment configuration was supplied."""


class RoutingError(ReproError):
    """A routing function reached a state it cannot handle.

    Typical causes: a message targeted at a faulty node, or a node whose every
    outgoing channel is faulty (which contradicts the connectivity assumption
    (h) of the paper).
    """


class DeadlockError(ReproError):
    """The simulation made no progress for longer than the watchdog interval.

    With the deadlock-free algorithms implemented here this indicates a bug
    (or an intentionally mis-configured experiment); the error message reports
    the cycle and the number of in-flight messages to aid debugging.
    """


class LivelockError(ReproError):
    """A message exceeded the configured bound on fault-induced absorptions.

    When rerouting tracing is enabled the offending message's per-rewrite
    trace is embedded in the exception text and exposed as :attr:`trace`
    (a tuple of :class:`~repro.routing.trace.ReroutingTraceEntry`).
    """

    def __init__(self, *args: object, trace: tuple = ()) -> None:
        super().__init__(*args)
        self.trace = tuple(trace)


class SimulationError(ReproError):
    """Generic failure inside the simulation engine."""
