"""The unified execution context: one precedence implementation for every knob.

Every entry point into the simulator — the figure ``run()`` functions, the
CLI subcommands, the campaign runner and the serve daemon — needs the same
four decisions made: how many worker processes, how many replications, which
result backend (if any), and what experiment scale.  Historically each of
them re-implemented the argument-vs-environment precedence
(``experiments/common.py``, ``cli.py`` and ``campaign/runner.py`` each had a
copy); :class:`ExecutionContext` is the one place those rules live now.

The documented precedence, applied knob by knob::

    explicit argument  >  manifest-recorded value  >  environment  >  default

* ``jobs``: the ``jobs=`` argument, then ``REPRO_JOBS``, then 1 (serial —
  plain test runs never fork).
* ``backend``: the ``backend=`` URI argument, then the ``cache_dir=``
  argument (shorthand for ``dir://<cache_dir>``), then the URI recorded in a
  campaign manifest at plan time, then ``REPRO_BACKEND``, then
  ``REPRO_CACHE_DIR`` (same ``dir://`` shorthand), then the caller's
  default.  Campaign resolution passes ``cache_dir_env=False``: a cache
  *directory* in the environment must not silently redirect a campaign away
  from its manifest-adjacent store.
* ``scale``: the ``scale=`` argument, then ``REPRO_SCALE`` (a factor applied
  to the default scale), then the default scale.
* a pre-built ``executor=`` overrides everything: the campaign subsystem
  uses it to thread planning, store-backed and sharded executors through the
  unmodified experiment code.

``experiments.common.get_scale`` / ``get_jobs`` / ``get_backend_uri`` /
``resolve_executor`` remain as thin shims over these helpers, so no caller
breaks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.experiments.common import ExperimentScale
    from repro.sim.parallel import SweepExecutor

__all__ = [
    "ENV_BACKEND",
    "ENV_CACHE_DIR",
    "ENV_JOBS",
    "ENV_SCALE",
    "ExecutionContext",
    "resolve_backend_uri",
    "resolve_jobs",
    "resolve_scale",
]

#: Environment knobs this module owns the interpretation of.
ENV_JOBS = "REPRO_JOBS"
ENV_BACKEND = "REPRO_BACKEND"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_SCALE = "REPRO_SCALE"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-process count: the argument, then ``REPRO_JOBS``, then 1.

    Validated here (same contract and message as ``SweepExecutor``) so
    resolving a context rejects a bad count eagerly — even for entry points,
    like the non-simulating Fig. 1, that never build the executor.
    """
    if jobs is None:
        env = os.environ.get(ENV_JOBS)
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError as exc:
            raise ConfigurationError(f"invalid {ENV_JOBS} value {env!r}") from exc
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ConfigurationError(
            f"jobs must be a positive integer (got {jobs!r}); "
            "use jobs=1 for serial execution"
        )
    return jobs


def resolve_backend_uri(
    backend: Optional[str] = None,
    cache_dir: Optional[str] = None,
    manifest: Optional[str] = None,
    default: Optional[str] = None,
    cache_dir_env: bool = True,
) -> Optional[str]:
    """Result-backend URI by the documented precedence.

    ``manifest`` is a URI recorded at plan time (campaign manifests pin
    their store the way they pin their scale); ``default`` is the caller's
    fallback (the campaign directory's own ``dir://`` store, or ``None`` for
    uncached experiment runs).  ``cache_dir_env=False`` drops the
    ``REPRO_CACHE_DIR`` rung — campaigns honour an explicit backend wherever
    it comes from, but a cache *directory* in the environment must not
    silently redirect one away from its recorded store.
    """
    if backend:
        return backend
    if cache_dir:
        return f"dir://{cache_dir}"
    if manifest:
        return manifest
    env = os.environ.get(ENV_BACKEND)
    if env:
        return env
    if cache_dir_env:
        env = os.environ.get(ENV_CACHE_DIR)
        if env:
            return f"dir://{env}"
    return default


def resolve_scale(scale: Optional["ExperimentScale"] = None) -> "ExperimentScale":
    """Experiment scale: the argument, then ``REPRO_SCALE``, then the default."""
    if scale is not None:
        return scale
    # Imported lazily: the experiments package pulls in every figure module,
    # and those import this module back — at call time both are complete.
    from repro.experiments.common import DEFAULT_SCALE

    factor = os.environ.get(ENV_SCALE)
    if factor:
        try:
            return DEFAULT_SCALE.scaled(float(factor))
        except ValueError as exc:
            raise ValueError(f"invalid {ENV_SCALE} value {factor!r}") from exc
    return DEFAULT_SCALE


@dataclass(frozen=True)
class ExecutionContext:
    """Fully-resolved execution knobs, shared by every entry point.

    Build one with :meth:`resolve` (which applies the documented
    argument/manifest/environment precedence once) and pass it to the figure
    ``run(context=...)`` functions, the campaign runner or the serve daemon;
    :meth:`make_executor` turns it into the
    :class:`~repro.sim.parallel.SweepExecutor` the run executes on.
    """

    jobs: int = 1
    replications: int = 1
    #: Result-backend URI backing the run, or ``None`` for no shared store.
    backend: Optional[str] = None
    #: Resolved experiment scale; ``None`` only on hand-built contexts
    #: (:attr:`resolved_scale` falls back to the default).
    scale: Optional["ExperimentScale"] = None
    #: A pre-built executor that overrides everything else.
    executor: Optional["SweepExecutor"] = None

    @classmethod
    def resolve(
        cls,
        executor: Optional["SweepExecutor"] = None,
        jobs: Optional[int] = None,
        replications: Optional[int] = None,
        backend: Optional[str] = None,
        cache_dir: Optional[str] = None,
        scale: Optional["ExperimentScale"] = None,
        manifest_backend: Optional[str] = None,
        default_backend: Optional[str] = None,
        cache_dir_env: bool = True,
    ) -> "ExecutionContext":
        """Apply the documented precedence once and freeze the result."""
        return cls(
            jobs=resolve_jobs(jobs),
            replications=replications if replications is not None else 1,
            backend=resolve_backend_uri(
                backend,
                cache_dir,
                manifest=manifest_backend,
                default=default_backend,
                cache_dir_env=cache_dir_env,
            ),
            scale=resolve_scale(scale),
            executor=executor,
        )

    @property
    def resolved_scale(self) -> "ExperimentScale":
        """The scale to run at (the default when none was resolved in)."""
        if self.scale is not None:
            return self.scale
        from repro.experiments.common import DEFAULT_SCALE

        return DEFAULT_SCALE

    def make_executor(self) -> "SweepExecutor":
        """The executor this context describes (a pre-built one wins)."""
        if self.executor is not None:
            return self.executor
        from repro.sim.parallel import SweepExecutor

        cache = None
        if self.backend:
            # Imported lazily: the backend registry is storage-layer
            # machinery most experiment runs never touch.
            from repro.backends.registry import open_backend

            cache = open_backend(self.backend)
        return SweepExecutor(
            jobs=self.jobs, replications=self.replications, cache=cache
        )
