"""Experiment harness: one module per figure of the paper.

Every module exposes

* ``PANELS`` / ``SERIES`` — the parameter combinations the paper plots,
* ``run(...)`` — regenerate the figure's data (scaled down by default, see
  :mod:`repro.experiments.common`), and
* ``summarize(...)`` — an ASCII rendering of the regenerated series.

The benchmark suite under ``benchmarks/`` simply calls these ``run`` functions
so that the same code path serves interactive use, tests and benchmarking.
"""

from repro.experiments import fig1_regions, fig3_latency_2d, fig4_latency_3d
from repro.experiments import fig5_fault_regions, fig6_throughput, fig7_messages_queued
from repro.experiments.common import ExperimentScale, get_scale

#: Registry mapping experiment ids to their module.
EXPERIMENTS = {
    "fig1": fig1_regions,
    "fig3": fig3_latency_2d,
    "fig4": fig4_latency_3d,
    "fig5": fig5_fault_regions,
    "fig6": fig6_throughput,
    "fig7": fig7_messages_queued,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentScale",
    "get_scale",
    "fig1_regions",
    "fig3_latency_2d",
    "fig4_latency_3d",
    "fig5_fault_regions",
    "fig6_throughput",
    "fig7_messages_queued",
]
