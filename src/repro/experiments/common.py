"""Shared scaffolding for the figure-reproduction experiments.

The paper derives 100,000 messages per configuration (statistics inhibited for
the first 10,000) on a compiled simulator.  A pure-Python flit-level simulator
cannot afford that for every point of every panel, so the harness runs a
scaled-down version by default and exposes one knob to scale back up:

* the environment variable ``REPRO_SCALE`` multiplies the number of measured
  and warm-up messages as well as the number of sweep points (``REPRO_SCALE=25``
  approaches the paper's message counts);
* every ``run()`` function also accepts an explicit
  :class:`ExperimentScale`, which takes precedence over the environment;
* the environment variable ``REPRO_JOBS`` (or the ``jobs=`` argument of each
  ``run()`` function, which takes precedence) fans the sweep points out over
  that many worker processes via
  :class:`repro.sim.parallel.SweepExecutor` — results are identical for any
  job count, only the wall-clock time changes;
* the environment variable ``REPRO_BACKEND`` (or the ``backend=`` argument,
  which takes precedence) backs every sweep with the result backend that URI
  names — ``dir://<path>``, ``sqlite://<path>``, ``obj://<path>``,
  ``s3://<bucket>/<prefix>`` or ``mem://`` — so repeated
  ``python -m repro experiment`` invocations — and the sweep points shared
  between figures — reuse already-simulated points across processes;
  ``REPRO_CACHE_DIR`` / ``cache_dir=`` remain as shorthand for the
  ``dir://`` backend at that path;
* every ``run()`` also accepts a pre-built ``executor=``, which overrides all
  of the above: the campaign subsystem uses this to thread recording,
  store-backed and sharded executors through the unmodified experiment code.

EXPERIMENTS.md records which scale was used for the committed results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import List, Optional

import numpy as np

from repro.execution import (
    ENV_CACHE_DIR,
    ExecutionContext,
    resolve_backend_uri,
    resolve_jobs,
    resolve_scale,
)
from repro.sim.parallel import SweepExecutor

__all__ = [
    "ExperimentScale",
    "get_scale",
    "get_jobs",
    "get_backend_uri",
    "get_cache_dir",
    "rate_grid",
    "resolve_executor",
    "DEFAULT_SCALE",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Size of one experiment run.

    Attributes
    ----------
    measure_messages:
        Messages measured per simulated point (the paper uses 90,000).
    warmup_messages:
        Messages excluded from statistics (the paper uses 10,000).
    rate_points:
        Number of injection-rate points per latency curve.
    fault_trials:
        Independent random fault sets per fault count (Figs. 6 and 7).
    max_cycles:
        Cap on simulated cycles per point.
    """

    measure_messages: int = 400
    warmup_messages: int = 60
    rate_points: int = 5
    fault_trials: int = 1
    max_cycles: int = 150_000

    def scaled(self, factor: float) -> "ExperimentScale":
        """This scale with message counts and sweep resolution multiplied."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            measure_messages=max(50, int(round(self.measure_messages * factor))),
            warmup_messages=max(10, int(round(self.warmup_messages * factor))),
            rate_points=max(3, int(round(self.rate_points * min(factor, 3.0)))),
            fault_trials=max(1, int(round(self.fault_trials * min(factor, 5.0)))),
            max_cycles=int(self.max_cycles * max(1.0, factor)),
        )


#: The default (benchmark-friendly) scale.
DEFAULT_SCALE = ExperimentScale()


def get_scale(scale: Optional[ExperimentScale] = None) -> ExperimentScale:
    """Resolve the experiment scale from an argument or the environment.

    A shim over :func:`repro.execution.resolve_scale` — the single
    precedence implementation every entry point shares.
    """
    return resolve_scale(scale)


def get_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the sweep worker count from an argument or ``REPRO_JOBS``.

    A shim over :func:`repro.execution.resolve_jobs`.  Defaults to 1
    (serial) so that plain test runs never fork.  The resolved value is
    validated (``jobs >= 1``) by ``SweepExecutor``; to use every CPU pass
    :func:`repro.sim.parallel.default_jobs`.
    """
    return resolve_jobs(jobs)


def get_cache_dir(cache_dir: Optional[str] = None) -> Optional[str]:
    """Resolve the shared point-store directory from an argument or the env.

    Returns ``cache_dir`` when given, else the ``REPRO_CACHE_DIR``
    environment variable, else ``None`` (no disk-backed cache).
    """
    if cache_dir is not None:
        return cache_dir
    return os.environ.get(ENV_CACHE_DIR) or None


def get_backend_uri(
    backend: Optional[str] = None, cache_dir: Optional[str] = None
) -> Optional[str]:
    """Resolve the result-backend URI from arguments or the environment.

    A shim over :func:`repro.execution.resolve_backend_uri`.  Precedence
    (arguments beat the environment, and the explicit backend beats the
    directory shorthand at each level): the ``backend`` URI argument, then
    the ``cache_dir`` argument (shorthand for ``dir://<cache_dir>``), then
    ``REPRO_BACKEND``, then ``REPRO_CACHE_DIR`` (same shorthand), else
    ``None`` — no shared backend.
    """
    return resolve_backend_uri(backend, cache_dir)


def resolve_executor(
    executor: Optional[SweepExecutor] = None,
    jobs: Optional[int] = None,
    replications: int = 1,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> SweepExecutor:
    """The sweep executor an experiment (or the CLI) should run on.

    A shim over :meth:`repro.execution.ExecutionContext.resolve` +
    :meth:`~repro.execution.ExecutionContext.make_executor`.  A pre-built
    ``executor`` wins outright — that is how the campaign subsystem
    substitutes planning, store-backed and sharded executors.  Otherwise one
    is built from ``jobs``/``replications`` (with the usual ``REPRO_JOBS``
    fallback), backed by the result backend whose URI is resolved from
    ``backend`` / ``cache_dir`` / ``REPRO_BACKEND`` / ``REPRO_CACHE_DIR``.
    """
    context = ExecutionContext.resolve(
        executor=executor,
        jobs=jobs,
        replications=replications,
        cache_dir=cache_dir,
        backend=backend,
        # The figure run() signatures resolve their scale separately; skip
        # the env read here so a malformed REPRO_SCALE cannot fail a caller
        # that never uses the scale.
        scale=DEFAULT_SCALE,
    )
    return context.make_executor()


def rate_grid(max_rate: float, points: int, min_rate: Optional[float] = None) -> List[float]:
    """Evenly spaced injection rates, mirroring the paper's x axes.

    The paper's curves start near zero load and end just past saturation; the
    grid therefore runs from ``max_rate / points`` (or ``min_rate``) to
    ``max_rate`` inclusive.
    """
    if max_rate <= 0:
        raise ValueError("max_rate must be positive")
    if points < 2:
        raise ValueError("need at least two points")
    lo = min_rate if min_rate is not None else max_rate / points
    return [float(r) for r in np.linspace(lo, max_rate, points)]
