"""Fig. 1 — examples of coalesced fault regions in a 2-D torus.

The original figure is a schematic; the reproduction builds each of the shapes
it names (``|``, ``||``, rectangular, L, U, T, +, H) as an actual
:class:`~repro.faults.regions.FaultRegion` on an 8-ary 2-cube and renders them
as ASCII grids.  The same regions are reused (with the paper's exact fault
counts) by the Fig. 5 experiment.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.plotting import render_fault_region
from repro.faults.regions import FaultRegion, make_fault_region
from repro.topology.torus import TorusTopology

__all__ = ["SHAPES", "build_regions", "run", "summarize"]

#: Shape name -> builder keyword arguments used for the illustration.
SHAPES = {
    "column": {"length": 3},
    "double-column": {"length": 3, "gap": 1},
    "rect": {"width": 3, "height": 2},
    "L": {"vertical": 4, "horizontal": 4},
    "U": {"width": 4, "height": 3},
    "T": {"top": 5, "stem": 3},
    "plus": {"horizontal": 5, "vertical": 5},
    "H": {"height": 5, "span": 2},
}


def build_regions(radix: int = 8) -> Dict[str, FaultRegion]:
    """One embedded region per shape of Fig. 1, on a ``radix``-ary 2-cube."""
    topology = TorusTopology(radix=radix, dimensions=2)
    return {
        name: make_fault_region(topology, name, **kwargs) for name, kwargs in SHAPES.items()
    }


def run(
    radix: int = 8,
    jobs: Optional[int] = None,
    replications: int = 1,
    executor: Optional[object] = None,
    cache_dir: Optional[str] = None,
    context: Optional[object] = None,
) -> Dict[str, Dict[str, object]]:
    """Regenerate the Fig. 1 data: each region's nodes, size and convexity.

    The executor-selection arguments (including an
    :class:`~repro.execution.ExecutionContext`) are accepted for CLI
    uniformity with the other experiments and ignored: Fig. 1 builds
    regions without simulating.
    """
    topology = TorusTopology(radix=radix, dimensions=2)
    regions = build_regions(radix)
    out: Dict[str, Dict[str, object]] = {}
    for name, region in regions.items():
        out[name] = {
            "shape": name,
            "num_faults": region.num_faults,
            "convex": region.convex,
            "nodes": sorted(region.nodes),
            "rendering": render_fault_region(topology, region),
        }
    return out


def summarize(results: Optional[Dict[str, Dict[str, object]]] = None) -> str:
    """ASCII rendering of every region, convex shapes first (as in Fig. 1)."""
    if results is None:
        results = run()
    parts = []
    for name, info in sorted(results.items(), key=lambda kv: (not kv[1]["convex"], kv[0])):
        kind = "convex" if info["convex"] else "concave"
        parts.append(f"{name}-shaped region ({kind}, {info['num_faults']} faulty nodes):")
        parts.append(str(info["rendering"]))
        parts.append("")
    return "\n".join(parts)
