"""Fig. 3 — mean message latency vs traffic rate in an 8-ary 2-cube.

The paper's Fig. 3 has six panels: deterministic and adaptive Software-Based
routing with V = 4, 6 and 10 virtual channels per physical channel.  Each
panel contains six curves: message lengths M = 32 and 64 flits combined with
n_f = 0, 3 and 5 random faulty nodes.  The reproduction regenerates any subset
of those curves; the defaults pick the V = 4 panels with M = 32, which is
enough to exhibit every trend the paper reports (latency grows with n_f and
with M, the network saturates earlier with more faults, adaptive routing
saturates later than deterministic routing).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.analysis.tables import series_table
from repro.execution import ExecutionContext
from repro.experiments.common import ExperimentScale, rate_grid
from repro.faults.injection import random_node_faults
from repro.faults.model import FaultSet
from repro.sim.config import SimulationConfig
from repro.sim.parallel import ReplicatedSweepResult, SweepExecutor
from repro.sim.sweep import LoadSweepResult, injection_rate_sweep
from repro.topology.torus import TorusTopology

__all__ = ["PANEL_MAX_RATES", "PAPER_SERIES", "run", "summarize"]

#: run() returns plain sweeps at replications=1, replicated (mean ± CI)
#: sweeps otherwise; both satisfy the series duck-type used by summarize().
SweepOutput = Union[LoadSweepResult, ReplicatedSweepResult]

#: Largest injection rate plotted by the paper for each (routing, V) panel.
PANEL_MAX_RATES = {
    ("swbased-deterministic", 4): 0.014,
    ("swbased-deterministic", 6): 0.016,
    ("swbased-deterministic", 10): 0.020,
    ("swbased-adaptive", 4): 0.018,
    ("swbased-adaptive", 6): 0.021,
    ("swbased-adaptive", 10): 0.024,
}

#: The full set of curves shown in the paper's Fig. 3.
PAPER_SERIES = {
    "routings": ("swbased-deterministic", "swbased-adaptive"),
    "virtual_channels": (4, 6, 10),
    "message_lengths": (32, 64),
    "fault_counts": (0, 3, 5),
}

#: Radix/dimensionality of the figure's network (the 8-ary 2-cube).
RADIX = 8
DIMENSIONS = 2


def _series_label(routing: str, vcs: int, length: int, faults: int) -> str:
    kind = "det" if routing.endswith("deterministic") else "adpt"
    return f"{kind} V={vcs} M={length} nf={faults}"


def run(
    scale: Optional[ExperimentScale] = None,
    routings: Sequence[str] = ("swbased-deterministic", "swbased-adaptive"),
    virtual_channels: Sequence[int] = (4,),
    message_lengths: Sequence[int] = (32,),
    fault_counts: Sequence[int] = (0, 3, 5),
    seed: int = 2006,
    jobs: Optional[int] = None,
    replications: int = 1,
    executor: Optional[SweepExecutor] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> Dict[str, SweepOutput]:
    """Regenerate (a subset of) the Fig. 3 latency curves.

    Returns a mapping from series label to the measured
    :class:`~repro.sim.sweep.LoadSweepResult` (a
    :class:`~repro.sim.parallel.ReplicatedSweepResult` when
    ``replications > 1``).  Deterministic and adaptive runs with the same
    fault count share the same random fault set so the two flavours are
    compared on identical failure patterns.  ``jobs`` (default: the
    ``REPRO_JOBS`` environment variable, else serial) fans each sweep out
    over worker processes without changing any result.  One executor —
    given through ``executor`` or built from ``jobs``/``replications``/
    ``backend`` (``REPRO_BACKEND``) / ``cache_dir`` (``REPRO_CACHE_DIR``) —
    is shared by every series, so a configured result backend serves all of
    them.
    """
    if context is None:
        context = ExecutionContext.resolve(
            executor=executor,
            jobs=jobs,
            replications=replications,
            cache_dir=cache_dir,
            backend=backend,
            scale=scale,
        )
    scale = context.resolved_scale
    executor = context.make_executor()
    topology = TorusTopology(radix=RADIX, dimensions=DIMENSIONS)
    fault_sets: Dict[int, FaultSet] = {}
    for count in fault_counts:
        if count == 0:
            fault_sets[count] = FaultSet.empty()
        else:
            fault_sets[count] = random_node_faults(topology, count, rng=seed + count)

    results: Dict[str, SweepOutput] = {}
    for routing in routings:
        for vcs in virtual_channels:
            max_rate = PANEL_MAX_RATES[(routing, vcs)]
            rates = rate_grid(max_rate, scale.rate_points)
            for length in message_lengths:
                for count in fault_counts:
                    label = _series_label(routing, vcs, length, count)
                    config = SimulationConfig(
                        topology=topology,
                        routing=routing,
                        num_virtual_channels=vcs,
                        message_length=length,
                        faults=fault_sets[count],
                        warmup_messages=scale.warmup_messages,
                        measure_messages=scale.measure_messages,
                        max_cycles=scale.max_cycles,
                        seed=seed,
                        metadata={"figure": "fig3", "series": label},
                    )
                    results[label] = injection_rate_sweep(
                        config, rates, label=label, executor=executor
                    )
    return results


def summarize(results: Optional[Dict[str, SweepOutput]] = None) -> str:
    """Latency-vs-rate table for the regenerated curves (one column per series)."""
    if results is None:
        results = run()
    return series_table(list(results.values()), metric="latency")
