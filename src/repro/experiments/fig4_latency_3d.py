"""Fig. 4 — mean message latency vs traffic rate in an 8-ary 3-cube.

Same structure as Fig. 3 but on the three-dimensional 8-ary 3-cube (512
nodes) with n_f = 0 and 12 random faulty nodes.  This is the experiment that
exercises the n-dimensional extension proper: fault handling operates on
dimension pairs exactly as Fig. 2 of the paper prescribes.

The default subset runs the V = 4, M = 32 panels for both routing flavours;
the full parameter space of the paper (V ∈ {4, 6, 10}, M ∈ {32, 64}) is
available through the function arguments.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.tables import series_table
from repro.execution import ExecutionContext
from repro.experiments.common import ExperimentScale, rate_grid
from repro.faults.injection import random_node_faults
from repro.faults.model import FaultSet
from repro.sim.config import SimulationConfig
from repro.experiments.fig3_latency_2d import SweepOutput
from repro.sim.parallel import SweepExecutor
from repro.sim.sweep import injection_rate_sweep
from repro.topology.torus import TorusTopology

__all__ = ["PANEL_MAX_RATES", "PAPER_SERIES", "run", "summarize"]

#: Largest injection rate plotted by the paper for each (routing, V) panel.
PANEL_MAX_RATES = {
    ("swbased-deterministic", 4): 0.014,
    ("swbased-deterministic", 6): 0.018,
    ("swbased-deterministic", 10): 0.021,
    ("swbased-adaptive", 4): 0.014,
    ("swbased-adaptive", 6): 0.020,
    ("swbased-adaptive", 10): 0.021,
}

#: The full set of curves shown in the paper's Fig. 4.
PAPER_SERIES = {
    "routings": ("swbased-deterministic", "swbased-adaptive"),
    "virtual_channels": (4, 6, 10),
    "message_lengths": (32, 64),
    "fault_counts": (0, 12),
}

RADIX = 8
DIMENSIONS = 3


def _series_label(routing: str, vcs: int, length: int, faults: int) -> str:
    kind = "det" if routing.endswith("deterministic") else "adpt"
    return f"{kind} V={vcs} M={length} nf={faults}"


def run(
    scale: Optional[ExperimentScale] = None,
    routings: Sequence[str] = ("swbased-deterministic", "swbased-adaptive"),
    virtual_channels: Sequence[int] = (4,),
    message_lengths: Sequence[int] = (32,),
    fault_counts: Sequence[int] = (0, 12),
    seed: int = 2006,
    jobs: Optional[int] = None,
    replications: int = 1,
    executor: Optional[SweepExecutor] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> Dict[str, SweepOutput]:
    """Regenerate (a subset of) the Fig. 4 latency curves on the 8-ary 3-cube.

    ``jobs``/``replications``/``executor``/``cache_dir`` select the (shared)
    sweep executor; see :func:`repro.experiments.fig3_latency_2d.run`.
    """
    if context is None:
        context = ExecutionContext.resolve(
            executor=executor,
            jobs=jobs,
            replications=replications,
            cache_dir=cache_dir,
            backend=backend,
            scale=scale,
        )
    scale = context.resolved_scale
    executor = context.make_executor()
    topology = TorusTopology(radix=RADIX, dimensions=DIMENSIONS)
    fault_sets: Dict[int, FaultSet] = {}
    for count in fault_counts:
        if count == 0:
            fault_sets[count] = FaultSet.empty()
        else:
            fault_sets[count] = random_node_faults(topology, count, rng=seed + count)

    results: Dict[str, SweepOutput] = {}
    for routing in routings:
        for vcs in virtual_channels:
            max_rate = PANEL_MAX_RATES[(routing, vcs)]
            rates = rate_grid(max_rate, scale.rate_points)
            for length in message_lengths:
                for count in fault_counts:
                    label = _series_label(routing, vcs, length, count)
                    config = SimulationConfig(
                        topology=topology,
                        routing=routing,
                        num_virtual_channels=vcs,
                        message_length=length,
                        faults=fault_sets[count],
                        warmup_messages=scale.warmup_messages,
                        measure_messages=scale.measure_messages,
                        max_cycles=scale.max_cycles,
                        seed=seed,
                        metadata={"figure": "fig4", "series": label},
                    )
                    results[label] = injection_rate_sweep(
                        config, rates, label=label, executor=executor
                    )
    return results


def summarize(results: Optional[Dict[str, SweepOutput]] = None) -> str:
    """Latency-vs-rate table for the regenerated curves."""
    if results is None:
        results = run()
    return series_table(list(results.values()), metric="latency")
