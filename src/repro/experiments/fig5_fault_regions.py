"""Fig. 5 — latency vs traffic rate for convex and concave fault regions.

The paper compares deterministic and adaptive Software-Based routing in an
8-ary 2-cube (M = 32, V = 10) under five coalesced fault regions: a
rectangular block of 20 faults, a T-shaped region of 10, a +-shaped region of
16, an L-shaped region of 9 and a U-shaped region of 8 faults.  The headline
observations are that concave regions cost more latency than convex ones
(despite containing fewer faults) and that adaptive routing stays well below
deterministic routing throughout.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.tables import series_table
from repro.execution import ExecutionContext
from repro.experiments.common import ExperimentScale, rate_grid
from repro.faults.regions import paper_fig5_regions
from repro.sim.config import SimulationConfig
from repro.experiments.fig3_latency_2d import SweepOutput
from repro.sim.parallel import SweepExecutor
from repro.sim.sweep import injection_rate_sweep
from repro.topology.torus import TorusTopology

__all__ = ["REGION_LABELS", "run", "summarize"]

#: Region label -> paper fault count, for reference and testing.
REGION_LABELS = {"rect": 20, "T": 10, "plus": 16, "L": 9, "U": 8}

RADIX = 8
DIMENSIONS = 2
MESSAGE_LENGTH = 32
VIRTUAL_CHANNELS = 10
MAX_RATE = 0.02


def run(
    scale: Optional[ExperimentScale] = None,
    routings: Sequence[str] = ("swbased-deterministic", "swbased-adaptive"),
    regions: Sequence[str] = ("rect", "T", "plus", "L", "U"),
    virtual_channels: int = VIRTUAL_CHANNELS,
    message_length: int = MESSAGE_LENGTH,
    seed: int = 2006,
    jobs: Optional[int] = None,
    replications: int = 1,
    executor: Optional[SweepExecutor] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> Dict[str, SweepOutput]:
    """Regenerate (a subset of) the Fig. 5 latency curves.

    ``jobs``/``replications``/``executor``/``cache_dir`` select the (shared)
    sweep executor; see :func:`repro.experiments.fig3_latency_2d.run`.
    """
    if context is None:
        context = ExecutionContext.resolve(
            executor=executor,
            jobs=jobs,
            replications=replications,
            cache_dir=cache_dir,
            backend=backend,
            scale=scale,
        )
    scale = context.resolved_scale
    executor = context.make_executor()
    topology = TorusTopology(radix=RADIX, dimensions=DIMENSIONS)
    all_regions = paper_fig5_regions(topology)
    unknown = set(regions) - set(all_regions)
    if unknown:
        raise ValueError(f"unknown Fig. 5 region labels: {sorted(unknown)}")
    rates = rate_grid(MAX_RATE, scale.rate_points)

    results: Dict[str, SweepOutput] = {}
    for routing in routings:
        kind = "det" if routing.endswith("deterministic") else "adpt"
        for label in regions:
            region = all_regions[label]
            series = f"{kind} {label} nf={region.num_faults}"
            config = SimulationConfig(
                topology=topology,
                routing=routing,
                num_virtual_channels=virtual_channels,
                message_length=message_length,
                faults=region.to_fault_set(),
                warmup_messages=scale.warmup_messages,
                measure_messages=scale.measure_messages,
                max_cycles=scale.max_cycles,
                seed=seed,
                metadata={"figure": "fig5", "series": series, "region": label},
            )
            results[series] = injection_rate_sweep(
                config, rates, label=series, executor=executor
            )
    return results


def summarize(results: Optional[Dict[str, SweepOutput]] = None) -> str:
    """Latency-vs-rate table for the regenerated curves."""
    if results is None:
        results = run()
    return series_table(list(results.values()), metric="latency")
