"""Fig. 6 — throughput vs number of random faulty nodes in a 16-ary 2-cube.

The paper measures the network throughput (messages delivered per node per
cycle) of deterministic and adaptive Software-Based routing for 0-11 random
faulty nodes in a 16-ary 2-cube with M = 32 flits and V = 6 virtual channels,
averaging over several randomly selected fault sets per count.  Its two
observations are: throughput is not seriously affected by the number of
failures, and adaptive routing sustains a higher throughput than deterministic
routing (which pays the software re-injection overhead more often).
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.execution import ExecutionContext
from repro.experiments.common import ExperimentScale
from repro.sim.config import SimulationConfig
from repro.sim.parallel import SweepExecutor
from repro.sim.runner import SimulationResult
from repro.sim.sweep import fault_count_sweep
from repro.topology.torus import TorusTopology

__all__ = ["run", "summarize", "DEFAULT_FAULT_COUNTS"]

RADIX = 16
DIMENSIONS = 2
MESSAGE_LENGTH = 32
VIRTUAL_CHANNELS = 6
#: Offered load at which throughput is measured (messages/node/cycle).  The
#: paper reports the throughput *achieved* under heavy load, i.e. the accepted
#: rate at saturation; 0.012 lies above the saturation load of the fault-free
#: 16-ary 2-cube for M=32, V=6, so the measured value is the accepted
#: (saturation) throughput, as in the paper's Fig. 6.
MEASUREMENT_RATE = 0.012
#: Fault counts of the paper's x axis (0 .. 11); the default subset keeps the
#: benchmark affordable while spanning the full range.  Pass
#: ``fault_counts=range(12)`` to reproduce every point of the paper.
DEFAULT_FAULT_COUNTS = (0, 4, 8)


def run(
    scale: Optional[ExperimentScale] = None,
    routings: Sequence[str] = ("swbased-deterministic", "swbased-adaptive"),
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    injection_rate: float = MEASUREMENT_RATE,
    seed: int = 2006,
    jobs: Optional[int] = None,
    replications: int = 1,
    executor: Optional[SweepExecutor] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> Dict[str, List[SimulationResult]]:
    """Regenerate the Fig. 6 throughput-vs-faults series.

    ``jobs``/``replications``/``executor``/``cache_dir`` select the (shared)
    sweep executor; the averaging helpers below fold extra replications into
    the per-count means.
    """
    if context is None:
        context = ExecutionContext.resolve(
            executor=executor,
            jobs=jobs,
            replications=replications,
            cache_dir=cache_dir,
            backend=backend,
            scale=scale,
        )
    scale = context.resolved_scale
    executor = context.make_executor()
    topology = TorusTopology(radix=RADIX, dimensions=DIMENSIONS)
    results: Dict[str, List[SimulationResult]] = {}
    for routing in routings:
        config = SimulationConfig(
            topology=topology,
            routing=routing,
            num_virtual_channels=VIRTUAL_CHANNELS,
            message_length=MESSAGE_LENGTH,
            injection_rate=injection_rate,
            warmup_messages=scale.warmup_messages,
            measure_messages=scale.measure_messages,
            max_cycles=scale.max_cycles,
            seed=seed,
            metadata={"figure": "fig6", "routing": routing},
        )
        results[routing] = fault_count_sweep(
            config,
            fault_counts,
            trials_per_count=scale.fault_trials,
            seed=seed,
            executor=executor,
        )
    return results


def throughput_series(results: Dict[str, List[SimulationResult]]) -> Dict[str, Dict[int, float]]:
    """Average throughput per fault count for each routing flavour."""
    series: Dict[str, Dict[int, float]] = {}
    for routing, runs in results.items():
        per_count: Dict[int, List[float]] = {}
        for result in runs:
            count = int(result.config.metadata["fault_count"])
            per_count.setdefault(count, []).append(result.throughput)
        series[routing] = {count: mean(values) for count, values in sorted(per_count.items())}
    return series


def summarize(results: Optional[Dict[str, List[SimulationResult]]] = None) -> str:
    """Throughput-vs-fault-count table, one column per routing flavour."""
    if results is None:
        results = run()
    series = throughput_series(results)
    counts = sorted({c for per in series.values() for c in per})
    rows = []
    for count in counts:
        row: Dict[str, object] = {"faulty_nodes": count}
        for routing, per in series.items():
            if count in per:
                row[routing] = per[count]
        rows.append(row)
    return format_table(
        rows,
        columns=["faulty_nodes"] + list(series.keys()),
        title="throughput (messages/node/cycle) vs number of random faulty nodes",
    )
