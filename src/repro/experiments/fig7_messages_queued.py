"""Fig. 7 — number of messages queued (absorbed) vs number of faulty nodes.

The paper counts, in an 8-ary 3-cube with M = 32 and V = 10, how many messages
are delivered to the local queues of intermediate nodes (i.e. absorbed by the
software layer) as the number of random faulty nodes grows from 0 to 14, for
two traffic generation rates labelled "70" and "100".  A message contributes
once per absorption.  The findings: the count grows with the number of faults,
and it is much larger for deterministic than for adaptive routing (adaptive
messages are only absorbed when every profitable path is faulty).

The paper does not give units for the generation rates "70" and "100"; the
reproduction interprets them as a percentage of the configuration's saturation
load (see DESIGN.md, "Substitutions and scale").
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional, Sequence

from repro.analysis.saturation import theoretical_capacity
from repro.analysis.tables import format_table
from repro.execution import ExecutionContext
from repro.experiments.common import ExperimentScale
from repro.sim.config import SimulationConfig
from repro.sim.parallel import SweepExecutor
from repro.sim.runner import SimulationResult
from repro.sim.sweep import fault_count_sweep
from repro.topology.torus import TorusTopology

__all__ = ["run", "summarize", "DEFAULT_FAULT_COUNTS", "GENERATION_RATE_LABELS"]

RADIX = 8
DIMENSIONS = 3
MESSAGE_LENGTH = 32
VIRTUAL_CHANNELS = 10
#: The paper's two generation-rate labels, interpreted as a fraction of the
#: wormhole saturation load (taken as 45 % of the theoretical capacity).
GENERATION_RATE_LABELS = {"70": 0.70, "100": 1.00}
_SATURATION_FRACTION = 0.45
#: Fault counts of the paper's x axis (0 .. 14); the default subset keeps the
#: benchmark affordable while spanning the full range.  Pass
#: ``fault_counts=range(15)`` to reproduce every point of the paper.
DEFAULT_FAULT_COUNTS = (0, 6, 12)


def _injection_rate(label: str) -> float:
    topology = TorusTopology(radix=RADIX, dimensions=DIMENSIONS)
    capacity = theoretical_capacity(topology, MESSAGE_LENGTH)
    return capacity * _SATURATION_FRACTION * GENERATION_RATE_LABELS[label]


def run(
    scale: Optional[ExperimentScale] = None,
    routings: Sequence[str] = ("swbased-deterministic", "swbased-adaptive"),
    generation_rates: Sequence[str] = ("70", "100"),
    fault_counts: Sequence[int] = DEFAULT_FAULT_COUNTS,
    seed: int = 2006,
    jobs: Optional[int] = None,
    replications: int = 1,
    executor: Optional[SweepExecutor] = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> Dict[str, List[SimulationResult]]:
    """Regenerate the Fig. 7 messages-queued series.

    Returns a mapping from series label (e.g. ``"deterministic @100"``) to the
    list of per-fault-count simulation results.  ``jobs``/``replications``/
    ``executor``/``cache_dir`` select the (shared) sweep executor.
    """
    if context is None:
        context = ExecutionContext.resolve(
            executor=executor,
            jobs=jobs,
            replications=replications,
            cache_dir=cache_dir,
            backend=backend,
            scale=scale,
        )
    scale = context.resolved_scale
    executor = context.make_executor()
    topology = TorusTopology(radix=RADIX, dimensions=DIMENSIONS)
    results: Dict[str, List[SimulationResult]] = {}
    for routing in routings:
        kind = "deterministic" if routing.endswith("deterministic") else "adaptive"
        for rate_label in generation_rates:
            if rate_label not in GENERATION_RATE_LABELS:
                raise ValueError(f"unknown generation-rate label {rate_label!r}")
            series = f"{kind} @{rate_label}"
            config = SimulationConfig(
                topology=topology,
                routing=routing,
                num_virtual_channels=VIRTUAL_CHANNELS,
                message_length=MESSAGE_LENGTH,
                injection_rate=_injection_rate(rate_label),
                warmup_messages=scale.warmup_messages,
                measure_messages=scale.measure_messages,
                max_cycles=scale.max_cycles,
                seed=seed,
                metadata={"figure": "fig7", "series": series},
            )
            results[series] = fault_count_sweep(
                config,
                fault_counts,
                trials_per_count=scale.fault_trials,
                seed=seed,
                executor=executor,
            )
    return results


def queued_series(results: Dict[str, List[SimulationResult]]) -> Dict[str, Dict[int, float]]:
    """Average messages-queued count per fault count for each series."""
    out: Dict[str, Dict[int, float]] = {}
    for series, runs in results.items():
        per_count: Dict[int, List[int]] = {}
        for result in runs:
            count = int(result.config.metadata["fault_count"])
            per_count.setdefault(count, []).append(result.messages_queued)
        out[series] = {count: mean(values) for count, values in sorted(per_count.items())}
    return out


def summarize(results: Optional[Dict[str, List[SimulationResult]]] = None) -> str:
    """Messages-queued table, one column per (routing, generation-rate) series."""
    if results is None:
        results = run()
    series = queued_series(results)
    counts = sorted({c for per in series.values() for c in per})
    rows = []
    for count in counts:
        row: Dict[str, object] = {"faulty_nodes": count}
        for label, per in series.items():
            if count in per:
                row[label] = per[count]
        rows.append(row)
    return format_table(
        rows,
        columns=["faulty_nodes"] + list(series.keys()),
        title="messages queued (absorptions) vs number of random faulty nodes",
    )
