"""Fault models and fault patterns (paper Section 3).

The package models permanent static component failures of two kinds:

* **node failures** — the PE and its router fail; every physical link and
  virtual channel incident on the node is marked faulty at the adjacent
  routers;
* **link failures** — a single physical (bidirectional) link fails.

Faults may be injected at random locations or coalesced into *fault regions*
of convex (block, ``|``, ``||``, rectangle) or concave (L, U, T, +, H) shape,
matching Fig. 1 of the paper.  A connectivity guard checks the paper's
assumption (h) that faults never disconnect the network.  A dynamic-fault
process (MTBF/MTTR) is provided as an extension for the static model.
"""

from repro.faults.connectivity import (
    healthy_subgraph,
    is_connected_without_faults,
    assert_faults_keep_network_connected,
)
from repro.faults.dynamic import DynamicFaultEvent, DynamicFaultProcess
from repro.faults.injection import (
    random_link_faults,
    random_node_faults,
)
from repro.faults.model import FaultSet
from repro.faults.regions import (
    REGION_SHAPES,
    FaultRegion,
    make_fault_region,
    paper_fig5_regions,
    region_block,
    region_column,
    region_double_column,
    region_h_shape,
    region_l_shape,
    region_plus_shape,
    region_t_shape,
    region_u_shape,
)

__all__ = [
    "FaultSet",
    "FaultRegion",
    "REGION_SHAPES",
    "make_fault_region",
    "region_block",
    "region_column",
    "region_double_column",
    "region_l_shape",
    "region_u_shape",
    "region_t_shape",
    "region_plus_shape",
    "region_h_shape",
    "paper_fig5_regions",
    "random_node_faults",
    "random_link_faults",
    "healthy_subgraph",
    "is_connected_without_faults",
    "assert_faults_keep_network_connected",
    "DynamicFaultProcess",
    "DynamicFaultEvent",
]
