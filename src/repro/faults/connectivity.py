"""Connectivity guard for fault sets (paper assumption (h)).

The paper assumes that "faults do not disconnect the network".  The helpers
here verify that assumption for a concrete fault set: the subgraph induced by
healthy nodes and healthy channels must remain (strongly) connected so that
every pair of healthy nodes can still communicate.
"""

from __future__ import annotations

import networkx as nx

from repro.faults.model import FaultSet
from repro.topology.base import Topology

__all__ = [
    "healthy_subgraph",
    "is_connected_without_faults",
    "assert_faults_keep_network_connected",
]


def healthy_subgraph(topology: Topology, faults: FaultSet) -> nx.DiGraph:
    """Directed graph of healthy nodes and usable channels.

    Nodes that failed are removed entirely; channels are removed when either
    endpoint failed or when the link itself failed.
    """
    g = nx.DiGraph()
    for node in topology.nodes():
        if not faults.is_node_faulty(node):
            g.add_node(node)
    for ch in topology.channels():
        if not faults.is_link_faulty(ch.src, ch.dst):
            g.add_edge(ch.src, ch.dst)
    return g


def is_connected_without_faults(topology: Topology, faults: FaultSet) -> bool:
    """True when every pair of healthy nodes can still reach each other.

    An empty or single-node healthy set is considered connected.
    """
    g = healthy_subgraph(topology, faults)
    if g.number_of_nodes() <= 1:
        return True
    return nx.is_strongly_connected(g)


def assert_faults_keep_network_connected(topology: Topology, faults: FaultSet) -> None:
    """Raise :class:`ValueError` if the fault set violates assumption (h)."""
    if not is_connected_without_faults(topology, faults):
        raise ValueError(
            f"fault set with {faults.num_faulty_nodes} faulty nodes and "
            f"{faults.num_faulty_links} faulty links disconnects {topology!r}"
        )
