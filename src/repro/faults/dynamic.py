"""Dynamic (MTBF/MTTR) fault process — an extension of the static fault model.

The paper targets "commercial multiprocessors where the mean time to repair
(MTTR) is much smaller than the mean time between failures (MTBF)"
(Section 4), but its experiments use static fault sets.  This module provides
the dynamic counterpart: a marked point process of failure and repair events
that can be replayed against a simulation timeline or sampled to obtain a
static :class:`~repro.faults.model.FaultSet` snapshot at a given time.

It is exercised by the ablation benchmarks and the test suite; the figure
reproductions use static faults exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set

import numpy as np

from repro.faults.model import FaultSet
from repro.topology.base import Topology

__all__ = ["DynamicFaultEvent", "DynamicFaultProcess"]


@dataclass(frozen=True)
class DynamicFaultEvent:
    """A single failure or repair event.

    Attributes
    ----------
    time:
        Simulation cycle at which the event takes effect.
    node:
        Flat id of the node affected.
    failed:
        True for a failure event, False for a repair (the node returns to
        service).
    """

    time: float
    node: int
    failed: bool


class DynamicFaultProcess:
    """Exponential MTBF/MTTR failure–repair process over the nodes of a network.

    Each node independently alternates between an *up* period with mean
    ``mtbf`` cycles and a *down* period with mean ``mttr`` cycles, both
    exponentially distributed.  Consistent with the paper's setting,
    ``mttr`` should normally be much smaller than ``mtbf``.

    Parameters
    ----------
    topology:
        The network whose nodes may fail.
    mtbf:
        Mean time between failures, in cycles (per node).
    mttr:
        Mean time to repair, in cycles (per node).
    rng:
        Generator or seed for reproducibility.
    protected:
        Node ids that never fail.
    """

    def __init__(
        self,
        topology: Topology,
        mtbf: float,
        mttr: float,
        rng: Optional[np.random.Generator | int] = None,
        protected: Optional[Set[int]] = None,
    ) -> None:
        if mtbf <= 0 or mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")
        if mttr >= mtbf:
            raise ValueError(
                "the Software-Based scheme targets MTTR << MTBF; got mttr >= mtbf"
            )
        self._topology = topology
        self._mtbf = float(mtbf)
        self._mttr = float(mttr)
        # The process is deterministic per instance: the same event trace is
        # produced by every call to :meth:`events`, so snapshots at different
        # times are mutually consistent.
        if isinstance(rng, np.random.Generator):
            self._seed = int(rng.integers(2**63))
        else:
            self._seed = rng if rng is not None else 0
        self._protected = set(protected or ())

    @property
    def mtbf(self) -> float:
        """Mean time between failures (cycles)."""
        return self._mtbf

    @property
    def mttr(self) -> float:
        """Mean time to repair (cycles)."""
        return self._mttr

    def events(self, horizon: float) -> List[DynamicFaultEvent]:
        """All failure/repair events in ``[0, horizon)`` sorted by time."""
        if horizon <= 0:
            return []
        rng = np.random.default_rng(self._seed)
        out: List[DynamicFaultEvent] = []
        for node in self._topology.nodes():
            if node in self._protected:
                continue
            t = 0.0
            up = True
            while True:
                mean = self._mtbf if up else self._mttr
                t += float(rng.exponential(mean))
                if t >= horizon:
                    break
                out.append(DynamicFaultEvent(time=t, node=node, failed=up))
                up = not up
        out.sort(key=lambda e: (e.time, e.node))
        return out

    def snapshot(self, time: float, horizon: Optional[float] = None) -> FaultSet:
        """The static fault set in effect at ``time``.

        ``horizon`` defaults to ``time`` (events after the snapshot instant are
        irrelevant); providing a larger horizon allows reusing a single event
        trace for several snapshots.
        """
        if time < 0:
            raise ValueError("time must be non-negative")
        failed: Set[int] = set()
        for event in self.events(horizon if horizon is not None else time + 1.0):
            if event.time > time:
                break
            if event.failed:
                failed.add(event.node)
            else:
                failed.discard(event.node)
        return FaultSet.from_nodes(failed)

    def iter_snapshots(self, times: List[float]) -> Iterator[FaultSet]:
        """Yield a snapshot per requested time (times need not be sorted)."""
        if not times:
            return
        horizon = max(times) + 1.0
        events = self.events(horizon)
        for t in times:
            failed: Set[int] = set()
            for event in events:
                if event.time > t:
                    break
                if event.failed:
                    failed.add(event.node)
                else:
                    failed.discard(event.node)
            yield FaultSet.from_nodes(failed)

    def expected_unavailability(self) -> float:
        """Long-run fraction of time a node spends failed: ``mttr / (mtbf + mttr)``."""
        return self._mttr / (self._mtbf + self._mttr)
