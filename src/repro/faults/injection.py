"""Random fault injection (paper Section 5.2).

"Random faulty nodes are determined using a uniform random number generator"
and "faults do not disconnect the network" (assumption (h)).  The injectors
here sample faults uniformly at random and, by default, re-sample until the
healthy network stays connected, exactly mirroring the paper's setup.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

import numpy as np

from repro.faults.connectivity import is_connected_without_faults
from repro.faults.model import FaultSet
from repro.topology.base import Topology

__all__ = ["random_node_faults", "random_link_faults"]

#: Number of rejection-sampling attempts before giving up on a connected fault set.
_MAX_ATTEMPTS = 1000


def _as_rng(rng: Optional[np.random.Generator | int]) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def random_node_faults(
    topology: Topology,
    count: int,
    rng: Optional[np.random.Generator | int] = None,
    ensure_connected: bool = True,
    exclude: Iterable[int] = (),
) -> FaultSet:
    """Sample ``count`` distinct faulty nodes uniformly at random.

    Parameters
    ----------
    topology:
        Network to inject faults into.
    count:
        Number of node failures (the paper's ``n_f``).
    rng:
        A :class:`numpy.random.Generator` or an integer seed.
    ensure_connected:
        When True (default, matching assumption (h)), fault sets that would
        disconnect the healthy part of the network are rejected and re-sampled.
    exclude:
        Node ids that must stay healthy (useful to protect particular
        source/destination nodes in tests and examples).

    Returns
    -------
    FaultSet
        A fault set with exactly ``count`` faulty nodes.

    Raises
    ------
    ValueError
        If ``count`` is infeasible, or no connected fault set is found within
        the rejection-sampling budget.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    excluded: Set[int] = {int(n) for n in exclude}
    candidates = np.array(
        [n for n in range(topology.num_nodes) if n not in excluded], dtype=np.int64
    )
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} nodes: only {len(candidates)} candidates available"
        )
    if count == 0:
        return FaultSet.empty()

    generator = _as_rng(rng)
    for _ in range(_MAX_ATTEMPTS):
        chosen = generator.choice(candidates, size=count, replace=False)
        faults = FaultSet.from_nodes(int(n) for n in chosen)
        if not ensure_connected or is_connected_without_faults(topology, faults):
            return faults
    raise ValueError(
        f"could not find a connected fault set with {count} faulty nodes "
        f"after {_MAX_ATTEMPTS} attempts"
    )


def random_link_faults(
    topology: Topology,
    count: int,
    rng: Optional[np.random.Generator | int] = None,
    ensure_connected: bool = True,
) -> FaultSet:
    """Sample ``count`` distinct faulty bidirectional links uniformly at random.

    The paper models a link failure as the failure of the two nodes it
    connects and therefore evaluates node failures only; standalone link
    failures are provided for completeness and are exercised by the test
    suite.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return FaultSet.empty()

    # Collect undirected links once (src < dst to deduplicate directions,
    # wrap-around links normalised the same way).
    links: list[Tuple[int, int]] = []
    seen: Set[Tuple[int, int]] = set()
    for ch in topology.channels():
        key = (min(ch.src, ch.dst), max(ch.src, ch.dst))
        if key not in seen:
            seen.add(key)
            links.append(key)
    if count > len(links):
        raise ValueError(f"cannot fail {count} links: network only has {len(links)}")

    generator = _as_rng(rng)
    indices = np.arange(len(links))
    for _ in range(_MAX_ATTEMPTS):
        chosen = generator.choice(indices, size=count, replace=False)
        faults = FaultSet.from_links(links[int(i)] for i in chosen)
        if not ensure_connected or is_connected_without_faults(topology, faults):
            return faults
    raise ValueError(
        f"could not find a connected fault set with {count} faulty links "
        f"after {_MAX_ATTEMPTS} attempts"
    )
