"""The static fault set consulted by routers and routing functions.

A :class:`FaultSet` is an immutable value object recording which nodes and
which directed physical channels are faulty.  Following the paper (Section 3
and Section 5.2):

* a *node failure* implies that every physical link incident on that node is
  also faulty as seen from the adjacent routers;
* a *link failure* can equivalently be modelled by failing the two nodes it
  connects; the paper therefore evaluates node failures only, but the model
  here supports standalone link failures as well so that both modes can be
  exercised and tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from repro.topology.base import Topology

__all__ = ["FaultSet"]

LinkKey = Tuple[int, int]


def _normalise_links(links: Iterable[LinkKey]) -> FrozenSet[LinkKey]:
    """Expand an iterable of directed (src, dst) pairs to include both directions.

    The paper treats a physical link failure as bidirectional (the connector or
    the cable fails); we therefore store both directed channels.
    """
    out: Set[LinkKey] = set()
    for u, v in links:
        out.add((int(u), int(v)))
        out.add((int(v), int(u)))
    return frozenset(out)


@dataclass(frozen=True)
class FaultSet:
    """Immutable set of faulty nodes and faulty directed channels.

    Parameters
    ----------
    nodes:
        Flat ids of faulty nodes.
    links:
        Pairs ``(u, v)`` of adjacent node ids whose connecting physical link is
        faulty.  Each pair is stored in both directions.

    Notes
    -----
    The class does not hold a reference to the topology, so the same fault set
    can be reused across topologies of equal size (useful in tests).  Use
    :meth:`validate` to check consistency against a concrete topology.
    """

    nodes: FrozenSet[int] = field(default_factory=frozenset)
    links: FrozenSet[LinkKey] = field(default_factory=frozenset)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "FaultSet":
        """A fault-free network."""
        return FaultSet(frozenset(), frozenset())

    @staticmethod
    def from_nodes(nodes: Iterable[int]) -> "FaultSet":
        """Fault set containing only node failures."""
        return FaultSet(frozenset(int(n) for n in nodes), frozenset())

    @staticmethod
    def from_links(links: Iterable[LinkKey]) -> "FaultSet":
        """Fault set containing only (bidirectional) link failures."""
        return FaultSet(frozenset(), _normalise_links(links))

    @staticmethod
    def build(
        nodes: Optional[Iterable[int]] = None,
        links: Optional[Iterable[LinkKey]] = None,
    ) -> "FaultSet":
        """General constructor normalising both kinds of faults."""
        return FaultSet(
            frozenset(int(n) for n in (nodes or ())),
            _normalise_links(links or ()),
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def is_node_faulty(self, node: int) -> bool:
        """True if the PE/router at ``node`` has failed."""
        return node in self.nodes

    def is_link_faulty(self, src: int, dst: int) -> bool:
        """True if the directed channel ``src -> dst`` cannot be used.

        A channel is unusable if the link itself failed or if either endpoint
        node failed (a failed node takes all incident channels with it).
        """
        if src in self.nodes or dst in self.nodes:
            return True
        return (src, dst) in self.links

    def is_channel_usable(self, src: int, dst: Optional[int]) -> bool:
        """Convenience negation of :meth:`is_link_faulty` handling mesh edges.

        ``dst`` may be ``None`` (mesh boundary), in which case the channel does
        not exist and is reported unusable.
        """
        if dst is None:
            return False
        return not self.is_link_faulty(src, dst)

    @property
    def num_faulty_nodes(self) -> int:
        """Number of failed nodes."""
        return len(self.nodes)

    @property
    def num_faulty_links(self) -> int:
        """Number of failed bidirectional links (excluding those implied by node faults)."""
        return len(self.links) // 2

    def is_empty(self) -> bool:
        """True when no component is faulty."""
        return not self.nodes and not self.links

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "FaultSet") -> "FaultSet":
        """Fault set containing the faults of both operands."""
        return FaultSet(self.nodes | other.nodes, self.links | other.links)

    def with_nodes(self, nodes: Iterable[int]) -> "FaultSet":
        """A copy with additional failed nodes."""
        return FaultSet(self.nodes | frozenset(int(n) for n in nodes), self.links)

    def with_links(self, links: Iterable[LinkKey]) -> "FaultSet":
        """A copy with additional failed links."""
        return FaultSet(self.nodes, self.links | _normalise_links(links))

    def without_nodes(self, nodes: Iterable[int]) -> "FaultSet":
        """A copy with the given nodes repaired."""
        return FaultSet(self.nodes - frozenset(int(n) for n in nodes), self.links)

    # ------------------------------------------------------------------ #
    # validation / export
    # ------------------------------------------------------------------ #
    def validate(self, topology: Topology) -> None:
        """Raise :class:`ValueError` if the fault set is inconsistent with ``topology``.

        Checks that every faulty node id exists and that every faulty link
        connects adjacent nodes.
        """
        for node in self.nodes:
            if not 0 <= node < topology.num_nodes:
                raise ValueError(f"faulty node {node} does not exist in {topology!r}")
        for u, v in self.links:
            if not (0 <= u < topology.num_nodes and 0 <= v < topology.num_nodes):
                raise ValueError(f"faulty link ({u}, {v}) references a missing node")
            if all(nid != v for _, _, nid in topology.neighbors(u)):
                raise ValueError(f"faulty link ({u}, {v}) does not connect adjacent nodes")

    def faulty_neighbor_ports(self, topology: Topology, node: int) -> Tuple[int, ...]:
        """Flat indices of the network ports of ``node`` that lead to a fault."""
        ports = []
        for dim, direction, nid in topology.neighbors(node):
            if self.is_link_faulty(node, nid):
                from repro.topology.channels import port_index

                ports.append(port_index(dim, direction))
        return tuple(sorted(ports))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FaultSet(nodes={sorted(self.nodes)}, "
            f"links={sorted(self.links)})"
        )
