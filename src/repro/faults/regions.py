"""Coalesced fault regions (paper Fig. 1 and Fig. 5).

Adjacent faulty nodes coalesce into *fault regions*.  The paper distinguishes
convex regions (also called block faults): ``|``-shaped, ``||``-shaped and
rectangular (``□``) regions — and concave regions: ``L``-, ``U``-, ``T``-,
``+``- and ``H``-shaped.  Concave regions are harder to route around because a
message can enter the "pocket" of the region and must back out of it, which is
exactly what Fig. 5 of the paper measures.

Every builder in this module produces a set of **relative 2-D cell offsets**
(the canonical shape); :func:`make_fault_region` embeds a shape into two chosen
dimensions of an n-dimensional topology at a given anchor coordinate, yielding
a :class:`FaultRegion` (and, through it, a :class:`~repro.faults.model.FaultSet`).

The exact region sizes used by the paper's Fig. 5 (rectangular with 20 faults,
T with 10, + with 16, L with 9, U with 8) are available from
:func:`paper_fig5_regions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.faults.model import FaultSet
from repro.topology.base import Topology

__all__ = [
    "FaultRegion",
    "REGION_SHAPES",
    "region_block",
    "region_column",
    "region_double_column",
    "region_l_shape",
    "region_u_shape",
    "region_t_shape",
    "region_plus_shape",
    "region_h_shape",
    "make_fault_region",
    "paper_fig5_regions",
]

Cell = Tuple[int, int]


# --------------------------------------------------------------------------- #
# canonical 2-D shapes (sets of (row, col) offsets, row = second dimension)
# --------------------------------------------------------------------------- #
def region_block(width: int = 2, height: int = 2) -> FrozenSet[Cell]:
    """Convex rectangular block of ``width × height`` faulty nodes."""
    _require_positive(width=width, height=height)
    return frozenset((r, c) for r in range(height) for c in range(width))


def region_column(length: int = 3) -> FrozenSet[Cell]:
    """Convex ``|``-shaped region: a single column of ``length`` nodes."""
    _require_positive(length=length)
    return frozenset((r, 0) for r in range(length))


def region_double_column(length: int = 3, gap: int = 0) -> FrozenSet[Cell]:
    """Convex ``||``-shaped region: two parallel columns of ``length`` nodes.

    ``gap`` healthy columns may separate the two faulty columns; with
    ``gap=0`` the region degenerates into a 2-wide block.
    """
    _require_positive(length=length)
    if gap < 0:
        raise ValueError("gap must be non-negative")
    cells = {(r, 0) for r in range(length)}
    cells |= {(r, 1 + gap) for r in range(length)}
    return frozenset(cells)


def region_l_shape(vertical: int = 5, horizontal: int = 5, thickness: int = 1) -> FrozenSet[Cell]:
    """Concave ``L``-shaped region.

    A vertical arm of ``vertical`` cells and a horizontal arm of ``horizontal``
    cells share the corner cell, so the total count is
    ``vertical + horizontal - thickness**2`` for ``thickness=1``.
    """
    _require_positive(vertical=vertical, horizontal=horizontal, thickness=thickness)
    cells: Set[Cell] = set()
    for r in range(vertical):
        for t in range(thickness):
            cells.add((r, t))
    for c in range(horizontal):
        for t in range(thickness):
            cells.add((t, c))
    return frozenset(cells)


def region_u_shape(width: int = 4, height: int = 3, thickness: int = 1) -> FrozenSet[Cell]:
    """Concave ``U``-shaped region (opening upwards).

    A bottom bar of ``width`` cells plus two side walls rising to ``height``.
    With ``thickness=1`` the count is ``width + 2*(height-1)``.
    """
    _require_positive(width=width, height=height, thickness=thickness)
    if width < 2 * thickness + 1:
        raise ValueError("width too small to leave a concave pocket in the U shape")
    cells: Set[Cell] = set()
    for t in range(thickness):
        for c in range(width):
            cells.add((t, c))  # bottom bar
    for r in range(thickness, height):
        for t in range(thickness):
            cells.add((r, t))  # left wall
            cells.add((r, width - 1 - t))  # right wall
    return frozenset(cells)


def region_t_shape(top: int = 5, stem: int = 5, thickness: int = 1) -> FrozenSet[Cell]:
    """Concave ``T``-shaped region.

    A horizontal top bar of ``top`` cells with a vertical stem of ``stem``
    cells hanging from its centre.  With ``thickness=1`` the count is
    ``top + stem`` (the stem starts one row below the bar).
    """
    _require_positive(top=top, stem=stem, thickness=thickness)
    cells: Set[Cell] = set()
    for t in range(thickness):
        for c in range(top):
            cells.add((t, c))
    centre = (top - thickness) // 2
    for r in range(thickness, thickness + stem):
        for t in range(thickness):
            cells.add((r, centre + t))
    return frozenset(cells)


def region_plus_shape(
    horizontal: int = 3, vertical: int = 3, thickness: int = 1
) -> FrozenSet[Cell]:
    """Concave ``+``-shaped region.

    A horizontal bar (``thickness × horizontal``) and a vertical bar
    (``vertical × thickness``) crossing at their centres; the count is
    ``thickness*horizontal + thickness*vertical - thickness**2``.
    """
    _require_positive(horizontal=horizontal, vertical=vertical, thickness=thickness)
    if horizontal < thickness or vertical < thickness:
        raise ValueError("bars must be at least as long as the thickness")
    cells: Set[Cell] = set()
    v_centre = (vertical - thickness) // 2
    h_centre = (horizontal - thickness) // 2
    for r in range(v_centre, v_centre + thickness):
        for c in range(horizontal):
            cells.add((r, c))
    for r in range(vertical):
        for c in range(h_centre, h_centre + thickness):
            cells.add((r, c))
    return frozenset(cells)


def region_h_shape(height: int = 5, span: int = 3, thickness: int = 1) -> FrozenSet[Cell]:
    """Concave ``H``-shaped region.

    Two vertical bars of ``height`` cells joined by a horizontal crossbar of
    ``span`` cells at mid height.  With ``thickness=1`` the count is
    ``2*height + span``.
    """
    _require_positive(height=height, span=span, thickness=thickness)
    cells: Set[Cell] = set()
    right_col = thickness + span
    for r in range(height):
        for t in range(thickness):
            cells.add((r, t))
            cells.add((r, right_col + t))
    mid = (height - thickness) // 2
    for r in range(mid, mid + thickness):
        for c in range(thickness, thickness + span):
            cells.add((r, c))
    return frozenset(cells)


def _require_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


#: Registry mapping shape names to their canonical builders.  The names match
#: the paper's terminology ("rect", "L", "U", "T", "plus", ...).
REGION_SHAPES: Dict[str, Callable[..., FrozenSet[Cell]]] = {
    "block": region_block,
    "rect": region_block,
    "column": region_column,
    "double-column": region_double_column,
    "L": region_l_shape,
    "U": region_u_shape,
    "T": region_t_shape,
    "plus": region_plus_shape,
    "H": region_h_shape,
}

#: Shapes the paper classifies as convex (block faults).
CONVEX_SHAPES = frozenset({"block", "rect", "column", "double-column"})


# --------------------------------------------------------------------------- #
# embedding a shape into a topology
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultRegion:
    """A fault region embedded into a concrete topology.

    Attributes
    ----------
    shape:
        Name of the canonical shape (key of :data:`REGION_SHAPES`).
    nodes:
        Flat ids of the faulty nodes.
    convex:
        True for convex (block) regions, False for concave regions.
    anchor:
        Coordinate of the shape's (0, 0) cell in the embedding.
    plane:
        The two topology dimensions the 2-D shape spans.
    """

    shape: str
    nodes: FrozenSet[int]
    convex: bool
    anchor: Tuple[int, ...]
    plane: Tuple[int, int]

    @property
    def num_faults(self) -> int:
        """Number of faulty nodes in the region (the paper's ``n_f``)."""
        return len(self.nodes)

    def to_fault_set(self) -> FaultSet:
        """The :class:`FaultSet` induced by this region (node failures only)."""
        return FaultSet.from_nodes(self.nodes)


def make_fault_region(
    topology: Topology,
    shape: str,
    anchor: Optional[Sequence[int]] = None,
    plane: Tuple[int, int] = (0, 1),
    wrap: bool = True,
    **shape_kwargs: int,
) -> FaultRegion:
    """Embed a canonical 2-D fault-region shape into ``topology``.

    Parameters
    ----------
    topology:
        Target network; must have at least two dimensions.
    shape:
        A key of :data:`REGION_SHAPES` (``"rect"``, ``"L"``, ``"U"``, ``"T"``,
        ``"plus"``, ``"H"``, ``"column"``, ``"double-column"``, ``"block"``).
    anchor:
        Coordinates of the cell (0, 0) of the canonical shape.  Defaults to the
        centre of the network so that typical shapes avoid straddling the
        wrap-around seam.
    plane:
        The pair of dimensions ``(col_dim, row_dim)`` the shape spans; the
        canonical shape's column offset is applied to ``plane[0]`` and its row
        offset to ``plane[1]``.
    wrap:
        Whether offsets may wrap around the torus.  For a mesh topology this
        must effectively be False: cells falling outside raise ``ValueError``.
    **shape_kwargs:
        Forwarded to the shape builder (e.g. ``width=4, height=5``).

    Returns
    -------
    FaultRegion
        The embedded region.  ``region.to_fault_set()`` gives the fault set.

    Raises
    ------
    ValueError
        If the shape name is unknown, the topology has fewer than two
        dimensions, or a cell falls outside a non-wrapping network.
    """
    if shape not in REGION_SHAPES:
        raise ValueError(f"unknown fault-region shape {shape!r}; known: {sorted(REGION_SHAPES)}")
    if topology.dimensions < 2:
        raise ValueError("fault regions require a topology with at least 2 dimensions")
    col_dim, row_dim = plane
    if col_dim == row_dim:
        raise ValueError("plane dimensions must differ")
    for d in plane:
        if not 0 <= d < topology.dimensions:
            raise ValueError(f"plane dimension {d} out of range for {topology!r}")

    cells = REGION_SHAPES[shape](**shape_kwargs)
    if anchor is None:
        anchor_list = [k // 4 for k in topology.radices]
    else:
        anchor_list = list(anchor)
        if len(anchor_list) != topology.dimensions:
            raise ValueError("anchor arity does not match the topology dimensionality")

    allow_wrap = wrap and topology.wraparound
    nodes: Set[int] = set()
    for row, col in cells:
        coords = list(anchor_list)
        coords[col_dim] = coords[col_dim] + col
        coords[row_dim] = coords[row_dim] + row
        for d in (col_dim, row_dim):
            k = topology.radices[d]
            if allow_wrap:
                coords[d] %= k
            elif not 0 <= coords[d] < k:
                raise ValueError(
                    f"cell {(row, col)} of shape {shape!r} falls outside the network "
                    f"(coordinate {coords[d]} in dimension {d}, radix {k})"
                )
        nodes.add(topology.node_id(coords))

    return FaultRegion(
        shape=shape,
        nodes=frozenset(nodes),
        convex=shape in CONVEX_SHAPES,
        anchor=tuple(anchor_list),
        plane=plane,
    )


def paper_fig5_regions(topology: Topology) -> Dict[str, FaultRegion]:
    """The five fault regions evaluated in the paper's Fig. 5.

    Fig. 5 uses an 8-ary 2-cube with a rectangular region of 20 faults, a
    T-shaped region of 10 faults, a +-shaped region of 16 faults, an L-shaped
    region of 9 faults and a U-shaped region of 8 faults.  The exact anchors
    are not given in the paper; we centre each region in the network.

    Returns a mapping from region label (``"rect"``, ``"T"``, ``"plus"``,
    ``"L"``, ``"U"``) to the embedded :class:`FaultRegion`, each with exactly
    the fault count reported in the paper.
    """
    regions = {
        "rect": make_fault_region(topology, "rect", width=5, height=4),
        "T": make_fault_region(topology, "T", top=5, stem=5),
        "plus": make_fault_region(topology, "plus", horizontal=6, vertical=4, thickness=2),
        "L": make_fault_region(topology, "L", vertical=5, horizontal=5),
        "U": make_fault_region(topology, "U", width=4, height=3),
    }
    expected = {"rect": 20, "T": 10, "plus": 16, "L": 9, "U": 8}
    for label, region in regions.items():
        if region.num_faults != expected[label]:  # pragma: no cover - defensive
            raise AssertionError(
                f"paper_fig5_regions produced {region.num_faults} faults for {label}, "
                f"expected {expected[label]}"
            )
    return regions
