"""Performance metrics: latency, throughput and absorption accounting.

The paper reports three quantities (Section 5.2):

* **mean message latency** — time from the generation of a message until its
  last data flit reaches the local PE at the destination node;
* **throughput** — rate at which messages are delivered by the network,
  measured per node per cycle over the measurement interval;
* **number of messages queued** — the number of messages absorbed by the
  software layer because of faults (a message counts once per absorption).

Statistics gathering is inhibited during a warm-up prefix of messages to avoid
start-up transients, exactly as in the paper (the paper skips the first
10,000 of 100,000 messages).
"""

from repro.metrics.collectors import MessageRecord, MetricsCollector, NetworkMetrics
from repro.metrics.statistics import (
    RunningStats,
    batch_means_confidence_interval,
    confidence_interval,
)

__all__ = [
    "RunningStats",
    "confidence_interval",
    "batch_means_confidence_interval",
    "MessageRecord",
    "MetricsCollector",
    "NetworkMetrics",
]
