"""Per-message accounting and aggregate network metrics.

The collector receives one event per delivered message from the simulation
engine and produces the aggregate quantities reported by the paper: mean
message latency, throughput and the number of messages queued (absorbed) by
the software messaging layer.  Warm-up messages are excluded from the latency
and throughput statistics, mirroring the paper's methodology (statistics
gathering "inhibited for the first 10,000 messages").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.metrics.statistics import RunningStats

__all__ = ["MessageRecord", "NetworkMetrics", "MetricsCollector"]


@dataclass
class MessageRecord:
    """Lifecycle record of a single delivered message.

    Attributes
    ----------
    message_id:
        Sequential id assigned at generation time (defines warm-up ordering).
    source, destination:
        Flat node ids of the original endpoints.
    length:
        Message length in flits.
    created:
        Cycle at which the message was generated at the source PE.
    injected:
        Cycle at which its header first entered the network.
    delivered:
        Cycle at which the last data flit reached the destination PE.
    hops:
        Number of channels traversed (across all injection attempts).
    absorptions:
        Number of times the message was absorbed by an intermediate node's
        software layer because of a fault.
    """

    message_id: int
    source: int
    destination: int
    length: int
    created: int
    injected: int
    delivered: int
    hops: int = 0
    absorptions: int = 0

    @property
    def latency(self) -> int:
        """Paper definition: generation to last-flit ejection, in cycles."""
        return self.delivered - self.created

    @property
    def network_latency(self) -> int:
        """Latency excluding the source queueing delay (injection to ejection)."""
        return self.delivered - self.injected


@dataclass
class NetworkMetrics:
    """Aggregate metrics of one simulation run.

    All averages are computed over *measured* (post-warm-up) messages only;
    the absorption counters additionally report totals over every message so
    that Fig. 7 (messages queued) can be reproduced either way.
    """

    mean_latency: float
    latency_stddev: float
    max_latency: float
    mean_network_latency: float
    mean_hops: float
    delivered_messages: int
    measured_messages: int
    generated_messages: int
    measurement_cycles: int
    total_cycles: int
    num_nodes: int
    message_length: int
    throughput_messages: float
    throughput_flits: float
    messages_absorbed_total: int
    messages_absorbed_measured: int
    absorbed_message_fraction: float
    mean_absorptions_per_message: float
    offered_load: float
    saturated: bool = False
    #: Absorptions caused by a fault blocking the message's path.
    messages_absorbed_fault: int = 0
    #: Absorptions at an intermediate target installed by the software layer.
    messages_absorbed_intermediate: int = 0
    #: Per-node absorption counts (both kinds), keyed by flat node id — which
    #: nodes' software layers carry the re-routing load.
    absorptions_by_node: Dict[int, int] = field(default_factory=dict)
    #: Aggregate software-rewrite counters from the fault-tolerant routing
    #: layer (reversals, detours, resumes, route-progress revisits and
    #: escape-ladder escalations).  Empty for non-fault-tolerant algorithms.
    rerouting: Dict[str, int] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)

    def detached(self) -> "NetworkMetrics":
        """A copy whose mutable containers are independent of this instance.

        The single detach point used by every result cache (the in-memory
        sweep cache and the disk-backed campaign store), so a caller mutating
        a served result can never corrupt a cache entry — a future mutable
        field must be copied here and nowhere else.
        """
        return replace(
            self,
            absorptions_by_node=dict(self.absorptions_by_node),
            rerouting=dict(self.rerouting),
            extras=dict(self.extras),
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the CSV/ASCII reporting helpers."""
        out = {
            "mean_latency": self.mean_latency,
            "latency_stddev": self.latency_stddev,
            "max_latency": self.max_latency,
            "mean_network_latency": self.mean_network_latency,
            "mean_hops": self.mean_hops,
            "delivered_messages": self.delivered_messages,
            "measured_messages": self.measured_messages,
            "generated_messages": self.generated_messages,
            "measurement_cycles": self.measurement_cycles,
            "total_cycles": self.total_cycles,
            "throughput_messages": self.throughput_messages,
            "throughput_flits": self.throughput_flits,
            "messages_absorbed_total": self.messages_absorbed_total,
            "messages_absorbed_measured": self.messages_absorbed_measured,
            "messages_absorbed_fault": self.messages_absorbed_fault,
            "messages_absorbed_intermediate": self.messages_absorbed_intermediate,
            "absorbed_message_fraction": self.absorbed_message_fraction,
            "mean_absorptions_per_message": self.mean_absorptions_per_message,
            "offered_load": self.offered_load,
            "saturated": float(self.saturated),
        }
        for counter, value in sorted(self.rerouting.items()):
            out[f"rerouting_{counter}"] = value
        out.update(self.extras)
        return out


class MetricsCollector:
    """Accumulates per-message records and produces :class:`NetworkMetrics`.

    Parameters
    ----------
    num_nodes:
        Number of nodes of the simulated network (for per-node rates).
    warmup_messages:
        Messages with a generation index smaller than this are excluded from
        latency/throughput statistics (they still count towards the global
        absorption total, as in the paper's Fig. 7 counter).
    keep_records:
        When True every :class:`MessageRecord` is retained (useful for tests
        and post-processing); when False only streaming statistics are kept,
        which is the memory-friendly default for long benchmark runs.
    """

    def __init__(
        self,
        num_nodes: int,
        warmup_messages: int = 0,
        keep_records: bool = False,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if warmup_messages < 0:
            raise ValueError("warmup_messages must be non-negative")
        self._num_nodes = num_nodes
        self._warmup_messages = warmup_messages
        self._keep_records = keep_records
        self._records: List[MessageRecord] = []
        self._latency = RunningStats()
        self._network_latency = RunningStats()
        self._hops = RunningStats()
        self._absorptions_measured = RunningStats()
        self._delivered = 0
        self._measured = 0
        self._generated = 0
        self._absorption_events_total = 0
        self._absorption_events_measured = 0
        self._absorbed_messages_measured = 0
        self._fault_absorptions = 0
        self._intermediate_absorptions = 0
        self._absorptions_by_node: Dict[int, int] = {}
        self._measurement_start_cycle: Optional[int] = None
        self._last_delivery_cycle = 0
        self._measured_flits = 0

    # ------------------------------------------------------------------ #
    # event intake
    # ------------------------------------------------------------------ #
    def message_generated(self) -> int:
        """Register a newly generated message; returns its sequential id."""
        mid = self._generated
        self._generated += 1
        return mid

    def message_absorbed(
        self, message_id: int, node: Optional[int] = None, fault: bool = True
    ) -> None:
        """Register one absorption (software re-routing) event.

        Parameters
        ----------
        message_id:
            The absorbed message (for warm-up classification).
        node:
            Flat id of the node whose software layer absorbed the message;
            ``None`` when the caller does not track it.
        fault:
            True when the absorption was forced by a fault blocking the path,
            False when the message arrived at an intermediate target address
            installed by the software layer.
        """
        self._absorption_events_total += 1
        if fault:
            self._fault_absorptions += 1
        else:
            self._intermediate_absorptions += 1
        if node is not None:
            self._absorptions_by_node[node] = self._absorptions_by_node.get(node, 0) + 1
        if message_id >= self._warmup_messages:
            self._absorption_events_measured += 1

    def message_delivered(self, record: MessageRecord) -> None:
        """Register a delivered message."""
        self._delivered += 1
        self._last_delivery_cycle = max(self._last_delivery_cycle, record.delivered)
        if self._keep_records:
            self._records.append(record)
        if record.message_id < self._warmup_messages:
            return
        if self._measurement_start_cycle is None:
            self._measurement_start_cycle = record.delivered
        else:
            self._measurement_start_cycle = min(self._measurement_start_cycle, record.delivered)
        self._measured += 1
        self._measured_flits += record.length
        self._latency.add(record.latency)
        self._network_latency.add(record.network_latency)
        self._hops.add(record.hops)
        self._absorptions_measured.add(record.absorptions)
        if record.absorptions > 0:
            self._absorbed_messages_measured += 1

    # ------------------------------------------------------------------ #
    # properties used while the simulation is still running
    # ------------------------------------------------------------------ #
    @property
    def delivered_messages(self) -> int:
        """Messages delivered so far (including warm-up)."""
        return self._delivered

    @property
    def measured_messages(self) -> int:
        """Post-warm-up messages delivered so far."""
        return self._measured

    @property
    def generated_messages(self) -> int:
        """Messages generated so far."""
        return self._generated

    @property
    def records(self) -> List[MessageRecord]:
        """Retained per-message records (empty unless ``keep_records=True``)."""
        return self._records

    @property
    def running_mean_latency(self) -> float:
        """Mean latency of measured messages delivered so far."""
        return self._latency.mean

    # ------------------------------------------------------------------ #
    # finalisation
    # ------------------------------------------------------------------ #
    def finalize(
        self,
        total_cycles: int,
        message_length: int,
        offered_load: float,
        saturated: bool = False,
    ) -> NetworkMetrics:
        """Produce the aggregate :class:`NetworkMetrics` for the finished run."""
        if self._measurement_start_cycle is None or self._measured == 0:
            measurement_cycles = 0
            throughput_msgs = 0.0
            throughput_flits = 0.0
        else:
            measurement_cycles = max(1, self._last_delivery_cycle - self._measurement_start_cycle + 1)
            throughput_msgs = self._measured / (measurement_cycles * self._num_nodes)
            throughput_flits = self._measured_flits / (measurement_cycles * self._num_nodes)
        absorbed_fraction = (
            self._absorbed_messages_measured / self._measured if self._measured else 0.0
        )
        return NetworkMetrics(
            mean_latency=self._latency.mean,
            latency_stddev=self._latency.stddev,
            max_latency=self._latency.maximum if self._latency.count else float("nan"),
            mean_network_latency=self._network_latency.mean,
            mean_hops=self._hops.mean,
            delivered_messages=self._delivered,
            measured_messages=self._measured,
            generated_messages=self._generated,
            measurement_cycles=measurement_cycles,
            total_cycles=total_cycles,
            num_nodes=self._num_nodes,
            message_length=message_length,
            throughput_messages=throughput_msgs,
            throughput_flits=throughput_flits,
            messages_absorbed_total=self._absorption_events_total,
            messages_absorbed_measured=self._absorption_events_measured,
            absorbed_message_fraction=absorbed_fraction,
            mean_absorptions_per_message=(
                self._absorptions_measured.mean if self._measured else 0.0
            ),
            offered_load=offered_load,
            saturated=saturated,
            messages_absorbed_fault=self._fault_absorptions,
            messages_absorbed_intermediate=self._intermediate_absorptions,
            absorptions_by_node=dict(self._absorptions_by_node),
        )
