"""Streaming statistics helpers used by the metrics collector and the harness."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

__all__ = ["RunningStats", "confidence_interval", "batch_means_confidence_interval"]

# Two-sided 95% critical values of Student's t distribution for small degrees
# of freedom, falling back to the normal quantile (1.96) for df >= 30.  Kept as
# a table so the core library does not require SciPy at runtime.
_T_TABLE_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145,
    15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060, 26: 2.056,
    27: 2.052, 28: 2.048, 29: 2.045,
}


def _t_critical_95(df: int) -> float:
    if df <= 0:
        return float("nan")
    return _T_TABLE_95.get(df, 1.96)


class RunningStats:
    """Numerically stable streaming mean/variance (Welford's algorithm).

    Tracks count, mean, variance, minimum and maximum of a stream of values
    without storing them, which keeps per-message accounting cheap inside the
    simulation hot loop.
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the statistics."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the statistics."""
        for v in values:
            self.add(v)

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self._count else float("nan")

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN for fewer than two observations)."""
        if self._count < 2:
            return float("nan")
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else float("nan")

    @property
    def minimum(self) -> float:
        """Smallest observation (inf when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation (-inf when empty)."""
        return self._max

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two independent statistics (parallel Welford merge)."""
        merged = RunningStats()
        if self._count == 0:
            merged._copy_from(other)
            return merged
        if other._count == 0:
            merged._copy_from(self)
            return merged
        total = self._count + other._count
        delta = other._mean - self._mean
        merged._count = total
        merged._mean = self._mean + delta * other._count / total
        merged._m2 = self._m2 + other._m2 + delta * delta * self._count * other._count / total
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def _copy_from(self, other: "RunningStats") -> None:
        self._count = other._count
        self._mean = other._mean
        self._m2 = other._m2
        self._min = other._min
        self._max = other._max

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RunningStats(count={self._count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g})"
        )


def confidence_interval(values: Sequence[float], level: float = 0.95) -> Tuple[float, float]:
    """Two-sided confidence interval of the mean of ``values``.

    Only the 95 % level is supported without SciPy; other levels raise.
    Returns ``(mean, half_width)``; the half width is NaN for fewer than two
    observations.
    """
    if abs(level - 0.95) > 1e-9:
        raise ValueError("only the 95% confidence level is supported")
    stats = RunningStats()
    stats.extend(values)
    n = stats.count
    if n == 0:
        return float("nan"), float("nan")
    if n == 1:
        return stats.mean, float("nan")
    half = _t_critical_95(n - 1) * stats.stddev / math.sqrt(n)
    return stats.mean, half


def batch_means_confidence_interval(
    values: Sequence[float], batches: int = 10, level: float = 0.95
) -> Tuple[float, float]:
    """Batch-means confidence interval for correlated simulation output.

    Message latencies produced by a single simulation run are autocorrelated;
    the classical remedy is to split the measurement stream into ``batches``
    contiguous batches and build the interval from the batch means.  Returns
    ``(mean, half_width)``.
    """
    if batches < 2:
        raise ValueError("need at least two batches")
    n = len(values)
    if n < batches:
        return confidence_interval(values, level)
    batch_size = n // batches
    means: List[float] = []
    for b in range(batches):
        chunk = values[b * batch_size : (b + 1) * batch_size]
        means.append(sum(chunk) / len(chunk))
    return confidence_interval(means, level)
