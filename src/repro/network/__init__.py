"""Flit-level wormhole-switched network model and simulation engine.

This package is the substrate the paper's evaluation runs on: a cycle-driven,
flit-level simulator of a wormhole-switched direct network with virtual
channels (Section 2 and the assumptions of Section 5.1).  The pieces are:

* :mod:`repro.network.flit` / :mod:`repro.network.message` — flits and
  messages (packets);
* :mod:`repro.network.virtual_channel` — input virtual channels and the
  injection channels that stream a message's flits into its router;
* :mod:`repro.network.router` — one router: its input VCs, injection channels
  and the bookkeeping shared by the allocation stages;
* :mod:`repro.network.messaging_layer` — the per-node software messaging
  layer: the new-message queue and the re-injection queue used by
  Software-Based re-routing (absorbed messages have priority);
* :mod:`repro.network.engine` — the cycle loop: routing computation, virtual
  channel allocation, switch traversal, ejection/absorption and statistics.
"""

from repro.network.engine import SimulationEngine
from repro.network.flit import Flit
from repro.network.message import Message
from repro.network.messaging_layer import MessagingLayer
from repro.network.router import Router
from repro.network.virtual_channel import InjectionChannel, VirtualChannel

__all__ = [
    "Flit",
    "Message",
    "VirtualChannel",
    "InjectionChannel",
    "Router",
    "MessagingLayer",
    "SimulationEngine",
]
