"""The cycle-driven, flit-level wormhole simulation engine.

The engine implements the network model of Section 2 and the simulation
methodology of Section 5 of the paper:

* wormhole switching with ``V`` virtual channels per physical channel and
  credit-style backpressure (a flit advances only when the downstream buffer
  has space — assumption (g));
* one flit per physical channel per cycle (virtual channels time-multiplex the
  link bandwidth);
* routing decision, virtual-channel allocation and switch traversal all happen
  within a cycle (the paper sets the router decision time ``Td`` to zero);
* messages whose required outgoing channels are faulty are absorbed by the
  local node's software messaging layer, which rewrites the header using the
  routing algorithm's re-routing policy and re-injects the message after Δ
  cycles, with priority over new traffic (assumption (i));
* messages are consumed immediately upon arrival at their destination
  (assumption (d)), and the mean latency counts generation to last-flit
  ejection.

Each simulation cycle runs five stages::

    generate -> inject -> route/allocate -> transfer -> drain

``generate`` draws Poisson arrivals, ``inject`` moves queued messages into
free injection channels, ``route/allocate`` performs routing computation and
virtual-channel allocation for waiting header flits, ``transfer`` moves at
most one flit per output physical channel, and ``drain`` consumes flits at
ejecting/absorbing routers and finalises deliveries and absorptions.

Flit-lite core
--------------
Flits are *not* materialised as objects: every in-flight wormhole segment is a
pair of counters on its :class:`~repro.network.virtual_channel.VirtualChannel`
(see that module for the representation), and ``transfer``/``drain`` move
counts instead of objects.  The RNG draw order — contention sets, allocation
shuffles, destination picks — is exactly that of the historical object-based
engine, so all metrics are bit-identical for a given seed (pinned by
``tests/test_engine_golden.py``).

Idle skip-ahead: when the network is completely empty (no queued, injecting or
travelling message) and every traffic source can report its next arrival cycle
(:meth:`~repro.traffic.generators.ArrivalStream.next_arrival_cycle`), ``step``
jumps the cycle counter straight to the cycle of the earliest next arrival
instead of spinning through empty stages.  The skipped cycles are exactly
those in which no stage would have had any effect and no RNG would have been
consumed, so the jump is invisible in the metrics; only wall-clock time (and
the number of ``step`` calls needed to cross an idle stretch) changes.
"""

from __future__ import annotations

import logging
import random
from math import isfinite
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.livelock import LivelockGuard
from repro.errors import ConfigurationError, DeadlockError, RoutingError, SimulationError
from repro.faults.model import FaultSet
from repro.metrics.collectors import MessageRecord, MetricsCollector, NetworkMetrics
from repro.network.message import Message
from repro.network.messaging_layer import MessagingLayer
from repro.network.router import Router
from repro.network.virtual_channel import (
    SINK_FAULT,
    SINK_FINAL,
    SINK_INTERMEDIATE,
    SINK_NONE,
    InjectionChannel,
    VirtualChannel,
)
from repro.routing.base import RoutingAlgorithm, RoutingDecision
from repro.routing.trace import format_trace
from repro.telemetry.metrics import metrics_registry
from repro.telemetry.profile import StageProfiler
from repro.topology.base import Topology
from repro.topology.channels import opposite_port
from repro.traffic.generators import TrafficGenerator
from repro.traffic.patterns import DestinationPattern

__all__ = ["SimulationEngine"]

logger = logging.getLogger(__name__)

_Channel = Union[VirtualChannel, InjectionChannel]


class SimulationEngine:
    """Flit-level simulator of one network configuration.

    Parameters
    ----------
    topology:
        The k-ary n-cube or mesh being simulated.
    routing:
        The routing algorithm (must have been constructed with the same
        topology and fault set).
    traffic:
        The arrival process (rate in messages/node/cycle).
    pattern:
        Destination pattern; faulty nodes must be excluded from it.
    faults:
        Static fault set (defaults to fault free).
    message_length:
        Message length ``M`` in flits.
    buffer_depth:
        Flit capacity of every input virtual-channel buffer.
    warmup_messages / measure_messages:
        The first ``warmup_messages`` generated messages are excluded from the
        statistics; the run stops once ``warmup_messages + measure_messages``
        messages have been delivered (or saturation/max-cycles kicks in).
    max_cycles:
        Hard cap on simulated cycles; reaching it marks the run as saturated.
    reinjection_delay:
        The software re-injection overhead Δ (cycles); the paper uses 0.
    seed:
        Seed for both the traffic and the allocation randomness.
    livelock_guard:
        Bound on per-message absorptions; defaults to the bound derived from
        the topology and fault set.
    saturation_queue_limit:
        Average pending new messages per node above which the network is
        declared saturated and the run stops early (keeps sweeps past the
        saturation point affordable).  ``None`` disables the early stop.
    max_absorptions_per_message:
        Safety valve against livelocked fault patterns (see the ROADMAP's
        swbased-deterministic livelock): a message absorbed more than this
        many times raises a diagnostic :class:`~repro.errors.SimulationError`
        naming the node, message and absorption count instead of spinning
        until ``max_cycles``.  Checked before the (usually much tighter)
        ``livelock_guard`` bound so it also protects runs that install a
        permissive custom guard.  ``None`` disables the valve.
    drain_max_cycles:
        Default cycle budget of :meth:`drain`.  ``None`` scales the historical
        50 000-cycle budget with the network size
        (``max(50_000, DRAIN_CYCLES_PER_NODE * num_nodes)``): 50 000 cycles is
        plenty for the small meshes the tests drive by hand but too small for
        a loaded 16×16 mesh at saturation, whose backlog alone needs more
        cycles than that to serialise through the network.
    keep_records:
        Retain every delivered message's :class:`MessageRecord` (tests).
    stage_profiler:
        Opt-in :class:`~repro.telemetry.profile.StageProfiler` accumulating
        per-stage wall time.  When given, ``step`` is swapped for a timed
        variant at construction; when ``None`` (the default) the untimed
        hot loop runs with zero added cost.
    """

    #: Cycles without any flit movement or delivery before a deadlock is declared.
    DEADLOCK_WATCHDOG = 10_000
    #: How often (in cycles) the saturation early-stop condition is evaluated.
    SATURATION_CHECK_PERIOD = 200
    #: Historical (small-mesh) default budget of :meth:`drain`.
    DRAIN_MAX_CYCLES = 50_000
    #: Per-node drain budget for networks too large for the historical value:
    #: at the saturation early-stop point each node may hold ~25 queued
    #: messages of up to 32 flits, and a drained flit needs a handful of
    #: cycles of link bandwidth under contention — 400 cycles/node covers that
    #: with slack while keeping ``50_000`` the default up to 125 nodes.
    DRAIN_CYCLES_PER_NODE = 400

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        traffic: TrafficGenerator,
        pattern: DestinationPattern,
        faults: Optional[FaultSet] = None,
        message_length: int = 32,
        buffer_depth: int = 2,
        warmup_messages: int = 100,
        measure_messages: int = 1000,
        max_cycles: int = 200_000,
        reinjection_delay: int = 0,
        seed: int = 1,
        livelock_guard: Optional[LivelockGuard] = None,
        saturation_queue_limit: Optional[float] = 25.0,
        max_absorptions_per_message: Optional[int] = None,
        drain_max_cycles: Optional[int] = None,
        keep_records: bool = False,
        stage_profiler: Optional[StageProfiler] = None,
    ) -> None:
        if message_length < 1:
            raise ConfigurationError("message_length must be at least 1 flit")
        if buffer_depth < 1:
            raise ConfigurationError("buffer_depth must be at least 1 flit")
        if measure_messages < 1:
            raise ConfigurationError("measure_messages must be positive")
        if max_absorptions_per_message is not None and max_absorptions_per_message < 1:
            raise ConfigurationError(
                "max_absorptions_per_message must be positive (or None to disable)"
            )
        if drain_max_cycles is not None and drain_max_cycles < 1:
            raise ConfigurationError(
                "drain_max_cycles must be positive (or None for the size-scaled default)"
            )
        self._topology = topology
        self._routing = routing
        self._traffic = traffic
        self._pattern = pattern
        self._faults = faults if faults is not None else FaultSet.empty()
        self._message_length = message_length
        self._buffer_depth = buffer_depth
        self._warmup_messages = warmup_messages
        self._measure_messages = measure_messages
        self._max_cycles = max_cycles
        self._seed = seed
        self._saturation_queue_limit = saturation_queue_limit
        self._max_absorptions_per_message = max_absorptions_per_message
        self._drain_max_cycles = (
            drain_max_cycles
            if drain_max_cycles is not None
            else max(self.DRAIN_MAX_CYCLES, self.DRAIN_CYCLES_PER_NODE * topology.num_nodes)
        )
        self._num_vcs = routing.num_virtual_channels

        self._rng = np.random.default_rng(seed)
        self._rand = random.Random(seed ^ 0x5EED)
        # Bound method, looked up once: the transfer stage draws it per
        # contended output port per cycle.
        self._randrange = self._rand.randrange

        self._healthy_nodes: List[int] = [
            n for n in topology.nodes() if not self._faults.is_node_faulty(n)
        ]
        if len(self._healthy_nodes) < 2:
            raise ConfigurationError("at least two healthy nodes are required")

        self._routers: List[Router] = [
            Router(
                node,
                topology.num_network_ports,
                self._num_vcs,
                buffer_depth,
                faulty=self._faults.is_node_faulty(node),
            )
            for node in topology.nodes()
        ]
        self._layers: List[MessagingLayer] = [
            MessagingLayer(node, reinjection_delay) for node in topology.nodes()
        ]
        self._streams = {
            node: traffic.make_source(np.random.default_rng(self._rng.integers(2**63)))
            for node in self._healthy_nodes
        }
        self._collector = MetricsCollector(
            num_nodes=len(self._healthy_nodes),
            warmup_messages=warmup_messages,
            keep_records=keep_records,
        )
        self._livelock = livelock_guard if livelock_guard is not None else LivelockGuard(
            topology=topology, faults=self._faults
        )

        # Active-channel collections are insertion-ordered sets realised as
        # plain dicts (value always None): a ``set`` of objects would iterate
        # in address order, which differs between otherwise identical runs and
        # would break seed-for-seed reproducibility of the random allocation
        # decisions, while dict insertion order is a pure function of the
        # simulation history.  Membership add is ``d[item] = None`` (re-adding
        # an existing member keeps its original position, exactly like
        # ``setdefault``), removal is ``d.pop(item, None)``.
        self._active_vcs: Dict[VirtualChannel, None] = {}
        self._active_injection: Dict[InjectionChannel, None] = {}
        self._pending_nodes: Set[int] = set()

        # Per-cycle generation scan order, prebuilt so the generate stage does
        # no per-node dict lookups, plus a per-node cache of the next arrival
        # cycle (``None`` for streams that must be polled every cycle, e.g.
        # Bernoulli): most generate-stage visits then cost one comparison.
        self._generation_scan = [
            (node, self._streams[node], self._layers[node])
            for node in self._healthy_nodes
        ]
        self._next_arrival_cache: List[Optional[float]] = [
            stream.next_arrival_cycle() for _, stream, _ in self._generation_scan
        ]
        # Reused per-cycle switch-allocation request table (hot path: avoids
        # one dict allocation per cycle).
        self._requests: Dict[Tuple[int, int], List[_Channel]] = {}
        # Idle skip-ahead is possible only when every arrival stream can
        # report its next arrival cycle (Bernoulli streams, which draw the RNG
        # every cycle, cannot — skipping would change the draw sequence).
        self._skip_idle = traffic.rate > 0 and all(
            stream.next_arrival_cycle() is not None for stream in self._streams.values()
        )

        self._cycle = 0
        self._last_progress_cycle = 0
        self._saturated = False
        self._flit_transfers = 0
        self._stop_generation = False

        self._stage_profiler = stage_profiler
        if stage_profiler is not None:
            # The instance attribute shadows the class method, so the
            # untimed ``step`` below stays byte-identical when profiling is
            # off — the ``header.trace is None`` pattern applied to methods.
            self.step = self._step_profiled  # type: ignore[method-assign]

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #
    @property
    def cycle(self) -> int:
        """The current simulation cycle."""
        return self._cycle

    @property
    def collector(self) -> MetricsCollector:
        """The metrics collector (live view of statistics)."""
        return self._collector

    @property
    def routers(self) -> List[Router]:
        """Per-node routers (for tests and white-box inspection)."""
        return self._routers

    @property
    def messaging_layers(self) -> List[MessagingLayer]:
        """Per-node software messaging layers."""
        return self._layers

    @property
    def saturated(self) -> bool:
        """True once the engine has declared the network saturated."""
        return self._saturated

    @property
    def flit_transfers(self) -> int:
        """Total number of flit-link traversals simulated so far."""
        return self._flit_transfers

    def inject_message(self, source: int, destination: int) -> Message:
        """Hand-inject a message (used by tests and the examples).

        The message is queued at ``source`` exactly as if the PE had generated
        it this cycle; it is *not* exempt from warm-up accounting.
        """
        if self._faults.is_node_faulty(source):
            raise ConfigurationError(f"source node {source} is faulty")
        if self._faults.is_node_faulty(destination):
            raise ConfigurationError(f"destination node {destination} is faulty")
        message = self._new_message(source, destination)
        self._layers[source].enqueue_new(message)
        self._pending_nodes.add(source)
        return message

    def run(self) -> NetworkMetrics:
        """Run the simulation to completion and return the aggregate metrics."""
        target = self._warmup_messages + self._measure_messages
        while self._collector.delivered_messages < target and self._cycle < self._max_cycles:
            self.step()
            if self._saturated:
                break
            if self._idle() and self._traffic.rate <= 0:
                break
        if self._collector.delivered_messages < target and not self._saturated:
            # Ran out of cycles before delivering the requested messages.
            self._saturated = self._cycle >= self._max_cycles
        metrics = self._collector.finalize(
            total_cycles=self._cycle,
            message_length=self._message_length,
            offered_load=self._traffic.rate,
            saturated=self._saturated,
        )
        rerouting_stats = getattr(self._routing, "rerouting_stats", None)
        if callable(rerouting_stats):
            counters = rerouting_stats()
            if counters:
                metrics.rerouting = dict(counters)
        registry = metrics_registry()
        if registry is not None:
            self._emit_run_metrics(registry, metrics)
        return metrics

    def step(self) -> None:
        """Advance the simulation by one cycle.

        When the network is idle the cycle counter may first jump forward to
        just before the next traffic arrival (idle skip-ahead, see the module
        docstring); the subsequent stages then run at the arrival cycle.
        """
        if (
            self._skip_idle
            and not self._stop_generation
            and not self._active_vcs
            and not self._active_injection
            and not self._pending_nodes
        ):
            self._skip_to_next_arrival()
        self._cycle += 1
        cycle = self._cycle
        if not self._stop_generation:
            self._generate_traffic(cycle)
        self._inject(cycle)
        self._route_and_allocate(cycle)
        self._transfer(cycle)
        self._drain(cycle)
        self._check_watchdog(cycle)
        if (
            self._saturation_queue_limit is not None
            and cycle % self.SATURATION_CHECK_PERIOD == 0
        ):
            self._check_saturation()

    def _step_profiled(self) -> None:
        """``step`` with a perf_counter pair around each pipeline stage.

        Installed over ``step`` in ``__init__`` only when a stage profiler
        was supplied; must mirror :meth:`step` exactly apart from timing.
        """
        profiler = self._stage_profiler
        record = profiler.record
        if (
            self._skip_idle
            and not self._stop_generation
            and not self._active_vcs
            and not self._active_injection
            and not self._pending_nodes
        ):
            self._skip_to_next_arrival()
        self._cycle += 1
        cycle = self._cycle
        if not self._stop_generation:
            start = perf_counter()
            self._generate_traffic(cycle)
            record("generate", perf_counter() - start)
        start = perf_counter()
        self._inject(cycle)
        record("inject", perf_counter() - start)
        start = perf_counter()
        self._route_and_allocate(cycle)
        record("route_allocate", perf_counter() - start)
        start = perf_counter()
        self._transfer(cycle)
        record("transfer", perf_counter() - start)
        start = perf_counter()
        self._drain(cycle)
        record("drain", perf_counter() - start)
        self._check_watchdog(cycle)
        if (
            self._saturation_queue_limit is not None
            and cycle % self.SATURATION_CHECK_PERIOD == 0
        ):
            self._check_saturation()

    def _emit_run_metrics(self, registry, metrics: NetworkMetrics) -> None:
        """Fold this run's totals into the process metrics registry.

        Called once at the end of :meth:`run` (never per cycle), so the
        engine's instrumented cost is a single ``metrics_registry()`` check
        per run when telemetry is off.
        """
        registry.counter(
            "repro_engine_runs_total",
            "Completed engine runs.",
            labelnames=("saturated",),
        ).inc(saturated="true" if self._saturated else "false")
        registry.counter(
            "repro_engine_cycles_total", "Simulated engine cycles."
        ).inc(self._cycle)
        registry.counter(
            "repro_engine_flit_transfers_total", "Flit-link traversals simulated."
        ).inc(self._flit_transfers)
        registry.counter(
            "repro_engine_messages_delivered_total", "Messages delivered."
        ).inc(metrics.delivered_messages)
        registry.counter(
            "repro_engine_absorptions_total",
            "Software absorption events by cause.",
            labelnames=("cause",),
        ).inc(metrics.messages_absorbed_fault, cause="fault")
        registry.counter(
            "repro_engine_absorptions_total",
            "Software absorption events by cause.",
            labelnames=("cause",),
        ).inc(metrics.messages_absorbed_intermediate, cause="intermediate")
        if metrics.rerouting:
            reroutes = registry.counter(
                "repro_engine_reroutes_total",
                "Header rewrites by rerouting action.",
                labelnames=("action",),
            )
            for action, count in metrics.rerouting.items():
                reroutes.inc(count, action=str(action))
        if self._stage_profiler is not None:
            stage_seconds = registry.counter(
                "repro_engine_stage_seconds_total",
                "Wall-clock seconds spent per engine pipeline stage.",
                labelnames=("stage",),
            )
            for stage, stat in self._stage_profiler.stages.items():
                stage_seconds.inc(stat.seconds, stage=stage)

    @property
    def drain_max_cycles(self) -> int:
        """The resolved default cycle budget of :meth:`drain`."""
        return self._drain_max_cycles

    def drain(self, max_cycles: Optional[int] = None) -> None:
        """Stop traffic generation and run until the network is empty.

        Used by tests and examples that inject a fixed set of messages by hand
        and want every one of them delivered.  ``max_cycles`` defaults to the
        engine's ``drain_max_cycles`` budget — the historical 50 000 cycles on
        small networks, scaled up with the node count on large ones (a loaded
        16×16 mesh at saturation needs more than 50 000 cycles to empty).
        """
        if max_cycles is None:
            max_cycles = self._drain_max_cycles
        self._stop_generation = True
        deadline = self._cycle + max_cycles
        while not self._idle() and self._cycle < deadline:
            self.step()
        self._stop_generation = False

    def _skip_to_next_arrival(self) -> None:
        """Jump ``_cycle`` to just before the earliest next traffic arrival.

        Only called when the network is verifiably idle.  The skipped cycles
        are pure no-ops in the original cycle-by-cycle execution (no stage
        touches state, no RNG is drawn, the watchdog keeps resetting), so
        jumping over them is metric- and RNG-neutral.  The jump is clamped so
        a run that would have spun to ``max_cycles`` still ends its last step
        exactly there.
        """
        nxt = min(
            stream.next_arrival_cycle() for stream in self._streams.values()
        )
        if not isfinite(nxt):
            target = self._max_cycles - 1
        else:
            target = min(int(nxt) - 1, self._max_cycles - 1)
        if target > self._cycle:
            self._cycle = target
            # Mirrors the per-cycle watchdog reset an idle network performs.
            self._last_progress_cycle = target

    # ------------------------------------------------------------------ #
    # stage 1: traffic generation
    # ------------------------------------------------------------------ #
    def _new_message(self, source: int, destination: int) -> Message:
        header = self._routing.initial_header(source, destination)
        message_id = self._collector.message_generated()
        return Message(
            message_id=message_id,
            source=source,
            destination=destination,
            length=self._message_length,
            created=self._cycle,
            header=header,
        )

    def _generate_traffic(self, cycle: int) -> None:
        if self._traffic.rate <= 0:
            return
        # ``_generation_scan`` is the prebuilt (node, stream, layer) list and
        # ``_next_arrival_cache`` holds each stream's known next arrival
        # cycle, so a node without an arrival this cycle costs one comparison
        # (streams that cannot predict arrivals have ``None`` cached and are
        # polled every cycle, preserving their RNG draw sequence).
        cache = self._next_arrival_cache
        for i, (node, stream, layer) in enumerate(self._generation_scan):
            nxt = cache[i]
            if nxt is not None and cycle < nxt:
                continue
            arrivals = stream.arrivals_until(cycle)
            if nxt is not None:
                cache[i] = stream.next_arrival_cycle()
            if not arrivals:
                continue
            for _ in range(arrivals):
                destination = self._pattern.pick(node, self._rng)
                if destination is None or self._faults.is_node_faulty(destination):
                    continue
                layer.enqueue_new(self._new_message(node, destination))
            self._pending_nodes.add(node)

    # ------------------------------------------------------------------ #
    # stage 2: injection-channel assignment
    # ------------------------------------------------------------------ #
    def _inject(self, cycle: int) -> None:
        if not self._pending_nodes:
            return
        satisfied: List[int] = []
        for node in self._pending_nodes:
            layer = self._layers[node]
            router = self._routers[node]
            while layer.peek_ready(cycle):
                channel = router.free_injection_channel()
                if channel is None:
                    break
                message = layer.next_message(cycle)
                if message is None:  # pragma: no cover - peek_ready guards this
                    break
                channel.load(message)
                if message.injected < 0:
                    message.injected = cycle
                self._active_injection[channel] = None
                self._last_progress_cycle = cycle
            if not layer.pending_total:
                satisfied.append(node)
        for node in satisfied:
            self._pending_nodes.discard(node)

    # ------------------------------------------------------------------ #
    # stage 3: routing computation and virtual-channel allocation
    # ------------------------------------------------------------------ #
    def _route_and_allocate(self, cycle: int) -> None:
        # Injection channels first: re-injected messages already had priority
        # when they were queued, so plain iteration order is fine here.  The
        # ordered sets are iterated directly (no per-cycle list copy); the
        # only mutation — an injection channel released by an immediate
        # absorption — is deferred until after the loop.
        released: List[InjectionChannel] = []
        for channel in self._active_injection:
            # Inlined ``channel.needs_routing`` (hot loop, property overhead).
            if channel.out_port >= 0 or channel.flits_sent != 0 or channel.message is None:
                continue
            if self._route_injection_channel(channel, cycle):
                released.append(channel)
        for channel in released:
            self._active_injection.pop(channel, None)
        for vc in self._active_vcs:
            # Inlined ``vc.needs_routing`` (hot loop, property overhead).
            if vc.out_port >= 0 or vc.sink != SINK_NONE:
                continue
            if vc.flits_removed == 0 and vc.flits_received > 0:
                self._route_network_vc(vc, cycle)

    def _route_injection_channel(self, channel: InjectionChannel, cycle: int) -> bool:
        """Route one waiting injection channel; True when it was released."""
        message = channel.message
        assert message is not None
        header = message.header
        node = channel.node

        # ``route`` is a pure function of (node, header) and a waiting
        # header cannot change, so a decision whose allocation failed is
        # cached on the channel and reused until a VC frees up.
        decision = channel.pending_decision
        if decision is None:
            if node == header.target:
                # The only way a message can target its own source is through
                # an intermediate address installed by the software layer.
                if header.is_intermediate:
                    self._routing.on_intermediate_target_reached(node, header)
                return False

            decision = self._routing.route(node, header)
            if decision.deliver:  # pragma: no cover - target check covers this
                return False
            if decision.absorb:
                # The message never entered the network: the software layer
                # handles it immediately (still counted as an absorption).
                channel.release()
                self._register_absorption(message, node, fault=True)
                self._routing.rewrite_after_absorption(node, header)
                self._layers[node].enqueue_reinjection(message, cycle)
                self._pending_nodes.add(node)
                return True
        allocation = self._allocate(node, decision, message)
        if allocation is not None:
            channel.assign_output(*allocation)
        else:
            channel.pending_decision = decision
        return False

    def _route_network_vc(self, vc: VirtualChannel, cycle: int) -> None:
        message = vc.owner
        assert message is not None
        header = message.header
        node = vc.node

        # Same decision cache as for injection channels: the header waiting at
        # this buffer cannot change, so a failed allocation keeps the decision.
        decision = vc.pending_decision
        if decision is None:
            if node == header.target:
                vc.sink = SINK_FINAL if not header.is_intermediate else SINK_INTERMEDIATE
                return

            decision = self._routing.route(node, header)
            if decision.deliver:  # pragma: no cover - target check covers this
                vc.sink = SINK_FINAL if not header.is_intermediate else SINK_INTERMEDIATE
                return
            if decision.absorb:
                vc.sink = SINK_FAULT
                return
        allocation = self._allocate(node, decision, message)
        if allocation is not None:
            vc.assign_output(*allocation)
        else:
            vc.pending_decision = decision

    def _allocate(
        self, node: int, decision: RoutingDecision, message: Message
    ) -> Optional[Tuple[int, int, int, VirtualChannel]]:
        """Try to acquire a downstream virtual channel for a routed header.

        Candidates are grouped by priority (adaptive channels before the
        escape channel for Duato's Protocol); within a group the physical
        channel and the virtual channel are chosen uniformly at random among
        the free options, matching assumption (e) of the paper.

        Returns ``(downstream node, output port, virtual channel index,
        downstream VC object)`` or ``None`` when every candidate VC is
        currently owned.  The RNG draw sequence — one shuffle per multi-member
        priority group, one ``randrange`` per winning candidate — is the
        historical one; the fast paths below only skip work that consumed no
        randomness (the stable sort of an already-single-priority list, and
        the materialised free-VC list).
        """
        candidates = decision.candidates
        if len(candidates) > 1:
            first_priority = candidates[0].priority
            if any(c.priority != first_priority for c in candidates[1:]):
                candidates = sorted(candidates, key=lambda c: c.priority)
            # else: all candidates share one priority; a stable sort would
            # return them unchanged, so skip it (common fast path).
        index = 0
        num_candidates = len(candidates)
        while index < num_candidates:
            # Slice out one priority group.
            priority = candidates[index].priority
            group = []
            while index < num_candidates and candidates[index].priority == priority:
                group.append(candidates[index])
                index += 1
            self._rand.shuffle(group)
            for candidate in group:
                down_node = self._topology.neighbor_via_port(node, candidate.port)
                if down_node is None:
                    continue
                down_router = self._routers[down_node]
                if down_router.faulty:
                    raise RoutingError(
                        f"routing offered a candidate through faulty node {down_node} "
                        f"from node {node}"
                    )
                down_vcs = down_router.input_vcs[opposite_port(candidate.port)]
                # Count the free VCs and pick the k-th free one without
                # building an intermediate list; the draw below is identical
                # to the historical ``free[randrange(len(free))]``.
                free_count = 0
                for v in candidate.virtual_channels:
                    if down_vcs[v].owner is None:
                        free_count += 1
                if not free_count:
                    continue
                k = self._rand.randrange(free_count)
                for v in candidate.virtual_channels:
                    chosen = down_vcs[v]
                    if chosen.owner is None:
                        if k == 0:
                            chosen.reserve(message)
                            return down_node, candidate.port, v, chosen
                        k -= 1
        return None

    # ------------------------------------------------------------------ #
    # stage 4: switch allocation and flit transfer
    # ------------------------------------------------------------------ #
    def _transfer(self, cycle: int) -> None:
        # The request table is collected in full before any flit moves, so
        # downstream-space checks always see start-of-cycle occupancy and a
        # flit arriving this cycle can never be forwarded again this cycle
        # (requests for an empty buffer are never filed).  ``self._requests``
        # is reused across cycles to avoid a per-cycle dict allocation.
        requests = self._requests

        for channel in self._active_injection:
            if channel.out_port < 0 or channel.flits_remaining <= 0:
                continue
            down_vc = channel.down_vc
            if down_vc.flits_received - down_vc.flits_removed < down_vc.capacity:
                requests.setdefault(channel.out_key, []).append(channel)

        for vc in self._active_vcs:
            if vc.out_port < 0 or vc.flits_received <= vc.flits_removed:
                continue
            down_vc = vc.down_vc
            if down_vc.flits_received - down_vc.flits_removed < down_vc.capacity:
                requests.setdefault(vc.out_key, []).append(vc)

        # Winner selection and the flit move itself, inlined (one call frame
        # per winner otherwise; this runs tens of times per cycle).  Moving a
        # flit is a pair of counter bumps: the winner's sent/removed counter
        # and the downstream received counter.  The downstream buffer cannot
        # overflow: space was checked against start-of-cycle occupancy above,
        # and each downstream VC has exactly one feeding channel (its owner's
        # wormhole segment), so at most one flit arrives per cycle.
        randrange = self._randrange
        active_vcs = self._active_vcs
        transfers = 0
        for contenders in requests.values():
            channel = (
                contenders[0]
                if len(contenders) == 1
                else contenders[randrange(len(contenders))]
            )
            down_vc = channel.down_vc
            injection = type(channel) is InjectionChannel
            if injection:
                message = channel.message
                index = channel.flits_sent
                channel.flits_sent = index + 1
            else:
                message = channel.owner
                index = channel.flits_removed
                channel.flits_removed = index + 1
            down_vc.flits_received += 1
            active_vcs[down_vc] = None
            transfers += 1
            if index == 0:  # the header flit crossed a physical channel
                message.hops += 1
            if index == message.length - 1:  # the tail left; free the segment
                channel.release()
                if injection:
                    self._active_injection.pop(channel, None)
                else:
                    active_vcs.pop(channel, None)
        if transfers:
            self._flit_transfers += transfers
            self._last_progress_cycle = cycle
        requests.clear()

    # ------------------------------------------------------------------ #
    # stage 5: ejection / absorption drain
    # ------------------------------------------------------------------ #
    def _drain(self, cycle: int) -> None:
        finished: List[VirtualChannel] = []
        for vc in self._active_vcs:
            if vc.sink == SINK_NONE or vc.flits_received <= vc.flits_removed:
                continue
            tail_seen = vc.drain_buffered()
            self._last_progress_cycle = cycle
            if tail_seen:
                finished.append(vc)

        for vc in finished:
            message = vc.owner
            assert message is not None
            node = vc.node
            sink = vc.sink
            vc.release()
            self._active_vcs.pop(vc, None)

            if sink == SINK_FINAL:
                self._collector.message_delivered(
                    MessageRecord(
                        message_id=message.message_id,
                        source=message.source,
                        destination=message.destination,
                        length=message.length,
                        created=message.created,
                        injected=message.injected,
                        delivered=cycle,
                        hops=message.hops,
                        absorptions=message.absorptions,
                    )
                )
            elif sink == SINK_INTERMEDIATE:
                self._register_absorption(message, node, fault=False)
                self._routing.on_intermediate_target_reached(node, message.header)
                self._layers[node].enqueue_reinjection(message, cycle)
                self._pending_nodes.add(node)
            elif sink == SINK_FAULT:
                self._register_absorption(message, node, fault=True)
                self._routing.rewrite_after_absorption(node, message.header)
                self._layers[node].enqueue_reinjection(message, cycle)
                self._pending_nodes.add(node)

    def _register_absorption(self, message: Message, node: int, fault: bool) -> None:
        message.absorptions += 1
        message.header.absorptions += 1
        self._collector.message_absorbed(message.message_id, node=node, fault=fault)
        trace = message.header.trace if message.header.trace is not None else ()
        cap = self._max_absorptions_per_message
        if cap is not None and message.absorptions > cap:
            detail = (
                f"message {message.message_id} ({message.source} -> "
                f"{message.destination}) was absorbed {message.absorptions} times, "
                f"most recently at node {node}, exceeding "
                f"max_absorptions_per_message={cap}; raise the cap only if the "
                f"pattern is known to converge"
            )
            rendered = format_trace(trace)
            if rendered:
                detail = f"{detail}\n{rendered}"
            raise SimulationError(detail)
        self._livelock.check(message.message_id, message.absorptions, trace=trace)

    # ------------------------------------------------------------------ #
    # termination conditions
    # ------------------------------------------------------------------ #
    def _idle(self) -> bool:
        """True when no message is queued, injecting or travelling."""
        return (
            not self._active_vcs
            and not self._active_injection
            and not self._pending_nodes
        )

    def _check_watchdog(self, cycle: int) -> None:
        if self._idle():
            self._last_progress_cycle = cycle
            return
        if cycle - self._last_progress_cycle > self.DEADLOCK_WATCHDOG:
            in_flight = len(self._active_vcs) + len(self._active_injection)
            raise DeadlockError(
                f"no flit moved for {self.DEADLOCK_WATCHDOG} cycles at cycle {cycle} "
                f"with {in_flight} channels still occupied; this indicates a protocol "
                f"bug or an unsupported configuration"
            )

    def _check_saturation(self) -> None:
        limit = self._saturation_queue_limit
        if limit is None:
            return
        pending = sum(self._layers[node].pending_new for node in self._healthy_nodes)
        if pending / len(self._healthy_nodes) > limit:
            if not self._saturated:
                logger.debug(
                    "network saturated at cycle %d: %.1f pending messages/node "
                    "exceeds the limit of %.1f",
                    self._cycle,
                    pending / len(self._healthy_nodes),
                    limit,
                )
            self._saturated = True
