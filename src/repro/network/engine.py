"""The cycle-driven, flit-level wormhole simulation engine.

The engine implements the network model of Section 2 and the simulation
methodology of Section 5 of the paper:

* wormhole switching with ``V`` virtual channels per physical channel and
  credit-style backpressure (a flit advances only when the downstream buffer
  has space — assumption (g));
* one flit per physical channel per cycle (virtual channels time-multiplex the
  link bandwidth);
* routing decision, virtual-channel allocation and switch traversal all happen
  within a cycle (the paper sets the router decision time ``Td`` to zero);
* messages whose required outgoing channels are faulty are absorbed by the
  local node's software messaging layer, which rewrites the header using the
  routing algorithm's re-routing policy and re-injects the message after Δ
  cycles, with priority over new traffic (assumption (i));
* messages are consumed immediately upon arrival at their destination
  (assumption (d)), and the mean latency counts generation to last-flit
  ejection.

Each simulation cycle runs five stages::

    generate -> inject -> route/allocate -> transfer -> drain

``generate`` draws Poisson arrivals, ``inject`` moves queued messages into
free injection channels, ``route/allocate`` performs routing computation and
virtual-channel allocation for waiting header flits, ``transfer`` moves at
most one flit per output physical channel, and ``drain`` consumes flits at
ejecting/absorbing routers and finalises deliveries and absorptions.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.livelock import LivelockGuard
from repro.errors import ConfigurationError, DeadlockError, RoutingError
from repro.faults.model import FaultSet
from repro.metrics.collectors import MessageRecord, MetricsCollector, NetworkMetrics
from repro.network.message import Message
from repro.network.messaging_layer import MessagingLayer
from repro.network.router import Router
from repro.network.virtual_channel import (
    SINK_FAULT,
    SINK_FINAL,
    SINK_INTERMEDIATE,
    SINK_NONE,
    InjectionChannel,
    VirtualChannel,
)
from repro.routing.base import RoutingAlgorithm, RoutingDecision
from repro.topology.base import Topology
from repro.topology.channels import opposite_port
from repro.traffic.generators import TrafficGenerator
from repro.traffic.patterns import DestinationPattern

__all__ = ["SimulationEngine"]

_Channel = Union[VirtualChannel, InjectionChannel]


class _OrderedSet:
    """Insertion-ordered set of channels.

    The engine iterates its active-channel collections every cycle; a plain
    ``set`` of objects would iterate in address order, which differs between
    otherwise identical runs and would break seed-for-seed reproducibility of
    the random allocation decisions.  A dict-backed ordered set keeps the
    iteration order a pure function of the simulation history.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: Dict[object, None] = {}

    def add(self, item) -> None:
        self._items.setdefault(item, None)

    def discard(self, item) -> None:
        self._items.pop(item, None)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item) -> bool:
        return item in self._items


class SimulationEngine:
    """Flit-level simulator of one network configuration.

    Parameters
    ----------
    topology:
        The k-ary n-cube or mesh being simulated.
    routing:
        The routing algorithm (must have been constructed with the same
        topology and fault set).
    traffic:
        The arrival process (rate in messages/node/cycle).
    pattern:
        Destination pattern; faulty nodes must be excluded from it.
    faults:
        Static fault set (defaults to fault free).
    message_length:
        Message length ``M`` in flits.
    buffer_depth:
        Flit capacity of every input virtual-channel buffer.
    warmup_messages / measure_messages:
        The first ``warmup_messages`` generated messages are excluded from the
        statistics; the run stops once ``warmup_messages + measure_messages``
        messages have been delivered (or saturation/max-cycles kicks in).
    max_cycles:
        Hard cap on simulated cycles; reaching it marks the run as saturated.
    reinjection_delay:
        The software re-injection overhead Δ (cycles); the paper uses 0.
    seed:
        Seed for both the traffic and the allocation randomness.
    livelock_guard:
        Bound on per-message absorptions; defaults to the bound derived from
        the topology and fault set.
    saturation_queue_limit:
        Average pending new messages per node above which the network is
        declared saturated and the run stops early (keeps sweeps past the
        saturation point affordable).  ``None`` disables the early stop.
    keep_records:
        Retain every delivered message's :class:`MessageRecord` (tests).
    """

    #: Cycles without any flit movement or delivery before a deadlock is declared.
    DEADLOCK_WATCHDOG = 10_000
    #: How often (in cycles) the saturation early-stop condition is evaluated.
    SATURATION_CHECK_PERIOD = 200

    def __init__(
        self,
        topology: Topology,
        routing: RoutingAlgorithm,
        traffic: TrafficGenerator,
        pattern: DestinationPattern,
        faults: Optional[FaultSet] = None,
        message_length: int = 32,
        buffer_depth: int = 2,
        warmup_messages: int = 100,
        measure_messages: int = 1000,
        max_cycles: int = 200_000,
        reinjection_delay: int = 0,
        seed: int = 1,
        livelock_guard: Optional[LivelockGuard] = None,
        saturation_queue_limit: Optional[float] = 25.0,
        keep_records: bool = False,
    ) -> None:
        if message_length < 1:
            raise ConfigurationError("message_length must be at least 1 flit")
        if buffer_depth < 1:
            raise ConfigurationError("buffer_depth must be at least 1 flit")
        if measure_messages < 1:
            raise ConfigurationError("measure_messages must be positive")
        self._topology = topology
        self._routing = routing
        self._traffic = traffic
        self._pattern = pattern
        self._faults = faults if faults is not None else FaultSet.empty()
        self._message_length = message_length
        self._buffer_depth = buffer_depth
        self._warmup_messages = warmup_messages
        self._measure_messages = measure_messages
        self._max_cycles = max_cycles
        self._seed = seed
        self._saturation_queue_limit = saturation_queue_limit
        self._num_vcs = routing.num_virtual_channels

        self._rng = np.random.default_rng(seed)
        self._rand = random.Random(seed ^ 0x5EED)

        self._healthy_nodes: List[int] = [
            n for n in topology.nodes() if not self._faults.is_node_faulty(n)
        ]
        if len(self._healthy_nodes) < 2:
            raise ConfigurationError("at least two healthy nodes are required")

        self._routers: List[Router] = [
            Router(
                node,
                topology.num_network_ports,
                self._num_vcs,
                buffer_depth,
                faulty=self._faults.is_node_faulty(node),
            )
            for node in topology.nodes()
        ]
        self._layers: List[MessagingLayer] = [
            MessagingLayer(node, reinjection_delay) for node in topology.nodes()
        ]
        self._streams = {
            node: traffic.make_source(np.random.default_rng(self._rng.integers(2**63)))
            for node in self._healthy_nodes
        }
        self._collector = MetricsCollector(
            num_nodes=len(self._healthy_nodes),
            warmup_messages=warmup_messages,
            keep_records=keep_records,
        )
        self._livelock = livelock_guard if livelock_guard is not None else LivelockGuard(
            topology=topology, faults=self._faults
        )

        self._active_vcs = _OrderedSet()
        self._active_injection = _OrderedSet()
        self._pending_nodes: Set[int] = set()

        self._cycle = 0
        self._last_progress_cycle = 0
        self._saturated = False
        self._flit_transfers = 0
        self._stop_generation = False

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #
    @property
    def cycle(self) -> int:
        """The current simulation cycle."""
        return self._cycle

    @property
    def collector(self) -> MetricsCollector:
        """The metrics collector (live view of statistics)."""
        return self._collector

    @property
    def routers(self) -> List[Router]:
        """Per-node routers (for tests and white-box inspection)."""
        return self._routers

    @property
    def messaging_layers(self) -> List[MessagingLayer]:
        """Per-node software messaging layers."""
        return self._layers

    @property
    def saturated(self) -> bool:
        """True once the engine has declared the network saturated."""
        return self._saturated

    @property
    def flit_transfers(self) -> int:
        """Total number of flit-link traversals simulated so far."""
        return self._flit_transfers

    def inject_message(self, source: int, destination: int) -> Message:
        """Hand-inject a message (used by tests and the examples).

        The message is queued at ``source`` exactly as if the PE had generated
        it this cycle; it is *not* exempt from warm-up accounting.
        """
        if self._faults.is_node_faulty(source):
            raise ConfigurationError(f"source node {source} is faulty")
        if self._faults.is_node_faulty(destination):
            raise ConfigurationError(f"destination node {destination} is faulty")
        message = self._new_message(source, destination)
        self._layers[source].enqueue_new(message)
        self._pending_nodes.add(source)
        return message

    def run(self) -> NetworkMetrics:
        """Run the simulation to completion and return the aggregate metrics."""
        target = self._warmup_messages + self._measure_messages
        while self._collector.delivered_messages < target and self._cycle < self._max_cycles:
            self.step()
            if self._saturated:
                break
            if self._idle() and self._traffic.rate <= 0:
                break
        if self._collector.delivered_messages < target and not self._saturated:
            # Ran out of cycles before delivering the requested messages.
            self._saturated = self._cycle >= self._max_cycles
        return self._collector.finalize(
            total_cycles=self._cycle,
            message_length=self._message_length,
            offered_load=self._traffic.rate,
            saturated=self._saturated,
        )

    def step(self) -> None:
        """Advance the simulation by one cycle."""
        self._cycle += 1
        cycle = self._cycle
        if not self._stop_generation:
            self._generate_traffic(cycle)
        self._inject(cycle)
        self._route_and_allocate(cycle)
        self._transfer(cycle)
        self._drain(cycle)
        self._check_watchdog(cycle)
        if (
            self._saturation_queue_limit is not None
            and cycle % self.SATURATION_CHECK_PERIOD == 0
        ):
            self._check_saturation()

    def drain(self, max_cycles: int = 50_000) -> None:
        """Stop traffic generation and run until the network is empty.

        Used by tests and examples that inject a fixed set of messages by hand
        and want every one of them delivered.
        """
        self._stop_generation = True
        deadline = self._cycle + max_cycles
        while not self._idle() and self._cycle < deadline:
            self.step()
        self._stop_generation = False

    # ------------------------------------------------------------------ #
    # stage 1: traffic generation
    # ------------------------------------------------------------------ #
    def _new_message(self, source: int, destination: int) -> Message:
        header = self._routing.initial_header(source, destination)
        message_id = self._collector.message_generated()
        return Message(
            message_id=message_id,
            source=source,
            destination=destination,
            length=self._message_length,
            created=self._cycle,
            header=header,
        )

    def _generate_traffic(self, cycle: int) -> None:
        if self._traffic.rate <= 0:
            return
        for node in self._healthy_nodes:
            arrivals = self._streams[node].arrivals_until(cycle)
            if not arrivals:
                continue
            layer = self._layers[node]
            for _ in range(arrivals):
                destination = self._pattern.pick(node, self._rng)
                if destination is None or self._faults.is_node_faulty(destination):
                    continue
                layer.enqueue_new(self._new_message(node, destination))
            self._pending_nodes.add(node)

    # ------------------------------------------------------------------ #
    # stage 2: injection-channel assignment
    # ------------------------------------------------------------------ #
    def _inject(self, cycle: int) -> None:
        if not self._pending_nodes:
            return
        satisfied: List[int] = []
        for node in self._pending_nodes:
            layer = self._layers[node]
            router = self._routers[node]
            while layer.peek_ready(cycle):
                channel = router.free_injection_channel()
                if channel is None:
                    break
                message = layer.next_message(cycle)
                if message is None:  # pragma: no cover - peek_ready guards this
                    break
                channel.load(message)
                if message.injected < 0:
                    message.injected = cycle
                self._active_injection.add(channel)
                self._last_progress_cycle = cycle
            if not layer.pending_total:
                satisfied.append(node)
        for node in satisfied:
            self._pending_nodes.discard(node)

    # ------------------------------------------------------------------ #
    # stage 3: routing computation and virtual-channel allocation
    # ------------------------------------------------------------------ #
    def _route_and_allocate(self, cycle: int) -> None:
        # Injection channels first: re-injected messages already had priority
        # when they were queued, so plain iteration order is fine here.
        for channel in list(self._active_injection):
            if not channel.needs_routing:
                continue
            self._route_injection_channel(channel, cycle)
        for vc in list(self._active_vcs):
            if not vc.needs_routing:
                continue
            self._route_network_vc(vc, cycle)

    def _route_injection_channel(self, channel: InjectionChannel, cycle: int) -> None:
        message = channel.message
        assert message is not None
        header = message.header
        node = channel.node

        if node == header.target:
            # The only way a message can target its own source is through an
            # intermediate address installed by the software layer; resume.
            if header.is_intermediate:
                self._routing.on_intermediate_target_reached(node, header)
            return

        decision = self._routing.route(node, header)
        if decision.deliver:  # pragma: no cover - target check above covers this
            return
        if decision.absorb:
            # The message never entered the network: the software layer
            # handles it immediately (still counted as an absorption).
            channel.release()
            self._active_injection.discard(channel)
            self._register_absorption(message, node, fault=True)
            self._routing.rewrite_after_absorption(node, header)
            self._layers[node].enqueue_reinjection(message, cycle)
            self._pending_nodes.add(node)
            return
        allocation = self._allocate(node, decision, message)
        if allocation is not None:
            channel.assign_output(*allocation)

    def _route_network_vc(self, vc: VirtualChannel, cycle: int) -> None:
        head = vc.head_flit
        assert head is not None
        message = head.message
        header = message.header
        node = vc.node

        if node == header.target:
            vc.sink = SINK_FINAL if not header.is_intermediate else SINK_INTERMEDIATE
            return

        decision = self._routing.route(node, header)
        if decision.deliver:  # pragma: no cover - target check above covers this
            vc.sink = SINK_FINAL if not header.is_intermediate else SINK_INTERMEDIATE
            return
        if decision.absorb:
            vc.sink = SINK_FAULT
            return
        allocation = self._allocate(node, decision, message)
        if allocation is not None:
            vc.assign_output(*allocation)

    def _allocate(
        self, node: int, decision: RoutingDecision, message: Message
    ) -> Optional[Tuple[int, int, int]]:
        """Try to acquire a downstream virtual channel for a routed header.

        Candidates are grouped by priority (adaptive channels before the
        escape channel for Duato's Protocol); within a group the physical
        channel and the virtual channel are chosen uniformly at random among
        the free options, matching assumption (e) of the paper.

        Returns ``(downstream node, output port, virtual channel)`` or ``None``
        when every candidate VC is currently owned.
        """
        candidates = sorted(decision.candidates, key=lambda c: c.priority)
        index = 0
        while index < len(candidates):
            # Slice out one priority group.
            priority = candidates[index].priority
            group = []
            while index < len(candidates) and candidates[index].priority == priority:
                group.append(candidates[index])
                index += 1
            self._rand.shuffle(group)
            for candidate in group:
                down_node = self._topology.neighbor_via_port(node, candidate.port)
                if down_node is None:
                    continue
                down_router = self._routers[down_node]
                if down_router.faulty:
                    raise RoutingError(
                        f"routing offered a candidate through faulty node {down_node} "
                        f"from node {node}"
                    )
                down_port = opposite_port(candidate.port)
                free = [
                    v
                    for v in candidate.virtual_channels
                    if down_router.input_vcs[down_port][v].is_free
                ]
                if not free:
                    continue
                chosen = free[self._rand.randrange(len(free))]
                down_router.input_vcs[down_port][chosen].reserve(message)
                return down_node, candidate.port, chosen
        return None

    # ------------------------------------------------------------------ #
    # stage 4: switch allocation and flit transfer
    # ------------------------------------------------------------------ #
    def _transfer(self, cycle: int) -> None:
        requests: Dict[Tuple[int, int], List[_Channel]] = {}

        for channel in self._active_injection:
            if not channel.has_output or channel.flits_remaining <= 0:
                continue
            if self._downstream_has_space(channel):
                requests.setdefault((channel.node, channel.out_port), []).append(channel)

        for vc in self._active_vcs:
            if not vc.has_output or not vc.buffer:
                continue
            head = vc.buffer[0]
            if head.moved_cycle == cycle:
                continue
            if self._downstream_has_space(vc):
                requests.setdefault((vc.node, vc.out_port), []).append(vc)

        for (_node, _port), contenders in requests.items():
            winner = (
                contenders[0]
                if len(contenders) == 1
                else contenders[self._rand.randrange(len(contenders))]
            )
            self._move_one_flit(winner, cycle)

    def _downstream_has_space(self, channel: _Channel) -> bool:
        down_router = self._routers[channel.out_node]
        down_port = opposite_port(channel.out_port)
        return down_router.input_vcs[down_port][channel.out_vc].has_space

    def _move_one_flit(self, channel: _Channel, cycle: int) -> None:
        down_router = self._routers[channel.out_node]
        down_port = opposite_port(channel.out_port)
        down_vc = down_router.input_vcs[down_port][channel.out_vc]

        if isinstance(channel, InjectionChannel):
            message = channel.message
            assert message is not None
            flit = channel.next_flit()
        else:
            flit = channel.pop()
            message = flit.message

        flit.moved_cycle = cycle
        down_vc.push(flit)
        self._active_vcs.add(down_vc)
        self._flit_transfers += 1
        self._last_progress_cycle = cycle

        if flit.is_head:
            message.hops += 1
        if flit.is_tail:
            if isinstance(channel, InjectionChannel):
                channel.release()
                self._active_injection.discard(channel)
            else:
                channel.release()
                self._active_vcs.discard(channel)

    # ------------------------------------------------------------------ #
    # stage 5: ejection / absorption drain
    # ------------------------------------------------------------------ #
    def _drain(self, cycle: int) -> None:
        finished: List[VirtualChannel] = []
        for vc in self._active_vcs:
            if vc.sink == SINK_NONE or not vc.buffer:
                continue
            tail_seen = False
            while vc.buffer:
                flit = vc.pop()
                if flit.is_tail:
                    tail_seen = True
            self._last_progress_cycle = cycle
            if tail_seen:
                finished.append(vc)

        for vc in finished:
            message = vc.owner
            assert message is not None
            node = vc.node
            sink = vc.sink
            vc.release()
            self._active_vcs.discard(vc)

            if sink == SINK_FINAL:
                self._collector.message_delivered(
                    MessageRecord(
                        message_id=message.message_id,
                        source=message.source,
                        destination=message.destination,
                        length=message.length,
                        created=message.created,
                        injected=message.injected,
                        delivered=cycle,
                        hops=message.hops,
                        absorptions=message.absorptions,
                    )
                )
            elif sink == SINK_INTERMEDIATE:
                self._register_absorption(message, node, fault=False)
                self._routing.on_intermediate_target_reached(node, message.header)
                self._layers[node].enqueue_reinjection(message, cycle)
                self._pending_nodes.add(node)
            elif sink == SINK_FAULT:
                self._register_absorption(message, node, fault=True)
                self._routing.rewrite_after_absorption(node, message.header)
                self._layers[node].enqueue_reinjection(message, cycle)
                self._pending_nodes.add(node)

    def _register_absorption(self, message: Message, node: int, fault: bool) -> None:
        message.absorptions += 1
        message.header.absorptions += 1
        self._collector.message_absorbed(message.message_id)
        self._livelock.check(message.message_id, message.absorptions)

    # ------------------------------------------------------------------ #
    # termination conditions
    # ------------------------------------------------------------------ #
    def _idle(self) -> bool:
        """True when no message is queued, injecting or travelling."""
        return (
            not self._active_vcs
            and not self._active_injection
            and not self._pending_nodes
        )

    def _check_watchdog(self, cycle: int) -> None:
        if self._idle():
            self._last_progress_cycle = cycle
            return
        if cycle - self._last_progress_cycle > self.DEADLOCK_WATCHDOG:
            in_flight = len(self._active_vcs) + len(self._active_injection)
            raise DeadlockError(
                f"no flit moved for {self.DEADLOCK_WATCHDOG} cycles at cycle {cycle} "
                f"with {in_flight} channels still occupied; this indicates a protocol "
                f"bug or an unsupported configuration"
            )

    def _check_saturation(self) -> None:
        limit = self._saturation_queue_limit
        if limit is None:
            return
        pending = sum(self._layers[node].pending_new for node in self._healthy_nodes)
        if pending / len(self._healthy_nodes) > limit:
            self._saturated = True
