"""Flow-control digits (flits).

Wormhole switching breaks each message into flits: a header flit carrying the
routing information, followed by data flits and a tail flit, all of which
follow the header in a pipelined fashion (paper Section 2).  Flit objects are
created once per injection attempt of a message and physically move between
virtual-channel buffers; they are deliberately tiny (``__slots__`` only) since
hundreds of thousands of them are created during a benchmark run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.network.message import Message

__all__ = ["Flit"]


class Flit:
    """One flow-control digit of a message.

    Attributes
    ----------
    message:
        The message this flit belongs to.
    index:
        Position within the message (0 = header flit).
    is_head / is_tail:
        Role markers; a single-flit message is both head and tail.
    moved_cycle:
        Cycle at which the flit last traversed a physical channel.  The engine
        uses it to guarantee that a flit advances at most one hop per cycle
        regardless of the order routers are visited in.
    """

    __slots__ = ("message", "index", "is_head", "is_tail", "moved_cycle")

    def __init__(self, message: "Message", index: int, is_head: bool, is_tail: bool) -> None:
        self.message = message
        self.index = index
        self.is_head = is_head
        self.is_tail = is_tail
        self.moved_cycle = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "H" if self.is_head else ("T" if self.is_tail else "D")
        return f"Flit(msg={self.message.message_id}, {role}{self.index})"
