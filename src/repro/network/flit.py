"""Flow-control digits (flits) — descriptive value objects.

Wormhole switching breaks each message into flits: a header flit carrying the
routing information, followed by data flits and a tail flit, all of which
follow the header in a pipelined fashion (paper Section 2).

Since the flit-lite engine refactor the simulator does **not** materialise
flit objects on its hot path: in-flight wormhole segments are represented by
per-virtual-channel counters (see :mod:`repro.network.virtual_channel`), and a
flit's identity is just its integer index within the owning message — index 0
is the header, index ``length - 1`` the tail.  This class remains as the
explicit value-object form of that index for tests, tools and documentation:
:meth:`Message.make_flits <repro.network.message.Message.make_flits>` expands
a message into its flit sequence on demand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.network.message import Message

__all__ = ["Flit"]


class Flit:
    """One flow-control digit of a message.

    Attributes
    ----------
    message:
        The message this flit belongs to.
    index:
        Position within the message (0 = header flit).
    is_head / is_tail:
        Role markers; a single-flit message is both head and tail.
    """

    __slots__ = ("message", "index", "is_head", "is_tail")

    def __init__(self, message: "Message", index: int, is_head: bool, is_tail: bool) -> None:
        self.message = message
        self.index = index
        self.is_head = is_head
        self.is_tail = is_tail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "H" if self.is_head else ("T" if self.is_tail else "D")
        return f"Flit(msg={self.message.message_id}, {role}{self.index})"
