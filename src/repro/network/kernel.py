"""Struct-of-arrays engine kernel: the ``engine="array"`` implementation.

The dict engine (:class:`~repro.network.engine.SimulationEngine`) iterates
Python objects — one :class:`~repro.network.virtual_channel.VirtualChannel`
per input virtual channel — every cycle.  That representation is the
reference oracle: simple to inspect, easy to reason about, and pinned by the
golden-metrics matrix.  But at 16×16-mesh scale the per-cycle cost is
dominated by interpreter dispatch over those objects, not by the arithmetic
they perform.

:class:`ArraySimulationEngine` keeps the same facade (it *is* a
``SimulationEngine``; ``run``/``step``/``drain``/``inject_message`` and the
metrics surface are inherited) but stores all per-channel state in flat
numpy arrays indexed by a precomputed id table:

* network input VC ``(node, port, vc)`` → ``vid = (node * P + port) * V + vc``
* injection channel ``(node, k)``       → ``iid = node * V + k``
* in the transfer stage's combined request array an injection channel is
  addressed as ``N*P*V + iid`` so one winner array covers both kinds.

Per-``vid`` arrays hold the occupancy counters (``flits_received`` /
``flits_removed``), the owning message length, the output assignment
(``out_port``, downstream ``vid``, switch-request key ``node * P + port``)
and the ejection ``sink`` state; Python lists keep the per-channel message
references and cached routing decisions (objects never enter the vectorized
passes).  The ``transfer`` and ``drain`` stages are vectorized passes over
*active-id* arrays, and ``route/allocate`` vectorizes its candidate
selection, falling back to scalar code only where the reference engine
draws RNG or rewrites routing headers — those paths must replay the dict
engine's draw order exactly.

Bit-identity
------------
The array engine promises the same guarantee the flit-lite refactor made:
for a given seed, every metric equals the dict engine's bit for bit.  The
load-bearing details:

* **Active-id order.**  The dict engine's insertion-ordered active dicts
  become append-ordered id arrays plus membership masks.  Released ids are
  only unlinked lazily — one vectorized compaction at the end of each cycle
  — which preserves the dict semantics exactly because within a cycle a
  released channel can never be re-activated (re-activation earliest happens
  in the *next* cycle's allocate/transfer stages, after compaction).
* **Switch allocation RNG.**  Transfer requests are grouped by output
  physical channel with ``np.unique``; groups are then visited in
  first-occurrence order (the dict engine's request-table insertion order)
  and only contended groups draw ``randrange`` — uncontended winners are
  filled vectorized, consuming no randomness, exactly like the dict engine.
* **VC allocation RNG.**  ``_allocate_ids`` replays the reference
  ``_allocate`` draw-for-draw (one shuffle per multi-member priority group,
  one ``randrange`` per winning candidate); only the free-VC probe reads the
  flat busy table instead of object attributes.
* **Scalar fallbacks.**  Header events — routing computation, absorption
  and re-injection, delivery records, per-message ``hops`` — run scalar in
  active order.  They are O(messages), not O(flits), so they cost little and
  keep every RNG draw and every messaging-layer mutation in reference order.

White-box inspection (``engine.routers`` and the channel objects underneath)
reflects only dict-engine state; the array engine leaves those construction-
time objects untouched.  Tests that introspect router state should build the
reference engine.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DeadlockError, RoutingError
from repro.metrics.collectors import MessageRecord
from repro.network.engine import SimulationEngine
from repro.network.message import Message
from repro.network.virtual_channel import (
    SINK_FAULT,
    SINK_FINAL,
    SINK_INTERMEDIATE,
    SINK_NONE,
)
from repro.routing.base import RoutingDecision
from repro.topology.channels import opposite_port
from repro.traffic.generators import _BernoulliStream, _ExponentialStream

__all__ = ["ArraySimulationEngine"]

_EMPTY_IDS = np.empty(0, dtype=np.int64)


def _shuffle_replay_matches() -> bool:
    """True when ``random.shuffle``'s draws can be replayed with getrandbits.

    The blocked-header fast path consumes the RNG a failed reference attempt
    would (one shuffle per multi-member priority group) without building or
    swapping lists, by replaying the documented CPython draw pattern — for
    each ``i`` from ``len-1`` down to ``1``, rejection-sample ``i+1`` values
    from ``getrandbits``.  Verified here against the real ``shuffle`` once at
    import so a hypothetical stdlib change degrades to the (slower, always
    correct) literal-shuffle fallback instead of silently breaking
    bit-identity.
    """
    import random as _random

    reference, replay = _random.Random(0xC0FFEE), _random.Random(0xC0FFEE)
    for size in (2, 3, 5, 9):
        reference.shuffle([None] * size)
        for i in range(size - 1, 0, -1):
            n = i + 1
            k = n.bit_length()
            r = replay.getrandbits(k)
            while r >= n:
                r = replay.getrandbits(k)
    return reference.getrandbits(64) == replay.getrandbits(64)


_FAST_SHUFFLE_REPLAY = _shuffle_replay_matches()


def _stream_replay_matches() -> bool:
    """True when every engine draw can be served from a bulk word stream.

    ``Random.getrandbits(32 * B)`` advances the Mersenne Twister by exactly
    ``B`` 32-bit words and packs them least-significant-first, so one C call
    prefetches the generator's raw output as a numpy array.  Every draw the
    engine makes is a deterministic function of that word stream:

    * ``getrandbits(k <= 32)`` is one word shifted down by ``32 - k``;
    * ``_randbelow(n)`` (the engine's ``randrange``) rejection-samples those
      shifted words against ``n``;
    * ``shuffle`` is a Fisher-Yates walk drawing ``_randbelow(i + 1)``.

    All three identities are verified here against the real ``random.Random``
    (across a reseed boundary) so a hypothetical CPython change degrades to
    the slower draw-for-draw paths instead of silently breaking bit-identity.
    """
    import random as _random

    reference = _random.Random(0xBEEF)
    bulk = _random.Random(0xBEEF)
    batch = 1400  # crosses the MT19937 624-word regeneration boundary
    raw = bulk.getrandbits(32 * batch)
    words = np.frombuffer(raw.to_bytes(4 * batch, "little"), dtype="<u4")
    if any(int(words[i]) != reference.getrandbits(32) for i in range(batch)):
        return False
    if reference.getrandbits(64) != bulk.getrandbits(64):
        return False
    for k in (1, 2, 3, 7, 13, 31, 32):
        narrow, wide = _random.Random(k), _random.Random(k)
        if narrow.getrandbits(k) != wide.getrandbits(32) >> (32 - k):
            return False
        if narrow.getrandbits(32) != wide.getrandbits(32):
            return False
    shuffled = list(range(9))
    replayed = list(range(9))
    shuffler, replayer = _random.Random(3), _random.Random(3)
    shuffler.shuffle(shuffled)
    for i in range(len(replayed) - 1, 0, -1):
        n = i + 1
        k = n.bit_length()
        r = replayer.getrandbits(k)
        while r >= n:
            r = replayer.getrandbits(k)
        replayed[i], replayed[r] = replayed[r], replayed[i]
    return shuffled == replayed and shuffler.getrandbits(32) == replayer.getrandbits(32)


_BULK_STREAM = _FAST_SHUFFLE_REPLAY and _stream_replay_matches()

#: Flattened rejection-sampling plans keyed by shuffle-size tuple.  A blocked
#: header replays the same shuffle sizes every cycle, so the per-draw bound
#: ``n`` and bit width ``k`` are precomputed once per distinct size profile
#: and the replay loop degenerates to bound ``getrandbits`` calls.  Each
#: interned plan also gets a small integer token (``_PLAN_TOKENS`` /
#: ``_TOKEN_PLANS``) so per-id plan identity lives in a numpy array and runs
#: of same-plan headers segment vectorized; token 0 means "no plan".
_REPLAY_PLANS: dict = {}
_PLAN_TOKENS: dict = {}
_TOKEN_PLANS: List[Optional[tuple]] = [None]


def _replay_plan(sizes: Tuple[int, ...]) -> Tuple[Tuple[int, int], ...]:
    """The ``(bit_width, bound)`` draw sequence replaying shuffles of ``sizes``."""
    plan = _REPLAY_PLANS.get(sizes)
    if plan is None:
        steps = []
        for size in sizes:
            for i in range(size - 1, 0, -1):
                n = i + 1
                steps.append((n.bit_length(), n))
        plan = tuple(steps)
        _REPLAY_PLANS[sizes] = plan
        if plan not in _PLAN_TOKENS:
            _PLAN_TOKENS[plan] = len(_TOKEN_PLANS)
            _TOKEN_PLANS.append(plan)
    return plan


def _vector_draws_match() -> bool:
    """True when numpy ``Generator`` array fills equal sequential scalar draws.

    The vectorized traffic stage prefetches each per-node stream's uniform
    doubles with one ``rng.random(batch)`` call instead of one ``rng.random()``
    per cycle, which is bit-identical only if the array fill consumes the bit
    generator exactly like repeated scalar draws.  That holds for numpy's
    ``Generator`` (both fill the buffer from sequential ``next_double`` calls)
    and is verified here once at import — including the post-fill state — so a
    hypothetical numpy change degrades to the scalar reference path instead of
    silently breaking bit-identity.
    """
    for seed in (0xA5A5, 17):
        scalar = np.random.default_rng(seed)
        vector = np.random.default_rng(seed)
        if any(scalar.random() != value for value in vector.random(64).tolist()):
            return False
        if scalar.random() != vector.random():
            return False
    return True


_VECTOR_TRAFFIC = _vector_draws_match()


class ArraySimulationEngine(SimulationEngine):
    """Struct-of-arrays implementation of the simulation engine.

    Construction mirrors :class:`SimulationEngine` (same parameters); the
    flat state tables are built once on top of the reference initialisation.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        topology = self._topology
        num_nodes = topology.num_nodes
        ports = topology.num_network_ports
        vcs = self._num_vcs
        self._p = ports
        self._pv = ports * vcs
        npv = num_nodes * self._pv
        num_inj = num_nodes * vcs
        #: Injection channels live above the network-VC id range in the
        #: transfer stage's combined channel array.
        self._inj_offset = npv
        #: Dense switch-request key space (``node * P + port``).
        self._num_keys = num_nodes * ports

        # Network input VCs, indexed by vid.
        self._k_recv = np.zeros(npv, dtype=np.int64)
        self._k_rem = np.zeros(npv, dtype=np.int64)
        self._k_len = np.zeros(npv, dtype=np.int64)
        self._k_sink = np.zeros(npv, dtype=np.int8)
        self._k_out_port = np.full(npv, -1, dtype=np.int64)
        self._k_down = np.full(npv, -1, dtype=np.int64)
        self._k_key = np.full(npv, -1, dtype=np.int64)
        self._k_active = np.zeros(npv, dtype=bool)
        # Free-VC mask shared by the scalar allocator probe and the vectorized
        # blocked-header gate.  One extra always-busy slot at index ``npv``
        # pads the candidate-key rows below.
        self._k_free = np.ones(npv + 1, dtype=bool)
        self._k_free[npv] = False
        self._k_owner: List[Optional[Message]] = [None] * npv
        self._k_pending: List[Optional[RoutingDecision]] = [None] * npv

        # Injection channels, indexed by iid.
        self._j_sent = np.zeros(num_inj, dtype=np.int64)
        self._j_len = np.zeros(num_inj, dtype=np.int64)
        self._j_out_port = np.full(num_inj, -1, dtype=np.int64)
        self._j_down = np.full(num_inj, -1, dtype=np.int64)
        self._j_key = np.full(num_inj, -1, dtype=np.int64)
        self._j_active = np.zeros(num_inj, dtype=bool)
        self._j_owner: List[Optional[Message]] = [None] * num_inj
        self._j_pending: List[Optional[RoutingDecision]] = [None] * num_inj

        # Active-id arrays in activation order (the dict engine's insertion
        # order).  Stale entries accumulate only within a cycle (releases mark
        # the membership mask and set a dirty flag); the end-of-cycle
        # compaction filters them out, so capacity 2× the id space bounds the
        # live prefix even in the worst release-heavy cycle.
        self._va = np.zeros(2 * npv + 1, dtype=np.int64)
        self._va_n = 0
        self._va_dirty = False
        self._ja = np.zeros(2 * num_inj + 1, dtype=np.int64)
        self._ja_n = 0
        self._ja_dirty = False

        # Routing-cache tables for blocked headers.  A header whose allocation
        # failed keeps its decision (same cache as the dict engine); here the
        # decision's candidate VC ids are additionally flattened into a padded
        # row of ``_pk_keys`` / ``_pj_keys`` so one vectorized gather per cycle
        # answers "could this header allocate now?" for every blocked header
        # at once.  Rows are padded with the always-busy sentinel ``npv``.
        # A failed dict-engine attempt consumes RNG *only* through the
        # shuffle of multi-member priority groups (shuffling one element and
        # the success-only ``randrange`` draw nothing), so:
        #   * no free candidate VC, single-member groups → skip outright;
        #   * no free candidate VC, multi-member groups → replay just the
        #     shuffles on cached dummy groups (``_pk_shuf``);
        #   * any free candidate VC → full scalar replay.
        # The gate is computed from start-of-stage state; allocations made
        # earlier in the same pass only *reserve* VCs, so a stale True runs a
        # full replay that fails exactly like the reference engine (drawing
        # the same shuffles), and a False can never be stale.
        self._pend_width = 4
        self._pk_keys = np.full((npv, self._pend_width), npv, dtype=np.int64)
        self._pk_multi = np.zeros(npv, dtype=bool)
        self._pk_has = np.zeros(npv, dtype=bool)
        # Per-id replay data: a flattened ``(bit_width, bound)`` draw plan on
        # the fast path, the raw shuffle-size tuple on the fallback path.
        self._pk_shuf: List[Optional[tuple]] = [None] * npv
        self._pk_tok = np.zeros(npv, dtype=np.int64)
        self._pj_keys = np.full((num_inj, self._pend_width), npv, dtype=np.int64)
        self._pj_multi = np.zeros(num_inj, dtype=bool)
        self._pj_has = np.zeros(num_inj, dtype=bool)
        self._pj_shuf: List[Optional[tuple]] = [None] * num_inj
        self._pj_tok = np.zeros(num_inj, dtype=np.int64)

        self._node_faulty: List[bool] = [
            self._faults.is_node_faulty(node) for node in topology.nodes()
        ]
        self._opp: List[int] = [opposite_port(port) for port in range(ports)]

        # ``Random.randrange(n)`` delegates straight to ``Random._randbelow(n)``
        # for a positive int; binding the private method skips the public
        # wrapper's argument handling on the hot draw paths while consuming
        # the identical draws (it is the same bound method ``randrange``
        # calls).  Fall back to the public API if the name ever disappears.
        self._draw_below = getattr(self._rand, "_randbelow", self._rand.randrange)

        # Bulk RNG word stream (see :func:`_stream_replay_matches`).  When
        # verified, every draw this engine makes is served from a prefetched
        # array of raw 32-bit Mersenne Twister words; ``self._rand`` itself is
        # only touched by the batched ``getrandbits(32 * B)`` refill, so the
        # consumed value sequence — and therefore every metric — is identical
        # to the reference engine's draw-by-draw consumption.  The payoff is
        # in the blocked-header replay: the words a discarded shuffle would
        # consume are skipped with one table lookup per header instead of a
        # Python rejection-sampling loop per draw.
        self._sw = np.empty(0, dtype=np.uint32)
        self._sw_ptr = 0
        self._sw_len = 0
        #: bound -> next-accept position table over the current buffer.
        self._sw_nxt: dict = {}
        #: replay plan -> composed pointer-skip table over the current buffer.
        self._sw_skip: dict = {}
        #: replay plan -> [skip, skip^2, skip^4, ...] repeated-squaring tables.
        self._sw_pow: dict = {}
        if _BULK_STREAM:
            self._randbelow_fn = self._stream_randbelow
            self._shuffle_fn = self._stream_shuffle
        else:
            self._randbelow_fn = self._draw_below
            self._shuffle_fn = self._rand.shuffle

        # Vectorized traffic generation.  Per-node arrival streams own
        # independent RNGs, so their draws can be prefetched (Bernoulli) or
        # their next-arrival times mirrored in a vector (Poisson) without
        # perturbing any other consumer; the per-cycle scan over ~N healthy
        # nodes then collapses to one array comparison.  Mixed or exotic
        # stream types fall back to the scalar reference loop.
        self._gen_mode = "scalar"
        scan = self._generation_scan
        if self._traffic.rate > 0 and scan:
            streams = [stream for _, stream, _ in scan]
            if _VECTOR_TRAFFIC and all(
                type(stream) is _BernoulliStream for stream in streams
            ):
                self._gen_mode = "bernoulli"
                self._gen_rate = streams[0]._rate
                self._gen_rngs = [stream._rng for stream in streams]
                self._gen_buf = np.empty((0, len(streams)))
                self._gen_pos = 0
            elif all(type(stream) is _ExponentialStream for stream in streams):
                self._gen_mode = "poisson"
                self._gen_next = np.array(
                    [stream._next_arrival for stream in streams]
                )

    # ------------------------------------------------------------------ #
    # bulk RNG word stream
    # ------------------------------------------------------------------ #
    def _stream_refill(self, need: int = 0) -> None:
        """Prefetch another batch of raw 32-bit words from ``self._rand``.

        Unconsumed words are preserved (compacted to the buffer head), so a
        draw interrupted by exhaustion replays over identical words and
        resolves identically.  The skip tables are position-relative and are
        rebuilt lazily against the new buffer.
        """
        leftover = self._sw[self._sw_ptr : self._sw_len]
        batch = 8192
        while batch < need:
            batch *= 2
        raw = self._rand.getrandbits(32 * batch)
        fresh = np.frombuffer(raw.to_bytes(4 * batch, "little"), dtype="<u4")
        if leftover.size:
            self._sw = np.concatenate((leftover, fresh))
        else:
            self._sw = fresh
        self._sw_len = self._sw.size
        self._sw_ptr = 0
        self._sw_nxt.clear()
        self._sw_skip.clear()
        self._sw_pow.clear()

    def _stream_randbelow(self, n: int) -> int:
        """``Random._randbelow(n)`` replayed on the prefetched word stream."""
        shift = 32 - n.bit_length()
        words = self._sw
        p = self._sw_ptr
        limit = self._sw_len
        while True:
            if p >= limit:
                self._stream_refill()
                words = self._sw
                p = 0
                limit = self._sw_len
            r = int(words[p]) >> shift
            p += 1
            if r < n:
                self._sw_ptr = p
                return r

    def _stream_shuffle(self, items: List) -> None:
        """``random.shuffle`` replayed on the word stream (Fisher-Yates).

        The rejection-sampling loop walks the word buffer with locals and
        commits the pointer once at the end (or just before a refill), which
        keeps the per-draw cost to one array read on this hot path.
        """
        words = self._sw
        p = self._sw_ptr
        limit = self._sw_len
        for i in range(len(items) - 1, 0, -1):
            n = i + 1
            shift = 32 - n.bit_length()
            while True:
                if p >= limit:
                    self._sw_ptr = p
                    self._stream_refill()
                    words = self._sw
                    p = 0
                    limit = self._sw_len
                r = int(words[p]) >> shift
                p += 1
                if r < n:
                    break
            items[i], items[r] = items[r], items[i]
        self._sw_ptr = p

    def _stream_nxt_table(self, k: int, n: int) -> np.ndarray:
        """Next-accept positions for bound ``n`` over the current buffer.

        ``table[t]`` is the smallest ``t' >= t`` whose word passes the
        ``_randbelow(n)`` acceptance test ``(word >> (32 - k)) < n``; the
        buffer length acts as a sticky out-of-words sentinel (``table`` has
        one extra slot so a sentinel value can be composed safely).
        """
        table = self._sw_nxt.get(n)
        if table is None:
            length = self._sw_len
            accept = (self._sw >> np.uint32(32 - k)) < n
            index = np.where(accept, np.arange(length, dtype=np.int64), length)
            table = np.empty(length + 1, dtype=np.int64)
            table[:length] = np.minimum.accumulate(index[::-1])[::-1]
            table[length] = length
            self._sw_nxt[n] = table
        return table

    def _stream_skip_table(self, plan: tuple) -> np.ndarray:
        """Composed pointer map executing a whole replay plan per lookup.

        ``table[t]`` is the stream position after performing every discarded
        draw of ``plan`` starting at position ``t``.  Composing the per-bound
        next-accept tables once per refill turns the per-cycle replay of the
        (typically few) distinct blocked-header plans into one array lookup
        per header.  Values at or past the buffer length mean the plan ran
        out of words — the caller refills and redoes the lookup, which is
        safe because lookups consume nothing and refills preserve the
        unconsumed suffix.
        """
        table = self._sw_skip.get(plan)
        if table is None:
            length = self._sw_len
            table = np.arange(length + 1, dtype=np.int64)
            for k, n in plan:
                nxt = self._stream_nxt_table(k, n)
                np.minimum(table, length, out=table)
                table = nxt[table] + 1
            self._sw_skip[plan] = table
        return table

    def _stream_skip_run(self, plan: tuple, m: int) -> None:
        """Advance the stream pointer past ``m`` back-to-back replays of ``plan``.

        Consecutive blocked headers overwhelmingly share one plan, and pointer
        skips compose (``skip^(a+b) = skip^a ∘ skip^b``), so a run of ``m``
        identical replays resolves in ``O(log m)`` lookups against
        repeated-squaring tables instead of ``m`` per-header lookups.  The
        squared tables stay sticky past the buffer end, so an out-of-words
        result at any granularity downshifts to smaller powers and finally to
        a refill, after which the surviving chunk redoes over fresh words.
        """
        powers = self._sw_pow.get(plan)
        if powers is None:
            powers = [self._stream_skip_table(plan)]
            self._sw_pow[plan] = powers
        p = self._sw_ptr
        length = self._sw_len
        need = 0
        while m:
            k = m.bit_length() - 1
            if k > 12:
                k = 12
            while len(powers) <= k:
                prev = powers[-1]
                powers.append(prev[np.minimum(prev, length)])
            q = int(powers[k][p])
            while q >= length and k > 0:
                k -= 1
                q = int(powers[k][p])
            if q >= length:
                # Even one plan cannot finish on the remaining words: commit
                # the consumed prefix, refill (growing the batch only if a
                # fresh buffer still cannot finish), and redo from the head.
                self._sw_ptr = p
                self._stream_refill(need)
                need = 2 * self._sw_len
                powers = [self._stream_skip_table(plan)]
                self._sw_pow[plan] = powers
                p = 0
                length = self._sw_len
                continue
            p = q
            m -= 1 << k
            need = 0
        self._sw_ptr = p

    # ------------------------------------------------------------------ #
    # cycle loop (mirrors SimulationEngine.step with the array idle check
    # and the end-of-cycle active-id compaction)
    # ------------------------------------------------------------------ #
    def step(self) -> None:
        """Advance the simulation by one cycle (array-kernel hot loop)."""
        if (
            self._skip_idle
            and not self._stop_generation
            and not self._va_n
            and not self._ja_n
            and not self._pending_nodes
        ):
            self._skip_to_next_arrival()
        self._cycle += 1
        cycle = self._cycle
        if not self._stop_generation:
            self._generate_traffic(cycle)
        self._inject(cycle)
        self._route_and_allocate(cycle)
        self._transfer(cycle)
        self._drain(cycle)
        self._compact_active()
        self._check_watchdog(cycle)
        if (
            self._saturation_queue_limit is not None
            and cycle % self.SATURATION_CHECK_PERIOD == 0
        ):
            self._check_saturation()

    def _step_profiled(self) -> None:
        """``step`` with stage timers around the vectorized passes.

        Installed over ``step`` by the base ``__init__`` when a stage
        profiler was supplied; because the attribute is bound on ``self``,
        the timers wrap *this* engine's vectorized stage methods, not the
        dict engine's.  Must mirror :meth:`step` exactly apart from timing.
        """
        profiler = self._stage_profiler
        record = profiler.record
        if (
            self._skip_idle
            and not self._stop_generation
            and not self._va_n
            and not self._ja_n
            and not self._pending_nodes
        ):
            self._skip_to_next_arrival()
        self._cycle += 1
        cycle = self._cycle
        if not self._stop_generation:
            start = perf_counter()
            self._generate_traffic(cycle)
            record("generate", perf_counter() - start)
        start = perf_counter()
        self._inject(cycle)
        record("inject", perf_counter() - start)
        start = perf_counter()
        self._route_and_allocate(cycle)
        record("route_allocate", perf_counter() - start)
        start = perf_counter()
        self._transfer(cycle)
        record("transfer", perf_counter() - start)
        start = perf_counter()
        self._drain(cycle)
        record("drain", perf_counter() - start)
        self._compact_active()
        self._check_watchdog(cycle)
        if (
            self._saturation_queue_limit is not None
            and cycle % self.SATURATION_CHECK_PERIOD == 0
        ):
            self._check_saturation()

    def _compact_active(self) -> None:
        """Drop released ids from the active arrays (order-preserving)."""
        if self._va_dirty:
            live = self._va[: self._va_n]
            live = live[self._k_active[live]]
            self._va[: live.size] = live
            self._va_n = live.size
            self._va_dirty = False
        if self._ja_dirty:
            live = self._ja[: self._ja_n]
            live = live[self._j_active[live]]
            self._ja[: live.size] = live
            self._ja_n = live.size
            self._ja_dirty = False

    # ------------------------------------------------------------------ #
    # termination conditions (array-state views of the base definitions)
    # ------------------------------------------------------------------ #
    def _idle(self) -> bool:
        return not self._va_n and not self._ja_n and not self._pending_nodes

    def _check_watchdog(self, cycle: int) -> None:
        if self._idle():
            self._last_progress_cycle = cycle
            return
        if cycle - self._last_progress_cycle > self.DEADLOCK_WATCHDOG:
            in_flight = self._va_n + self._ja_n
            raise DeadlockError(
                f"no flit moved for {self.DEADLOCK_WATCHDOG} cycles at cycle {cycle} "
                f"with {in_flight} channels still occupied; this indicates a protocol "
                f"bug or an unsupported configuration"
            )

    # ------------------------------------------------------------------ #
    # stage 1: traffic generation (vectorized arrival scan)
    # ------------------------------------------------------------------ #
    def _generate_traffic(self, cycle: int) -> None:
        """Reference generation with the per-node scan done in numpy.

        Bernoulli streams draw their own RNG once per cycle; those doubles
        are prefetched per stream in bulk (verified bit-identical at import,
        see :func:`_vector_draws_match`) and one vector comparison yields the
        arrival nodes.  Poisson streams keep a mirrored next-arrival vector
        so only due streams run the scalar draw loop.  Message creation and
        destination picks stay scalar in scan order — they consume the shared
        engine RNG exactly like the reference loop.
        """
        mode = self._gen_mode
        if mode == "bernoulli":
            pos = self._gen_pos
            buf = self._gen_buf
            if pos >= buf.shape[0]:
                batch = 512
                rows = np.empty((len(self._gen_rngs), batch))
                for i, rng in enumerate(self._gen_rngs):
                    rows[i] = rng.random(batch)
                buf = self._gen_buf = np.ascontiguousarray(rows.T)
                pos = 0
            hits = np.nonzero(buf[pos] < self._gen_rate)[0]
            self._gen_pos = pos + 1
            if hits.size:
                scan = self._generation_scan
                pending = self._pending_nodes
                for i in hits.tolist():
                    node, _stream, layer = scan[i]
                    destination = self._pattern.pick(node, self._rng)
                    if destination is not None and not self._faults.is_node_faulty(
                        destination
                    ):
                        layer.enqueue_new(self._new_message(node, destination))
                    pending.add(node)
            return
        if mode == "poisson":
            nxt = self._gen_next
            hits = np.nonzero(nxt <= cycle)[0]
            if hits.size:
                scan = self._generation_scan
                pending = self._pending_nodes
                for i in hits.tolist():
                    node, stream, layer = scan[i]
                    arrivals = stream.arrivals_until(cycle)
                    nxt[i] = stream._next_arrival
                    if not arrivals:  # pragma: no cover - due streams arrive
                        continue
                    for _ in range(arrivals):
                        destination = self._pattern.pick(node, self._rng)
                        if destination is None or self._faults.is_node_faulty(
                            destination
                        ):
                            continue
                        layer.enqueue_new(self._new_message(node, destination))
                    pending.add(node)
            return
        super()._generate_traffic(cycle)

    # ------------------------------------------------------------------ #
    # stage 2: injection-channel assignment
    # ------------------------------------------------------------------ #
    def _inject(self, cycle: int) -> None:
        if not self._pending_nodes:
            return
        vcs = self._num_vcs
        j_owner = self._j_owner
        satisfied: List[int] = []
        # Nodes whose injection channels are all owned cannot accept a
        # message this cycle; the reference scan would fail without touching
        # state or RNG, so they are skipped wholesale (the node simply stays
        # pending, and its owned channels keep the engine out of the idle
        # state exactly as in the reference engine).  Only worth the
        # vectorized mask when the pending set is large (saturation).
        pending = self._pending_nodes
        if len(pending) > 4:
            node_full = self._j_active.reshape(-1, vcs).all(axis=1).tolist()
            pending = [node for node in pending if not node_full[node]]
        for node in pending:
            layer = self._layers[node]
            base = node * vcs
            while layer.peek_ready(cycle):
                iid = -1
                for candidate in range(base, base + vcs):
                    if j_owner[candidate] is None:
                        iid = candidate
                        break
                if iid < 0:
                    break
                message = layer.next_message(cycle)
                if message is None:  # pragma: no cover - peek_ready guards this
                    break
                j_owner[iid] = message
                self._j_len[iid] = message.length
                self._j_sent[iid] = 0
                self._j_out_port[iid] = -1
                self._j_down[iid] = -1
                self._j_key[iid] = -1
                self._j_pending[iid] = None
                if message.injected < 0:
                    message.injected = cycle
                if not self._j_active[iid]:
                    self._ja[self._ja_n] = iid
                    self._ja_n += 1
                    self._j_active[iid] = True
                self._last_progress_cycle = cycle
            if not layer.pending_total:
                satisfied.append(node)
        for node in satisfied:
            self._pending_nodes.discard(node)

    # ------------------------------------------------------------------ #
    # stage 3: routing computation and virtual-channel allocation
    # ------------------------------------------------------------------ #
    def _route_and_allocate(self, cycle: int) -> None:
        # Candidate selection is vectorized (most active channels are
        # mid-stream and need no routing, and most waiting headers are
        # blocked on fully-busy candidate VCs); the surviving headers run
        # the scalar routing/allocation path in active order, preserving
        # the reference RNG draw sequence.
        free = self._k_free
        count = self._ja_n
        if count:
            active = self._ja[:count]
            needs = (
                (self._j_out_port[active] < 0)
                & (self._j_sent[active] == 0)
                & (self._j_len[active] > 0)
            )
            waiting = active[needs]
            if waiting.size:
                has = self._pj_has[waiting]
                if has.any():
                    maybe = free[self._pj_keys[waiting]].any(axis=1)
                    multi = self._pj_multi[waiting]
                    blocked = has & ~maybe
                    shuf_only = blocked & multi
                    keep = ~blocked | shuf_only
                    self._walk_waiting(
                        waiting[keep],
                        shuf_only[keep],
                        self._pj_shuf,
                        self._pj_tok,
                        self._route_injection_id,
                        cycle,
                    )
                else:
                    for iid in waiting.tolist():
                        self._route_injection_id(iid, cycle)
        count = self._va_n
        if count:
            active = self._va[:count]
            needs = (
                (self._k_out_port[active] < 0)
                & (self._k_sink[active] == SINK_NONE)
                & (self._k_rem[active] == 0)
                & (self._k_recv[active] > 0)
            )
            waiting = active[needs]
            if waiting.size:
                has = self._pk_has[waiting]
                if has.any():
                    maybe = free[self._pk_keys[waiting]].any(axis=1)
                    multi = self._pk_multi[waiting]
                    blocked = has & ~maybe
                    shuf_only = blocked & multi
                    keep = ~blocked | shuf_only
                    self._walk_waiting(
                        waiting[keep],
                        shuf_only[keep],
                        self._pk_shuf,
                        self._pk_tok,
                        self._route_network_id,
                        cycle,
                    )
                else:
                    for vid in waiting.tolist():
                        self._route_network_id(vid, cycle)

    def _walk_waiting(self, ids, replay_mask, plans, toks, route_one, cycle: int) -> None:
        """Visit routable and replaying waiting headers in active order.

        ``replay_mask`` marks blocked headers whose only reference-engine
        effect is the RNG their failed attempt's group shuffles consume; the
        rest run the full scalar routing path.  On the bulk word stream the
        replays collapse to skip-table lookups; consecutive same-plan replays
        are found vectorized via the interned plan tokens (``toks``) and each
        run resolves in ``O(log run)`` lookups.  Otherwise the draws are
        replayed one by one with ``getrandbits`` (or, when the import-time
        verification failed, literal dummy shuffles).
        """
        if _BULK_STREAM:
            count = ids.size
            if not count:
                return
            # Scalar headers get token -1, so a segment boundary falls exactly
            # where the replay flag or the plan changes.
            seg_tok = np.where(replay_mask, toks[ids], -1)
            change = np.empty(count, dtype=bool)
            change[0] = True
            np.not_equal(seg_tok[1:], seg_tok[:-1], out=change[1:])
            bounds = np.append(np.flatnonzero(change), count).tolist()
            ids_l = ids.tolist()
            rep_l = replay_mask.tolist()
            token_plans = _TOKEN_PLANS
            for si in range(len(bounds) - 1):
                start, end = bounds[si], bounds[si + 1]
                if rep_l[start]:
                    self._stream_skip_run(token_plans[int(seg_tok[start])], end - start)
                else:
                    for cid in ids_l[start:end]:
                        route_one(cid, cycle)
            return
        getrandbits = self._rand.getrandbits
        shuffle = self._rand.shuffle
        for cid, replay in zip(ids.tolist(), replay_mask.tolist()):
            if replay:
                if _FAST_SHUFFLE_REPLAY:
                    for k, n in plans[cid]:
                        r = getrandbits(k)
                        while r >= n:
                            r = getrandbits(k)
                else:  # pragma: no cover - stdlib-change fallback
                    for size in plans[cid]:
                        shuffle([None] * size)
            else:
                route_one(cid, cycle)

    def _route_injection_id(self, iid: int, cycle: int) -> None:
        """Route one waiting injection channel (scalar reference path)."""
        message = self._j_owner[iid]
        assert message is not None
        header = message.header
        node = iid // self._num_vcs

        decision = self._j_pending[iid]
        if decision is None:
            if node == header.target:
                if header.is_intermediate:
                    self._routing.on_intermediate_target_reached(node, header)
                return
            decision = self._routing.route(node, header)
            if decision.deliver:  # pragma: no cover - target check covers this
                return
            if decision.absorb:
                # Immediate software absorption: the message never entered
                # the network (same accounting as the reference engine).
                self._j_release(iid)
                self._register_absorption(message, node, fault=True)
                self._routing.rewrite_after_absorption(node, header)
                self._layers[node].enqueue_reinjection(message, cycle)
                self._pending_nodes.add(node)
                return
        allocation = self._allocate_ids(node, decision, message)
        if allocation is not None:
            port, down_vid = allocation
            self._j_out_port[iid] = port
            self._j_down[iid] = down_vid
            self._j_key[iid] = node * self._p + port
            self._j_pending[iid] = None
            self._pj_has[iid] = False
        else:
            self._j_pending[iid] = decision
            if not self._pj_has[iid]:
                keys, groups = self._blocked_candidates(node, decision)
                if len(keys) > self._pend_width:
                    self._grow_pend(len(keys))
                row = self._pj_keys[iid]
                row[: len(keys)] = keys
                row[len(keys) :] = self._inj_offset
                self._pj_multi[iid] = bool(groups)
                plan = _replay_plan(groups) if _FAST_SHUFFLE_REPLAY else groups
                self._pj_shuf[iid] = plan
                if _BULK_STREAM and groups:
                    self._pj_tok[iid] = _PLAN_TOKENS[plan]
                self._pj_has[iid] = True

    def _route_network_id(self, vid: int, cycle: int) -> None:
        """Route one waiting network header (scalar reference path)."""
        message = self._k_owner[vid]
        assert message is not None
        header = message.header
        node = vid // self._pv

        decision = self._k_pending[vid]
        if decision is None:
            if node == header.target:
                self._k_sink[vid] = (
                    SINK_FINAL if not header.is_intermediate else SINK_INTERMEDIATE
                )
                return
            decision = self._routing.route(node, header)
            if decision.deliver:  # pragma: no cover - target check covers this
                self._k_sink[vid] = (
                    SINK_FINAL if not header.is_intermediate else SINK_INTERMEDIATE
                )
                return
            if decision.absorb:
                self._k_sink[vid] = SINK_FAULT
                return
        allocation = self._allocate_ids(node, decision, message)
        if allocation is not None:
            port, down_vid = allocation
            self._k_out_port[vid] = port
            self._k_down[vid] = down_vid
            self._k_key[vid] = node * self._p + port
            self._k_pending[vid] = None
            self._pk_has[vid] = False
        else:
            self._k_pending[vid] = decision
            if not self._pk_has[vid]:
                keys, groups = self._blocked_candidates(node, decision)
                if len(keys) > self._pend_width:
                    self._grow_pend(len(keys))
                row = self._pk_keys[vid]
                row[: len(keys)] = keys
                row[len(keys) :] = self._inj_offset
                self._pk_multi[vid] = bool(groups)
                plan = _replay_plan(groups) if _FAST_SHUFFLE_REPLAY else groups
                self._pk_shuf[vid] = plan
                if _BULK_STREAM and groups:
                    self._pk_tok[vid] = _PLAN_TOKENS[plan]
                self._pk_has[vid] = True

    def _grow_pend(self, needed: int) -> None:
        """Widen the candidate-key tables (rows start narrow; growth is rare)."""
        width = self._pend_width
        while width < needed:
            width *= 2
        sentinel = self._inj_offset
        for attr in ("_pk_keys", "_pj_keys"):
            old = getattr(self, attr)
            new = np.full((old.shape[0], width), sentinel, dtype=np.int64)
            new[:, : old.shape[1]] = old
            setattr(self, attr, new)
        self._pend_width = width

    def _blocked_candidates(
        self, node: int, decision: RoutingDecision
    ) -> Tuple[List[int], Tuple[int, ...]]:
        """Flattened candidate VC ids and shuffle sizes for a blocked header.

        Walks the decision exactly like :meth:`_allocate_ids` (same priority
        sort, same group slicing, same unreachable-port skip) but consumes no
        RNG and touches no state.  Returns the vids whose freedom would let a
        retry succeed, plus the size of each multi-member priority group —
        replaying a shuffle of that size consumes the RNG a failed reference
        attempt draws (single-member groups and the success-only ``randrange``
        draw nothing on failure).
        """
        candidates = decision.candidates
        if len(candidates) > 1:
            first_priority = candidates[0].priority
            if any(c.priority != first_priority for c in candidates[1:]):
                candidates = sorted(candidates, key=lambda c: c.priority)
        vcs = self._num_vcs
        keys: List[int] = []
        groups: List[int] = []
        index = 0
        num_candidates = len(candidates)
        while index < num_candidates:
            priority = candidates[index].priority
            size = 0
            while index < num_candidates and candidates[index].priority == priority:
                candidate = candidates[index]
                down_node = self._topology.neighbor_via_port(node, candidate.port)
                if down_node is not None:
                    base = (down_node * self._p + self._opp[candidate.port]) * vcs
                    for vc in candidate.virtual_channels:
                        keys.append(base + vc)
                size += 1
                index += 1
            if size > 1:
                groups.append(size)
        return keys, tuple(groups)

    def _allocate_ids(
        self, node: int, decision: RoutingDecision, message: Message
    ) -> Optional[Tuple[int, int]]:
        """Acquire a downstream VC for a routed header; ``(port, vid)`` or None.

        Replays ``SimulationEngine._allocate`` draw for draw (priority-group
        shuffle, one ``randrange`` per winning candidate); only the free-VC
        probe differs — it reads the flat busy table instead of channel
        objects.
        """
        candidates = decision.candidates
        if len(candidates) > 1:
            first_priority = candidates[0].priority
            if any(c.priority != first_priority for c in candidates[1:]):
                candidates = sorted(candidates, key=lambda c: c.priority)
        free = self._k_free
        vcs = self._num_vcs
        ports = self._p
        opp = self._opp
        neighbor_via_port = self._topology.neighbor_via_port
        node_faulty = self._node_faulty
        index = 0
        num_candidates = len(candidates)
        while index < num_candidates:
            priority = candidates[index].priority
            start = index
            index += 1
            while index < num_candidates and candidates[index].priority == priority:
                index += 1
            if index - start > 1:
                group = candidates[start:index]
                # A one-element shuffle draws nothing; skipping it is
                # draw-identical to the reference engine.
                self._shuffle_fn(group)
            else:
                group = (candidates[start],)
            for candidate in group:
                down_node = neighbor_via_port(node, candidate.port)
                if down_node is None:
                    continue
                if node_faulty[down_node]:
                    raise RoutingError(
                        f"routing offered a candidate through faulty node {down_node} "
                        f"from node {node}"
                    )
                base = (down_node * ports + opp[candidate.port]) * vcs
                free_count = 0
                for vc in candidate.virtual_channels:
                    if free[base + vc]:
                        free_count += 1
                if not free_count:
                    continue
                k = self._randbelow_fn(free_count)
                for vc in candidate.virtual_channels:
                    vid = base + vc
                    if free[vid]:
                        if k == 0:
                            free[vid] = False
                            self._k_owner[vid] = message
                            self._k_len[vid] = message.length
                            return candidate.port, vid
                        k -= 1
        return None

    # ------------------------------------------------------------------ #
    # stage 4: switch allocation and flit transfer (vectorized)
    # ------------------------------------------------------------------ #
    def _transfer(self, cycle: int) -> None:
        recv = self._k_recv
        rem = self._k_rem
        depth = self._buffer_depth

        # Request collection: all eligibility checks read start-of-cycle
        # occupancy, exactly like the reference engine's request table.  The
        # per-id eligibility masks are computed over the full (contiguous)
        # state arrays — at saturation nearly every id is active, so one
        # contiguous pass plus a single gather beats gathering each operand.
        space = (recv - rem) < depth
        req_inj = _EMPTY_IDS
        count = self._ja_n
        if count:
            active = self._ja[:count]
            sendable = (self._j_out_port >= 0) & (self._j_sent < self._j_len)
            sel = active[sendable[active]]
            if sel.size:
                req_inj = sel[space[self._j_down[sel]]]
        req_net = _EMPTY_IDS
        count = self._va_n
        if count:
            active = self._va[:count]
            sendable = (self._k_out_port >= 0) & (recv > rem)
            sel = active[sendable[active]]
            if sel.size:
                req_net = sel[space[self._k_down[sel]]]
        if not req_inj.size and not req_net.size:
            return

        # Group requests by output physical channel.  Injection requests come
        # first (the reference request-table fill order); only contended
        # groups draw RNG, in first-occurrence order of their keys — the
        # order the reference engine's insertion-ordered request table visits
        # them.  ``bincount`` over the dense key space finds contention
        # without sorting; the contended subset is then grouped with one
        # stable sort.
        offset = self._inj_offset
        if req_inj.size:
            keys = np.concatenate((self._j_key[req_inj], self._k_key[req_net]))
            channels = np.concatenate((req_inj + offset, req_net))
        else:
            keys = self._k_key[req_net]
            channels = req_net
        multiplicity = np.bincount(keys, minlength=self._num_keys)[keys]
        single = multiplicity == 1
        if single.all():
            # No contention anywhere: every request wins, in request order
            # (== first-occurrence group order), consuming no randomness.
            winners = channels
        else:
            # Winners must come out in first-occurrence group order: fresh
            # downstream activations are appended in winner order below, and
            # the reference engine activates them in request-table order.
            single_pos = np.nonzero(single)[0]
            contended_pos = np.nonzero(~single)[0]
            order = np.argsort(keys[contended_pos], kind="stable")
            sorted_pos = contended_pos[order]
            sorted_keys = keys[sorted_pos]
            starts = np.nonzero(
                np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
            )[0]
            counts = np.diff(np.concatenate((starts, [sorted_keys.size])))
            # The stable sort keeps members in request order, so the first
            # member of each sorted run is the group's first occurrence.
            first_pos = sorted_pos[starts]
            draw_order = np.argsort(first_pos, kind="stable")
            sorted_channels = channels[sorted_pos]
            picks = np.empty(draw_order.size, dtype=np.int64)
            starts_list = starts.tolist()
            counts_list = counts.tolist()
            if _BULK_STREAM:
                # One ``_randbelow`` per contended group, inlined over the
                # prefetched word buffer (pointer committed once at the end,
                # or just before a refill).
                words = self._sw
                p = self._sw_ptr
                limit = self._sw_len
                for rank, g in enumerate(draw_order.tolist()):
                    n = counts_list[g]
                    shift = 32 - n.bit_length()
                    while True:
                        if p >= limit:
                            self._sw_ptr = p
                            self._stream_refill()
                            words = self._sw
                            p = 0
                            limit = self._sw_len
                        r = int(words[p]) >> shift
                        p += 1
                        if r < n:
                            break
                    picks[rank] = sorted_channels[starts_list[g] + r]
                self._sw_ptr = p
            else:
                draw_below = self._randbelow_fn
                for rank, g in enumerate(draw_order.tolist()):
                    picks[rank] = sorted_channels[
                        starts_list[g] + draw_below(counts_list[g])
                    ]
            merge = np.argsort(
                np.concatenate((single_pos, first_pos[draw_order])), kind="stable"
            )
            winners = np.concatenate((channels[single_pos], picks))[merge]

        # Apply the winning moves in one vectorized pass.  Winner channels
        # are distinct (one per group) and so are their downstream VCs (each
        # has exactly one feeding channel), so the fancy-indexed updates
        # cannot collide; eligibility was checked against start-of-cycle
        # state above, matching the reference engine's batch semantics.
        is_inj = winners >= offset
        win_inj = winners[is_inj] - offset
        win_net = winners[~is_inj]
        downs = np.empty(winners.size, dtype=np.int64)
        index_inj = self._j_sent[win_inj]
        self._j_sent[win_inj] = index_inj + 1
        downs[is_inj] = self._j_down[win_inj]
        index_net = rem[win_net]
        rem[win_net] = index_net + 1
        downs[~is_inj] = self._k_down[win_net]
        recv[downs] += 1
        active_mask = self._k_active
        fresh = ~active_mask[downs]
        if fresh.any():
            new_ids = downs[fresh]
            start = self._va_n
            self._va[start : start + new_ids.size] = new_ids
            self._va_n = start + new_ids.size
            active_mask[new_ids] = True
        # Header and tail events are per-message (1/M of the flit volume):
        # scalar loops over the few matching winners.
        if win_inj.size:
            owners = self._j_owner
            for iid in win_inj[index_inj == 0].tolist():
                owners[iid].hops += 1
            tails = win_inj[index_inj + 1 == self._j_len[win_inj]]
            for iid in tails.tolist():
                self._j_release(iid)
        if win_net.size:
            owners = self._k_owner
            for vid in win_net[index_net == 0].tolist():
                owners[vid].hops += 1
            tails = win_net[index_net + 1 == self._k_len[win_net]]
            for vid in tails.tolist():
                self._k_release(vid)
        self._flit_transfers += winners.size
        self._last_progress_cycle = cycle

    # ------------------------------------------------------------------ #
    # stage 5: ejection / absorption drain (vectorized)
    # ------------------------------------------------------------------ #
    def _drain(self, cycle: int) -> None:
        count = self._va_n
        if not count:
            return
        active = self._va[:count]
        draining = (self._k_sink != SINK_NONE) & (self._k_recv > self._k_rem)
        sinking = active[draining[active]]
        if not sinking.size:
            return
        received = self._k_recv[sinking]
        tail_seen = received == self._k_len[sinking]
        self._k_rem[sinking] = received
        self._last_progress_cycle = cycle
        finished = sinking[tail_seen]
        if not finished.size:
            return
        pv = self._pv
        for vid in finished.tolist():
            message = self._k_owner[vid]
            assert message is not None
            node = vid // pv
            sink = int(self._k_sink[vid])
            self._k_release(vid)
            if sink == SINK_FINAL:
                self._collector.message_delivered(
                    MessageRecord(
                        message_id=message.message_id,
                        source=message.source,
                        destination=message.destination,
                        length=message.length,
                        created=message.created,
                        injected=message.injected,
                        delivered=cycle,
                        hops=message.hops,
                        absorptions=message.absorptions,
                    )
                )
            elif sink == SINK_INTERMEDIATE:
                self._register_absorption(message, node, fault=False)
                self._routing.on_intermediate_target_reached(node, message.header)
                self._layers[node].enqueue_reinjection(message, cycle)
                self._pending_nodes.add(node)
            elif sink == SINK_FAULT:
                self._register_absorption(message, node, fault=True)
                self._routing.rewrite_after_absorption(node, message.header)
                self._layers[node].enqueue_reinjection(message, cycle)
                self._pending_nodes.add(node)

    # ------------------------------------------------------------------ #
    # channel release helpers
    # ------------------------------------------------------------------ #
    def _j_release(self, iid: int) -> None:
        self._j_owner[iid] = None
        self._j_len[iid] = 0
        self._j_sent[iid] = 0
        self._j_out_port[iid] = -1
        self._j_down[iid] = -1
        self._j_key[iid] = -1
        self._j_pending[iid] = None
        self._pj_has[iid] = False
        self._j_active[iid] = False
        self._ja_dirty = True

    def _k_release(self, vid: int) -> None:
        self._k_owner[vid] = None
        self._k_free[vid] = True
        self._k_len[vid] = 0
        self._k_recv[vid] = 0
        self._k_rem[vid] = 0
        self._k_out_port[vid] = -1
        self._k_down[vid] = -1
        self._k_key[vid] = -1
        self._k_sink[vid] = SINK_NONE
        self._k_pending[vid] = None
        self._pk_has[vid] = False
        self._k_active[vid] = False
        self._va_dirty = True
