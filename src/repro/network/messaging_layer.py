"""The per-node software messaging layer.

The Software-Based scheme relies on each node's message-passing software
(assumption (i) of the paper): a message whose path is blocked by faults is
removed from the network by the local router and delivered to this layer,
which rewrites the header and re-injects the message after a configurable
overhead of Δ cycles.  Absorbed messages have priority over newly generated
messages to prevent starvation (Section 4).

The layer therefore keeps two queues per node:

* the **new-message queue**, fed by the local PE's traffic generator, and
* the **re-injection queue**, fed by absorptions; entries become eligible
  Δ cycles after the absorption completed and are always served first.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.network.message import Message

__all__ = ["MessagingLayer"]


class MessagingLayer:
    """Software queues of one node.

    Parameters
    ----------
    node:
        Flat id of the node this layer belongs to.
    reinjection_delay:
        The Δ overhead (in cycles) between the completion of an absorption and
        the earliest re-injection of the message.  The paper's experiments use
        Δ = 0.
    """

    __slots__ = ("node", "reinjection_delay", "_new_queue", "_reinjection_queue")

    def __init__(self, node: int, reinjection_delay: int = 0) -> None:
        if reinjection_delay < 0:
            raise ValueError("the re-injection delay must be non-negative")
        self.node = node
        self.reinjection_delay = reinjection_delay
        self._new_queue: Deque[Message] = deque()
        self._reinjection_queue: Deque[Tuple[int, Message]] = deque()

    # ------------------------------------------------------------------ #
    # enqueue
    # ------------------------------------------------------------------ #
    def enqueue_new(self, message: Message) -> None:
        """Queue a freshly generated message behind earlier local traffic."""
        self._new_queue.append(message)

    def enqueue_reinjection(self, message: Message, absorbed_at_cycle: int) -> None:
        """Queue an absorbed message; it becomes eligible after Δ cycles."""
        ready = absorbed_at_cycle + self.reinjection_delay
        self._reinjection_queue.append((ready, message))

    # ------------------------------------------------------------------ #
    # dequeue
    # ------------------------------------------------------------------ #
    def next_message(self, cycle: int) -> Optional[Message]:
        """Pop the next message eligible for injection at ``cycle``.

        Re-injected (absorbed) messages have strict priority over new
        messages; within each queue the order is FIFO.
        """
        if self._reinjection_queue and self._reinjection_queue[0][0] <= cycle:
            return self._reinjection_queue.popleft()[1]
        if self._new_queue:
            return self._new_queue.popleft()
        return None

    def peek_ready(self, cycle: int) -> bool:
        """True when :meth:`next_message` would return a message at ``cycle``."""
        if self._reinjection_queue and self._reinjection_queue[0][0] <= cycle:
            return True
        return bool(self._new_queue)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def pending_new(self) -> int:
        """Number of generated messages still waiting at the source."""
        return len(self._new_queue)

    @property
    def pending_reinjection(self) -> int:
        """Number of absorbed messages waiting to be re-injected."""
        return len(self._reinjection_queue)

    @property
    def pending_total(self) -> int:
        """Total queued messages at this node."""
        return len(self._new_queue) + len(self._reinjection_queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessagingLayer(node={self.node}, new={len(self._new_queue)}, "
            f"reinject={len(self._reinjection_queue)})"
        )
