"""One router of the direct network.

A router owns the input virtual channels of its ``2n`` network ports and the
``V`` injection channels fed by the local processing element.  It is a plain
container: the allocation and traversal logic lives in the simulation engine
so that the per-cycle hot loop stays flat, but the router exposes the
convenience queries used by the engine, the tests and the analysis helpers
(free VCs per port, occupancy, etc.).
"""

from __future__ import annotations

from typing import List, Optional

from repro.network.message import Message
from repro.network.virtual_channel import InjectionChannel, VirtualChannel

__all__ = ["Router"]


class Router:
    """Input-buffered wormhole router with ``V`` virtual channels per port.

    Parameters
    ----------
    node:
        Flat node id of the router.
    num_network_ports:
        ``2n`` for an n-dimensional network.
    num_virtual_channels:
        ``V``, virtual channels per physical channel (network and injection).
    buffer_depth:
        Flit capacity of each input virtual-channel buffer.
    faulty:
        True when the node itself has failed; a faulty router holds no
        channels and never participates in the simulation.
    """

    __slots__ = ("node", "num_network_ports", "num_virtual_channels", "buffer_depth",
                 "faulty", "input_vcs", "injection_channels")

    def __init__(
        self,
        node: int,
        num_network_ports: int,
        num_virtual_channels: int,
        buffer_depth: int,
        faulty: bool = False,
    ) -> None:
        self.node = node
        self.num_network_ports = num_network_ports
        self.num_virtual_channels = num_virtual_channels
        self.buffer_depth = buffer_depth
        self.faulty = faulty
        if faulty:
            self.input_vcs: List[List[VirtualChannel]] = []
            self.injection_channels: List[InjectionChannel] = []
        else:
            self.input_vcs = [
                [
                    VirtualChannel(node, port, vc, buffer_depth)
                    for vc in range(num_virtual_channels)
                ]
                for port in range(num_network_ports)
            ]
            self.injection_channels = [
                InjectionChannel(node, vc) for vc in range(num_virtual_channels)
            ]

    # ------------------------------------------------------------------ #
    # queries used by the engine and the tests
    # ------------------------------------------------------------------ #
    def input_vc(self, port: int, vc: int) -> VirtualChannel:
        """The input virtual channel ``vc`` of network port ``port``."""
        return self.input_vcs[port][vc]

    def free_input_vcs(self, port: int) -> List[int]:
        """Indices of the currently unowned input VCs of ``port``."""
        return [vc.index for vc in self.input_vcs[port] if vc.is_free]

    def free_injection_channel(self) -> Optional[InjectionChannel]:
        """An idle injection channel, or ``None`` when all are busy."""
        for channel in self.injection_channels:
            if channel.is_free:
                return channel
        return None

    def occupancy(self) -> int:
        """Total number of flits buffered in this router's input VCs."""
        return sum(vc.occupancy for port in self.input_vcs for vc in port)

    def messages_in_flight(self) -> List[Message]:
        """Distinct messages currently owning a VC or injection channel here."""
        seen = {}
        for port in self.input_vcs:
            for vc in port:
                if vc.owner is not None:
                    seen[vc.owner.message_id] = vc.owner
        for channel in self.injection_channels:
            if channel.message is not None:
                seen[channel.message.message_id] = channel.message
        return list(seen.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "faulty" if self.faulty else f"occupancy={self.occupancy()}"
        return f"Router(node={self.node}, {state})"
