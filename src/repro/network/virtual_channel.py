"""Virtual channels and injection channels.

Each physical channel of the network is associated with ``V`` virtual
channels; a virtual channel has its own flit queue but shares the physical
channel's bandwidth with the other virtual channels in a time-multiplexed
fashion (paper Section 2, citing Dally's virtual-channel flow control).  The
model here keeps, per router, one :class:`VirtualChannel` object per
*input* virtual channel: the buffer lives at the downstream end of the
physical link, and the upstream router holds a reference to it through the
output assignment of the virtual channel currently forwarding a message.

The :class:`InjectionChannel` plays the role of the injection physical channel
from the local PE: it streams the flits of one message into the router at one
flit per cycle, subject to the same allocation rules as a network virtual
channel.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.network.flit import Flit
from repro.network.message import Message

__all__ = ["SINK_NONE", "SINK_FINAL", "SINK_INTERMEDIATE", "SINK_FAULT",
           "VirtualChannel", "InjectionChannel"]

#: The virtual channel is forwarding normally (no ejection in progress).
SINK_NONE = 0
#: The message is being ejected at its final destination.
SINK_FINAL = 1
#: The message is being ejected at an intermediate target node.
SINK_INTERMEDIATE = 2
#: The message is being absorbed because its path is blocked by faults.
SINK_FAULT = 3


class VirtualChannel:
    """One input virtual channel of a router.

    Attributes
    ----------
    node:
        Router this input VC belongs to.
    port:
        Input-port index the VC is attached to.
    index:
        Virtual-channel index within the physical channel (0 .. V-1).
    capacity:
        Buffer depth in flits.
    owner:
        Message currently holding the VC (wormhole: from header acquisition
        until the tail flit has left), or ``None``.
    out_node, out_port, out_vc:
        Output assignment: the downstream router, the output port at *this*
        router, and the downstream input VC index the message was allocated.
    sink:
        One of the ``SINK_*`` constants; non-zero while the message is being
        ejected/absorbed at this router.
    """

    __slots__ = (
        "node",
        "port",
        "index",
        "capacity",
        "buffer",
        "owner",
        "out_node",
        "out_port",
        "out_vc",
        "sink",
    )

    def __init__(self, node: int, port: int, index: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("virtual-channel buffer capacity must be at least one flit")
        self.node = node
        self.port = port
        self.index = index
        self.capacity = capacity
        self.buffer: Deque[Flit] = deque()
        self.owner: Optional[Message] = None
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1
        self.sink = SINK_NONE

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #
    @property
    def is_free(self) -> bool:
        """True when no message owns this VC (a header may acquire it)."""
        return self.owner is None

    @property
    def occupancy(self) -> int:
        """Number of flits currently buffered."""
        return len(self.buffer)

    @property
    def has_space(self) -> bool:
        """True when at least one more flit fits into the buffer."""
        return len(self.buffer) < self.capacity

    @property
    def head_flit(self) -> Optional[Flit]:
        """The flit at the head of the buffer, if any."""
        return self.buffer[0] if self.buffer else None

    @property
    def needs_routing(self) -> bool:
        """True when a header flit waits at the buffer head without an output."""
        if self.sink != SINK_NONE or self.out_port >= 0 or not self.buffer:
            return False
        return self.buffer[0].is_head

    @property
    def has_output(self) -> bool:
        """True when the VC holds a valid output assignment."""
        return self.out_port >= 0

    # ------------------------------------------------------------------ #
    # state transitions
    # ------------------------------------------------------------------ #
    def reserve(self, message: Message) -> None:
        """Reserve this (downstream) VC for an incoming message."""
        if self.owner is not None:
            raise RuntimeError(
                f"virtual channel ({self.node}, port {self.port}, vc {self.index}) is "
                f"already owned by message {self.owner.message_id}"
            )
        self.owner = message

    def assign_output(self, out_node: int, out_port: int, out_vc: int) -> None:
        """Record the output the header was routed and allocated to."""
        self.out_node = out_node
        self.out_port = out_port
        self.out_vc = out_vc

    def push(self, flit: Flit) -> None:
        """Accept a flit arriving over the physical channel."""
        if len(self.buffer) >= self.capacity:
            raise RuntimeError(
                f"buffer overflow on virtual channel ({self.node}, port {self.port}, "
                f"vc {self.index})"
            )
        self.buffer.append(flit)

    def pop(self) -> Flit:
        """Remove and return the flit at the buffer head."""
        return self.buffer.popleft()

    def release(self) -> None:
        """Free the VC after the tail flit has left (or been consumed)."""
        self.owner = None
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1
        self.sink = SINK_NONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = self.owner.message_id if self.owner else None
        return (
            f"VC(node={self.node}, port={self.port}, vc={self.index}, "
            f"owner={owner}, occ={len(self.buffer)}/{self.capacity}, sink={self.sink})"
        )


class InjectionChannel:
    """The injection channel streaming one message's flits into its router.

    Unlike a network :class:`VirtualChannel` it does not buffer flits — the PE
    is assumed to hold the message until the network has accepted it — but it
    obeys the same bandwidth rule: at most one flit enters the network per
    cycle per injection channel.
    """

    __slots__ = ("node", "index", "message", "flits_sent", "out_node", "out_port", "out_vc")

    def __init__(self, node: int, index: int) -> None:
        self.node = node
        self.index = index
        self.message: Optional[Message] = None
        self.flits_sent = 0
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1

    @property
    def is_free(self) -> bool:
        """True when no message is currently being injected through this channel."""
        return self.message is None

    @property
    def needs_routing(self) -> bool:
        """True when the header flit has not been routed yet."""
        return self.message is not None and self.flits_sent == 0 and self.out_port < 0

    @property
    def has_output(self) -> bool:
        """True when the header has been routed and allocated a downstream VC."""
        return self.out_port >= 0

    @property
    def flits_remaining(self) -> int:
        """Flits of the current message still waiting to enter the network."""
        return 0 if self.message is None else self.message.length - self.flits_sent

    def load(self, message: Message) -> None:
        """Attach a message for injection."""
        if self.message is not None:
            raise RuntimeError(
                f"injection channel {self.index} of node {self.node} is busy with "
                f"message {self.message.message_id}"
            )
        self.message = message
        self.flits_sent = 0
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1

    def assign_output(self, out_node: int, out_port: int, out_vc: int) -> None:
        """Record the output the header was routed and allocated to."""
        self.out_node = out_node
        self.out_port = out_port
        self.out_vc = out_vc

    def next_flit(self) -> Flit:
        """Create and account for the next flit entering the network."""
        if self.message is None:
            raise RuntimeError("injection channel has no message loaded")
        message = self.message
        index = self.flits_sent
        flit = Flit(
            message,
            index,
            is_head=(index == 0),
            is_tail=(index == message.length - 1),
        )
        self.flits_sent += 1
        return flit

    def release(self) -> None:
        """Detach the fully injected (or software-recalled) message."""
        self.message = None
        self.flits_sent = 0
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mid = self.message.message_id if self.message else None
        return (
            f"InjectionChannel(node={self.node}, idx={self.index}, message={mid}, "
            f"sent={self.flits_sent})"
        )
