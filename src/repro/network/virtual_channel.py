"""Virtual channels and injection channels — count-based wormhole segments.

Each physical channel of the network is associated with ``V`` virtual
channels; a virtual channel has its own flit buffer but shares the physical
channel's bandwidth with the other virtual channels in a time-multiplexed
fashion (paper Section 2, citing Dally's virtual-channel flow control).  The
model keeps, per router, one :class:`VirtualChannel` object per *input*
virtual channel: the buffer lives at the downstream end of the physical link,
and the upstream router holds a reference to it through the output assignment
of the channel currently forwarding a message.

Representation
--------------
Wormhole body flits carry no information — only the header does, and it is
fully described by the owning :class:`~repro.network.message.Message`.  The
buffer is therefore represented by *counters* instead of a queue of flit
objects:

* ``flits_received`` — flits of the owning message pushed into this buffer;
* ``flits_removed`` — flits forwarded downstream or consumed locally.

Because flits traverse a channel strictly in order, every per-flit fact the
engine needs is derivable: the buffered occupancy is ``received - removed``,
the flit at the buffer head has index ``flits_removed`` (so the header is at
the head iff ``flits_removed == 0``), and the tail is buffered iff
``flits_received`` equals the message length.  This removes one Python object
allocation per flit per hop from the hot path while keeping the cycle-level
semantics — backpressure, one flit per channel per cycle, header/tail events —
bit-identical to the object-based model.

The :class:`InjectionChannel` plays the role of the injection physical channel
from the local PE: it streams the flits of one message into the router at one
flit per cycle (a counter bump per flit), subject to the same allocation rules
as a network virtual channel.

Both channel kinds cache a direct reference to their allocated downstream
:class:`VirtualChannel` (``down_vc``), assigned together with the output port
by the engine's allocator, so the per-cycle transfer stage needs no
port-arithmetic or router lookups.
"""

from __future__ import annotations

from typing import Optional

from repro.network.message import Message

__all__ = ["SINK_NONE", "SINK_FINAL", "SINK_INTERMEDIATE", "SINK_FAULT",
           "VirtualChannel", "InjectionChannel"]

#: The virtual channel is forwarding normally (no ejection in progress).
SINK_NONE = 0
#: The message is being ejected at its final destination.
SINK_FINAL = 1
#: The message is being ejected at an intermediate target node.
SINK_INTERMEDIATE = 2
#: The message is being absorbed because its path is blocked by faults.
SINK_FAULT = 3


class VirtualChannel:
    """One input virtual channel of a router (count-based buffer).

    Attributes
    ----------
    node:
        Router this input VC belongs to.
    port:
        Input-port index the VC is attached to.
    index:
        Virtual-channel index within the physical channel (0 .. V-1).
    capacity:
        Buffer depth in flits.
    owner:
        Message currently holding the VC (wormhole: from header acquisition
        until the tail flit has left), or ``None``.
    flits_received / flits_removed:
        Counters of the owning message's flits that entered / left the buffer;
        see the module docstring for the derived per-flit facts.
    out_node, out_port, out_vc:
        Output assignment: the downstream router, the output port at *this*
        router, and the downstream input VC index the message was allocated.
    down_vc:
        Direct reference to the allocated downstream :class:`VirtualChannel`
        (``None`` while unrouted), cached so the transfer stage skips the
        port-arithmetic lookup.
    sink:
        One of the ``SINK_*`` constants; non-zero while the message is being
        ejected/absorbed at this router.
    """

    __slots__ = (
        "node",
        "port",
        "index",
        "capacity",
        "owner",
        "flits_received",
        "flits_removed",
        "out_node",
        "out_port",
        "out_vc",
        "down_vc",
        "out_key",
        "pending_decision",
        "sink",
    )

    def __init__(self, node: int, port: int, index: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("virtual-channel buffer capacity must be at least one flit")
        self.node = node
        self.port = port
        self.index = index
        self.capacity = capacity
        self.owner: Optional[Message] = None
        self.flits_received = 0
        self.flits_removed = 0
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1
        self.down_vc: Optional["VirtualChannel"] = None
        # ``(node, out_port)`` switch-request key, built once at assignment so
        # the per-cycle transfer stage does not allocate a tuple per request.
        self.out_key: Optional[tuple] = None
        # Routing decision awaiting allocation.  ``route`` is a pure function
        # of (node, header) and the header cannot change while its message
        # waits here, so the decision of a blocked header is cached across
        # cycles instead of being recomputed.
        self.pending_decision = None
        self.sink = SINK_NONE

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #
    @property
    def is_free(self) -> bool:
        """True when no message owns this VC (a header may acquire it)."""
        return self.owner is None

    @property
    def occupancy(self) -> int:
        """Number of flits currently buffered."""
        return self.flits_received - self.flits_removed

    @property
    def has_space(self) -> bool:
        """True when at least one more flit fits into the buffer."""
        return self.flits_received - self.flits_removed < self.capacity

    @property
    def head_at_front(self) -> bool:
        """True when the header flit is buffered at the front of the queue."""
        return self.flits_removed == 0 and self.flits_received > 0

    @property
    def tail_buffered(self) -> bool:
        """True when the owning message's tail flit is in the buffer."""
        return (
            self.owner is not None
            and self.flits_received == self.owner.length
            and self.flits_received > self.flits_removed
        )

    @property
    def needs_routing(self) -> bool:
        """True when the header flit waits at the buffer head without an output."""
        return (
            self.sink == SINK_NONE
            and self.out_port < 0
            and self.flits_removed == 0
            and self.flits_received > 0
        )

    @property
    def has_output(self) -> bool:
        """True when the VC holds a valid output assignment."""
        return self.out_port >= 0

    # ------------------------------------------------------------------ #
    # state transitions
    # ------------------------------------------------------------------ #
    def reserve(self, message: Message) -> None:
        """Reserve this (downstream) VC for an incoming message."""
        if self.owner is not None:
            raise RuntimeError(
                f"virtual channel ({self.node}, port {self.port}, vc {self.index}) is "
                f"already owned by message {self.owner.message_id}"
            )
        self.owner = message

    def assign_output(
        self,
        out_node: int,
        out_port: int,
        out_vc: int,
        down_vc: Optional["VirtualChannel"] = None,
    ) -> None:
        """Record the output the header was routed and allocated to."""
        self.out_node = out_node
        self.out_port = out_port
        self.out_vc = out_vc
        self.down_vc = down_vc
        self.out_key = (self.node, out_port)
        self.pending_decision = None

    def receive_flit(self) -> None:
        """Accept one flit arriving over the physical channel."""
        if self.flits_received - self.flits_removed >= self.capacity:
            raise RuntimeError(
                f"buffer overflow on virtual channel ({self.node}, port {self.port}, "
                f"vc {self.index})"
            )
        self.flits_received += 1

    def pop_flit(self) -> int:
        """Remove the flit at the buffer head; returns its index in the message.

        Index 0 is the header flit; index ``length - 1`` is the tail.
        """
        if self.flits_received <= self.flits_removed:
            raise RuntimeError(
                f"pop from empty virtual channel ({self.node}, port {self.port}, "
                f"vc {self.index})"
            )
        index = self.flits_removed
        self.flits_removed = index + 1
        return index

    def drain_buffered(self) -> bool:
        """Consume every buffered flit; True when the tail was among them."""
        tail = self.owner is not None and self.flits_received == self.owner.length
        self.flits_removed = self.flits_received
        return tail

    def release(self) -> None:
        """Free the VC after the tail flit has left (or been consumed)."""
        self.owner = None
        self.flits_received = 0
        self.flits_removed = 0
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1
        self.down_vc = None
        self.out_key = None
        self.pending_decision = None
        self.sink = SINK_NONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = self.owner.message_id if self.owner else None
        return (
            f"VC(node={self.node}, port={self.port}, vc={self.index}, "
            f"owner={owner}, occ={self.occupancy}/{self.capacity}, sink={self.sink})"
        )


class InjectionChannel:
    """The injection channel streaming one message's flits into its router.

    Unlike a network :class:`VirtualChannel` it does not buffer flits — the PE
    is assumed to hold the message until the network has accepted it — but it
    obeys the same bandwidth rule: at most one flit enters the network per
    cycle per injection channel.  A flit "entering the network" is a counter
    bump (``flits_sent``); no flit object is materialised.
    """

    __slots__ = ("node", "index", "message", "flits_sent",
                 "out_node", "out_port", "out_vc", "down_vc",
                 "out_key", "pending_decision")

    def __init__(self, node: int, index: int) -> None:
        self.node = node
        self.index = index
        self.message: Optional[Message] = None
        self.flits_sent = 0
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1
        self.down_vc: Optional[VirtualChannel] = None
        self.out_key: Optional[tuple] = None
        self.pending_decision = None

    @property
    def is_free(self) -> bool:
        """True when no message is currently being injected through this channel."""
        return self.message is None

    @property
    def needs_routing(self) -> bool:
        """True when the header flit has not been routed yet."""
        return self.message is not None and self.flits_sent == 0 and self.out_port < 0

    @property
    def has_output(self) -> bool:
        """True when the header has been routed and allocated a downstream VC."""
        return self.out_port >= 0

    @property
    def flits_remaining(self) -> int:
        """Flits of the current message still waiting to enter the network."""
        return 0 if self.message is None else self.message.length - self.flits_sent

    def load(self, message: Message) -> None:
        """Attach a message for injection."""
        if self.message is not None:
            raise RuntimeError(
                f"injection channel {self.index} of node {self.node} is busy with "
                f"message {self.message.message_id}"
            )
        self.message = message
        self.flits_sent = 0
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1
        self.down_vc = None
        self.out_key = None
        self.pending_decision = None

    def assign_output(
        self,
        out_node: int,
        out_port: int,
        out_vc: int,
        down_vc: Optional[VirtualChannel] = None,
    ) -> None:
        """Record the output the header was routed and allocated to."""
        self.out_node = out_node
        self.out_port = out_port
        self.out_vc = out_vc
        self.down_vc = down_vc
        self.out_key = (self.node, out_port)
        self.pending_decision = None

    def next_flit(self) -> int:
        """Account for the next flit entering the network; returns its index.

        Index 0 is the header flit; index ``message.length - 1`` is the tail.
        This is the count-based replacement for the old per-flit object
        creation: one integer increment per injected flit.
        """
        if self.message is None:
            raise RuntimeError("injection channel has no message loaded")
        index = self.flits_sent
        self.flits_sent = index + 1
        return index

    def release(self) -> None:
        """Detach the fully injected (or software-recalled) message."""
        self.message = None
        self.flits_sent = 0
        self.out_node = -1
        self.out_port = -1
        self.out_vc = -1
        self.down_vc = None
        self.out_key = None
        self.pending_decision = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mid = self.message.message_id if self.message else None
        return (
            f"InjectionChannel(node={self.node}, idx={self.index}, message={mid}, "
            f"sent={self.flits_sent})"
        )
