"""Routing functions: baselines and the shared routing-algorithm interface.

The paper builds on two classical routing algorithms (Section 2):

* **dimension-order (e-cube) routing** [Dally & Seitz 1987] — the deterministic
  baseline.  On a torus, deadlock freedom additionally requires splitting each
  physical channel's virtual channels into two *dateline classes* (the
  Dally–Seitz construction), which is implemented here.
* **Duato's Protocol (DP)** [Duato 1993] — the fully adaptive baseline: most
  virtual channels may be used adaptively on any minimal direction, while a
  small set of *escape* virtual channels follows e-cube and keeps the network
  deadlock free.

The Software-Based fault-tolerant algorithms of the paper are layered on top
of these functions and live in :mod:`repro.core`.
"""

from repro.routing.base import (
    ADAPTIVE_MODE,
    DETERMINISTIC_MODE,
    OutputCandidate,
    RoutingAlgorithm,
    RoutingDecision,
    RoutingHeader,
    VirtualChannelClasses,
)
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.duato import DuatoRouting
from repro.routing.registry import available_routing_algorithms, make_routing

__all__ = [
    "RoutingHeader",
    "RoutingDecision",
    "OutputCandidate",
    "RoutingAlgorithm",
    "VirtualChannelClasses",
    "DETERMINISTIC_MODE",
    "ADAPTIVE_MODE",
    "DimensionOrderRouting",
    "DuatoRouting",
    "make_routing",
    "available_routing_algorithms",
]
