"""Shared routing-algorithm interface.

A routing algorithm is a per-hop *routing function* plus, for the
Software-Based algorithms, a *software re-routing policy* executed by the
messaging layer when a message is absorbed.  The simulation engine only talks
to the interfaces defined here:

* :class:`RoutingHeader` — the mutable per-message routing state carried in the
  header flit (current target, routing mode, direction overrides written by
  the software layer, misroute/absorption accounting);
* :class:`RoutingDecision` — the outcome of one routing computation at one
  router: deliver here, absorb to software, or a prioritised list of
  :class:`OutputCandidate` ports with the virtual channels the header may
  acquire on each;
* :class:`RoutingAlgorithm` — the strategy object implementing the routing
  function and (optionally) the software re-routing policy;
* :class:`VirtualChannelClasses` — the split of the ``V`` virtual channels of a
  physical channel into Dally–Seitz escape classes and adaptive channels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.model import FaultSet
from repro.topology.base import Topology
from repro.topology.channels import MINUS, PLUS

__all__ = [
    "DETERMINISTIC_MODE",
    "ADAPTIVE_MODE",
    "RoutingHeader",
    "OutputCandidate",
    "RoutingDecision",
    "VirtualChannelClasses",
    "RoutingAlgorithm",
]

#: Routing mode used by messages following fixed dimension-order paths.
DETERMINISTIC_MODE = "deterministic"
#: Routing mode used by messages still routed fully adaptively (Duato's DP).
ADAPTIVE_MODE = "adaptive"


@dataclass
class RoutingHeader:
    """Mutable routing state carried in a message's header flit.

    The network-layer routing function reads this state; only the software
    messaging layer (on absorption) and the header-arrival handling of the
    engine mutate it.

    Attributes
    ----------
    final_destination:
        The node the message must ultimately reach.
    target:
        The node the message is currently routed towards.  Equal to
        ``final_destination`` unless the software layer installed an
        intermediate node address (paper assumption (i), option ii).
    routing_mode:
        :data:`ADAPTIVE_MODE` or :data:`DETERMINISTIC_MODE`.  Adaptive messages
        switch to deterministic after their first fault-induced absorption
        (Fig. 2 of the paper: ``routing_type := Deterministic``).
    direction_overrides:
        Mapping ``dimension -> direction`` forcing non-minimal travel in that
        dimension (the "re-route in the same dimension in the opposite
        direction" rule).  An override stays active until the message's
        coordinate equals the target coordinate in that dimension.
    reversed_dimensions:
        Dimensions in which the same-dimension reversal has already been
        applied; a second fault in such a dimension triggers an orthogonal
        detour instead.
    detour_directions:
        Sticky orthogonal detour direction per dimension, so that successive
        detours around the same fault region always step the same way
        (prevents livelock by oscillation).
    absorptions:
        Number of times the message has been absorbed because of faults or
        intermediate targets.
    misroutes:
        Number of non-minimal hops introduced by re-routing decisions
        (used by the livelock accounting).
    visited_states:
        Route-progress invariant bookkeeping: the set of
        ``(node, canonical_state())`` pairs at which this message has already
        been rewritten during the current absorption epoch.  Revisiting such a
        pair proves the deterministic rewrite sequence is cycling, and the
        rerouter escalates through its escape ladder instead of repeating the
        decision.  Lazily allocated (``None`` until the first fault rewrite)
        so fault-free messages pay nothing.
    escape_level:
        The escape-ladder rung last applied to this message (0 = normal table
        path; see :class:`~repro.core.rerouting_tables.EscapeRung`).  Reset to
        0 by a full-state restart, which opens a new absorption epoch.
    used_restart_targets:
        Intermediate nodes already consumed by full-state restarts.  Never
        cleared — the pool of fresh restart targets is finite, which makes the
        escape ladder terminate.  Lazily allocated.
    pending_intermediate:
        The restart intermediate the message must still pass through, or
        ``None``.  Unlike ``target`` it survives nested detours: a message
        detoured while travelling towards a restart intermediate resumes
        towards that intermediate, not towards the final destination
        (otherwise the restart would silently degrade into a replay of the
        doomed original route).
    trace:
        Optional bounded ring buffer (``collections.deque`` with ``maxlen``)
        of :class:`~repro.routing.trace.ReroutingTraceEntry` records, attached
        by the routing algorithm when rerouting tracing is enabled.
    """

    final_destination: int
    target: int
    routing_mode: str = ADAPTIVE_MODE
    direction_overrides: Dict[int, int] = field(default_factory=dict)
    reversed_dimensions: set = field(default_factory=set)
    detour_directions: Dict[int, int] = field(default_factory=dict)
    absorptions: int = 0
    misroutes: int = 0
    visited_states: Optional[set] = None
    escape_level: int = 0
    used_restart_targets: Optional[set] = None
    pending_intermediate: Optional[int] = None
    trace: Optional[object] = None

    @property
    def is_intermediate(self) -> bool:
        """True when the current target is an intermediate node, not the destination."""
        return self.target != self.final_destination

    def clear_override(self, dimension: int) -> None:
        """Drop the direction override of ``dimension`` (offset satisfied)."""
        self.direction_overrides.pop(dimension, None)

    def retarget(self, node: int) -> None:
        """Point the header at a new target node."""
        self.target = node

    def canonical_state(self) -> Tuple:
        """Hashable snapshot of the state that determines future rewrites.

        With a static fault set, the deterministic rewrite at a node is a pure
        function of this tuple: the current target plus the override, reversal
        and sticky-detour state.  Two rewrites of the same message at the same
        node with equal canonical states therefore produce identical decisions
        — which is exactly the revisit condition the route-progress invariant
        detects.
        """
        overrides = self.direction_overrides
        reversals = self.reversed_dimensions
        detours = self.detour_directions
        return (
            self.target,
            self.pending_intermediate,
            tuple(sorted(overrides.items())) if overrides else (),
            tuple(sorted(reversals)) if reversals else (),
            tuple(sorted(detours.items())) if detours else (),
        )

    def progress_key(self, node: int) -> Tuple:
        """The route-progress invariant key of a rewrite of this header at ``node``.

        Semantically ``(node, canonical_state())``, with a cheap flat form for
        the common pristine header (no rerouting state yet).  The two forms
        can never collide: a flat 2-tuple and a nested pair compare unequal,
        and which form applies is itself a function of the canonical state.
        """
        if (
            self.pending_intermediate is None
            and not self.direction_overrides
            and not self.reversed_dimensions
            and not self.detour_directions
        ):
            return (node, self.target)
        return (node, self.canonical_state())

    def clear_rerouting_state(self) -> None:
        """Forget every override, reversal and sticky detour (full restart)."""
        self.direction_overrides.clear()
        self.reversed_dimensions.clear()
        self.detour_directions.clear()

    def record_trace(self, entry: object) -> None:
        """Append ``entry`` to the rerouting trace buffer, if one is attached."""
        if self.trace is not None:
            self.trace.append(entry)


@dataclass(frozen=True)
class OutputCandidate:
    """One output option for a header at a router.

    Attributes
    ----------
    port:
        Flat output-port index (see :mod:`repro.topology.channels`).
    virtual_channels:
        Indices of the virtual channels of that physical channel the header is
        allowed to acquire (already restricted to the proper Dally–Seitz /
        adaptive class).
    priority:
        Smaller numbers are tried first by the engine's VC allocator.  Duato's
        Protocol places adaptive channels at priority 0 and the escape channel
        at priority 1.
    dimension, direction:
        The hop this candidate performs (for statistics and debugging).
    """

    port: int
    virtual_channels: Tuple[int, ...]
    priority: int = 0
    dimension: int = -1
    direction: int = 0


@dataclass
class RoutingDecision:
    """Outcome of one routing computation.

    Exactly one of the following holds:

    * ``deliver`` — the message has reached its current target and must be
      ejected to the local PE (the engine decides whether that means final
      delivery or a software "resume" at an intermediate target);
    * ``absorb`` — the message cannot make progress because the required
      outgoing channel(s) lead to faults; the engine ejects it to the local
      messaging layer, which will rewrite the header (Software-Based
      behaviour);
    * otherwise ``candidates`` lists the outputs the header may take, in
      priority order.
    """

    candidates: List[OutputCandidate] = field(default_factory=list)
    deliver: bool = False
    absorb: bool = False
    blocked_dimension: int = -1
    blocked_direction: int = 0

    def __post_init__(self) -> None:
        if self.deliver and self.absorb:
            raise ValueError("a routing decision cannot both deliver and absorb")
        if (self.deliver or self.absorb) and self.candidates:
            raise ValueError("deliver/absorb decisions must not carry candidates")


class VirtualChannelClasses:
    """Partition of the ``V`` virtual channels of a physical channel.

    Two layouts are used:

    * ``deterministic`` — every virtual channel is an escape (e-cube) channel;
      the set is split into a *low* and a *high* Dally–Seitz dateline class.
    * ``adaptive`` (Duato's Protocol) — virtual channels 0 and 1 are the low
      and high escape channels; the remaining ``V - 2`` channels are fully
      adaptive.

    Parameters
    ----------
    num_virtual_channels:
        ``V``, the number of virtual channels per physical channel.
    adaptive:
        Choose the Duato layout (requires ``V >= 3``); otherwise the
        deterministic layout is used (requires ``V >= 2`` on a torus).
    """

    def __init__(self, num_virtual_channels: int, adaptive: bool) -> None:
        if num_virtual_channels < 1:
            raise ValueError("need at least one virtual channel")
        self._num_vcs = num_virtual_channels
        self._adaptive = adaptive
        if adaptive:
            if num_virtual_channels < 3:
                raise ValueError(
                    "Duato's Protocol needs at least 3 virtual channels per physical "
                    f"channel (2 escape + 1 adaptive); got {num_virtual_channels}"
                )
            self._escape_low: Tuple[int, ...] = (0,)
            self._escape_high: Tuple[int, ...] = (1,)
            self._adaptive_vcs: Tuple[int, ...] = tuple(range(2, num_virtual_channels))
        else:
            if num_virtual_channels < 2:
                raise ValueError(
                    "deterministic torus routing needs at least 2 virtual channels "
                    "per physical channel for the Dally-Seitz dateline classes"
                )
            half = num_virtual_channels // 2
            self._escape_low = tuple(range(half))
            self._escape_high = tuple(range(half, num_virtual_channels))
            self._adaptive_vcs = ()

    @property
    def num_virtual_channels(self) -> int:
        """Total number of virtual channels per physical channel."""
        return self._num_vcs

    @property
    def is_adaptive_layout(self) -> bool:
        """True for the Duato layout (escape + adaptive split)."""
        return self._adaptive

    @property
    def adaptive_channels(self) -> Tuple[int, ...]:
        """Virtual channels usable adaptively on any minimal direction."""
        return self._adaptive_vcs

    def escape_channels(self, high: bool) -> Tuple[int, ...]:
        """Escape channels of the requested Dally–Seitz class."""
        return self._escape_high if high else self._escape_low

    def all_escape_channels(self) -> Tuple[int, ...]:
        """Every escape channel regardless of class."""
        return self._escape_low + self._escape_high


def dateline_class_is_high(
    current_coord: int, target_coord: int, direction: int
) -> bool:
    """Dally–Seitz dateline class for a hop along one torus dimension.

    A message travelling in ``direction`` from coordinate ``current_coord``
    towards ``target_coord`` uses the *high* class while its remaining path in
    this dimension does not cross the wrap-around link, and the *low* class
    while the wrap-around crossing still lies ahead.  This is the classical
    comparison-based assignment (Dally & Seitz 1987) and keeps the extended
    channel dependency graph acyclic; see
    :mod:`repro.core.deadlock` for the machine-checked argument.
    """
    if direction == PLUS:
        return target_coord > current_coord
    if direction == MINUS:
        return target_coord < current_coord
    raise ValueError(f"direction must be +1 or -1, got {direction}")


class RoutingAlgorithm(ABC):
    """Strategy object implementing a routing function.

    Subclasses implement :meth:`route`; fault-tolerant algorithms additionally
    override :meth:`rewrite_after_absorption`, which is invoked by the software
    messaging layer when the engine absorbs a message.
    """

    #: Short machine-readable name (used by the registry and in reports).
    name: str = "abstract"

    def __init__(
        self,
        topology: Topology,
        faults: Optional[FaultSet] = None,
        num_virtual_channels: int = 2,
    ) -> None:
        self._topology = topology
        self._faults = faults if faults is not None else FaultSet.empty()
        self._num_vcs = num_virtual_channels
        self._vc_classes = VirtualChannelClasses(
            num_virtual_channels, adaptive=self.uses_adaptive_channels
        )

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    @property
    def topology(self) -> Topology:
        """The network this routing function operates on."""
        return self._topology

    @property
    def faults(self) -> FaultSet:
        """The static fault set known to the routing function."""
        return self._faults

    @property
    def num_virtual_channels(self) -> int:
        """Number of virtual channels per physical channel."""
        return self._num_vcs

    @property
    def vc_classes(self) -> VirtualChannelClasses:
        """The virtual-channel class layout used by this algorithm."""
        return self._vc_classes

    @property
    def uses_adaptive_channels(self) -> bool:
        """True when the algorithm needs the Duato escape/adaptive VC layout."""
        return False

    @property
    def is_fault_tolerant(self) -> bool:
        """True when the algorithm implements software re-routing."""
        return False

    # ------------------------------------------------------------------ #
    # per-message interface used by the engine
    # ------------------------------------------------------------------ #
    def initial_header(self, source: int, destination: int) -> RoutingHeader:
        """The routing header a freshly generated message starts with."""
        mode = ADAPTIVE_MODE if self.uses_adaptive_channels else DETERMINISTIC_MODE
        return RoutingHeader(
            final_destination=destination,
            target=destination,
            routing_mode=mode,
        )

    @abstractmethod
    def route(self, node: int, header: RoutingHeader) -> RoutingDecision:
        """Routing computation for a header whose flit is at ``node``."""

    def rewrite_after_absorption(self, node: int, header: RoutingHeader) -> None:
        """Software re-routing policy (Software-Based algorithms only).

        Called by the messaging layer after the whole message has been
        absorbed at ``node``.  Implementations mutate ``header`` so that
        re-injection makes progress around the fault.  Baseline algorithms do
        not support absorption and raise.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not fault-tolerant: a message was absorbed at "
            f"node {node} but the algorithm defines no software re-routing policy"
        )

    def on_intermediate_target_reached(self, node: int, header: RoutingHeader) -> None:
        """Called when a message is absorbed at an *intermediate* target node.

        The default behaviour — sufficient for the Software-Based algorithms —
        is to point the header back at the final destination; subclasses may
        refine this (e.g. to chain several intermediate targets).
        """
        header.retarget(header.final_destination)

    # ------------------------------------------------------------------ #
    # helpers shared by concrete algorithms
    # ------------------------------------------------------------------ #
    def remaining_offset(self, node: int, header: RoutingHeader, dimension: int) -> int:
        """Signed remaining offset in ``dimension`` towards the current target.

        Respects a direction override: when the software layer forced
        direction ``s`` in this dimension, the returned offset is the hop count
        in that (possibly non-minimal) direction with sign ``s``.
        """
        topo = self._topology
        current = topo.coords(node)[dimension]
        target = topo.coords(header.target)[dimension]
        if current == target:
            return 0
        override = header.direction_overrides.get(dimension)
        if override is None or not topo.wraparound:
            return topo.offsets(node, header.target)[dimension]
        k = topo.radices[dimension]
        if override == PLUS:
            return (target - current) % k
        return -((current - target) % k)

    def remaining_offsets(self, node: int, header: RoutingHeader) -> Tuple[int, ...]:
        """Per-dimension remaining offsets (override-aware)."""
        return tuple(
            self.remaining_offset(node, header, d) for d in range(self._topology.dimensions)
        )

    def escape_channels_for_hop(
        self, node: int, header: RoutingHeader, dimension: int, direction: int
    ) -> Tuple[int, ...]:
        """Escape virtual channels allowed for a hop, honouring dateline classes.

        On a mesh (no wrap-around) both classes are safe, so the union is
        returned to maximise channel utilisation.
        """
        if not self._topology.wraparound:
            return self._vc_classes.all_escape_channels()
        current = self._topology.coords(node)[dimension]
        target = self._topology.coords(header.target)[dimension]
        high = dateline_class_is_high(current, target, direction)
        return self._vc_classes.escape_channels(high)

    def channel_is_faulty(self, node: int, dimension: int, direction: int) -> bool:
        """True when the outgoing channel of ``node`` along the hop is unusable."""
        neighbour = self._topology.neighbor(node, dimension, direction)
        if neighbour is None:
            return True
        return self._faults.is_link_faulty(node, neighbour)
