"""Dimension-order (e-cube) routing for k-ary n-cubes and meshes.

This is the deterministic baseline of the paper: a message nullifies its
offset in dimension 0 first, then dimension 1, and so on, always taking the
minimal direction (unless a Software-Based direction override is installed in
the header).  On a torus the virtual channels of each physical channel are
split into the two Dally–Seitz dateline classes to keep the algorithm deadlock
free despite the wrap-around links.

The class is *fault-oblivious*: when the single required outgoing channel is
faulty it reports an ``absorb`` decision but provides no software re-routing
policy — that policy is what the Software-Based algorithms in
:mod:`repro.core` add on top.
"""

from __future__ import annotations

from typing import Optional

from repro.routing.base import (
    DETERMINISTIC_MODE,
    OutputCandidate,
    RoutingAlgorithm,
    RoutingDecision,
    RoutingHeader,
)
from repro.topology.channels import MINUS, PLUS, port_index

__all__ = ["DimensionOrderRouting"]


class DimensionOrderRouting(RoutingAlgorithm):
    """Deterministic e-cube routing with Dally–Seitz dateline VC classes."""

    name = "dimension-order"

    @property
    def uses_adaptive_channels(self) -> bool:
        return False

    def initial_header(self, source: int, destination: int) -> RoutingHeader:
        header = super().initial_header(source, destination)
        header.routing_mode = DETERMINISTIC_MODE
        return header

    # ------------------------------------------------------------------ #
    # routing function
    # ------------------------------------------------------------------ #
    def next_dimension(self, node: int, header: RoutingHeader) -> Optional[int]:
        """Lowest dimension whose offset towards the current target is non-zero."""
        for dim in range(self._topology.dimensions):
            if self.remaining_offset(node, header, dim) != 0:
                return dim
        return None

    def route(self, node: int, header: RoutingHeader) -> RoutingDecision:
        if node == header.target:
            return RoutingDecision(deliver=True)

        dim = self.next_dimension(node, header)
        if dim is None:  # pragma: no cover - target check above covers this
            return RoutingDecision(deliver=True)

        offset = self.remaining_offset(node, header, dim)
        direction = PLUS if offset > 0 else MINUS

        if self.channel_is_faulty(node, dim, direction):
            return RoutingDecision(
                absorb=True, blocked_dimension=dim, blocked_direction=direction
            )

        vcs = self.escape_channels_for_hop(node, header, dim, direction)
        candidate = OutputCandidate(
            port=port_index(dim, direction),
            virtual_channels=vcs,
            priority=0,
            dimension=dim,
            direction=direction,
        )
        return RoutingDecision(candidates=[candidate])
