"""Duato's Protocol (DP) fully adaptive routing.

Duato's Protocol [Duato 1993] is the adaptive baseline of the paper: most
virtual channels of every physical channel may be used adaptively on *any*
minimal (profitable) direction, while two escape virtual channels per physical
channel follow dimension-order routing with Dally–Seitz dateline classes.
Because a blocked header can always eventually fall back to the escape
network, whose extended channel dependency graph is acyclic, the protocol is
deadlock free.

Fault behaviour (used by the adaptive Software-Based algorithm): a header is
reported as needing absorption only when *every* profitable physical channel
is faulty — as long as one healthy minimal direction remains, the message can
keep moving inside the network and "is not suffering the big software
overhead" (paper Section 5).
"""

from __future__ import annotations

from typing import List

from repro.routing.base import (
    DETERMINISTIC_MODE,
    OutputCandidate,
    RoutingAlgorithm,
    RoutingDecision,
    RoutingHeader,
)
from repro.topology.channels import MINUS, PLUS, port_index

__all__ = ["DuatoRouting"]


class DuatoRouting(RoutingAlgorithm):
    """Fully adaptive routing with an e-cube escape network (Duato's Protocol)."""

    name = "duato"

    @property
    def uses_adaptive_channels(self) -> bool:
        return True

    # ------------------------------------------------------------------ #
    # routing function
    # ------------------------------------------------------------------ #
    def route(self, node: int, header: RoutingHeader) -> RoutingDecision:
        if node == header.target:
            return RoutingDecision(deliver=True)

        if header.routing_mode == DETERMINISTIC_MODE:
            return self._route_deterministic(node, header)
        return self._route_adaptive(node, header)

    # -- adaptive phase ------------------------------------------------- #
    def _route_adaptive(self, node: int, header: RoutingHeader) -> RoutingDecision:
        offsets = self.remaining_offsets(node, header)
        profitable = [
            (dim, PLUS if off > 0 else MINUS)
            for dim, off in enumerate(offsets)
            if off != 0
        ]
        if not profitable:  # pragma: no cover - covered by the target check
            return RoutingDecision(deliver=True)

        candidates: List[OutputCandidate] = []
        healthy_dims: List[tuple] = []
        for dim, direction in profitable:
            if self.channel_is_faulty(node, dim, direction):
                continue
            healthy_dims.append((dim, direction))
            adaptive_vcs = self._vc_classes.adaptive_channels
            if adaptive_vcs:
                candidates.append(
                    OutputCandidate(
                        port=port_index(dim, direction),
                        virtual_channels=adaptive_vcs,
                        priority=0,
                        dimension=dim,
                        direction=direction,
                    )
                )

        if not healthy_dims:
            # Every profitable physical channel is faulty: the message must be
            # absorbed by the local node's software layer.
            blocked_dim, blocked_dir = profitable[0]
            return RoutingDecision(
                absorb=True, blocked_dimension=blocked_dim, blocked_direction=blocked_dir
            )

        # Escape candidate: the e-cube hop (lowest non-zero dimension), only if
        # that particular channel is healthy.  It is tried after the adaptive
        # channels (priority 1).
        escape_dim, escape_dir = profitable[0]
        if not self.channel_is_faulty(node, escape_dim, escape_dir):
            escape_vcs = self.escape_channels_for_hop(node, header, escape_dim, escape_dir)
            candidates.append(
                OutputCandidate(
                    port=port_index(escape_dim, escape_dir),
                    virtual_channels=escape_vcs,
                    priority=1,
                    dimension=escape_dim,
                    direction=escape_dir,
                )
            )

        return RoutingDecision(candidates=candidates)

    # -- deterministic phase (after a fault absorbed the message) -------- #
    def _route_deterministic(self, node: int, header: RoutingHeader) -> RoutingDecision:
        """e-cube routing restricted to the escape channels.

        Messages that already encountered a fault are routed deterministically
        (Fig. 2 of the paper).  They use only the escape virtual channels so
        the deadlock-freedom argument of the escape network keeps applying.
        """
        for dim in range(self._topology.dimensions):
            offset = self.remaining_offset(node, header, dim)
            if offset == 0:
                continue
            direction = PLUS if offset > 0 else MINUS
            if self.channel_is_faulty(node, dim, direction):
                return RoutingDecision(
                    absorb=True, blocked_dimension=dim, blocked_direction=direction
                )
            vcs = self.escape_channels_for_hop(node, header, dim, direction)
            return RoutingDecision(
                candidates=[
                    OutputCandidate(
                        port=port_index(dim, direction),
                        virtual_channels=vcs,
                        priority=0,
                        dimension=dim,
                        direction=direction,
                    )
                ]
            )
        return RoutingDecision(deliver=True)  # pragma: no cover - defensive
