"""Registry mapping configuration names to routing-algorithm classes.

The simulation configuration refers to routing algorithms by short string
names (e.g. ``"swbased-deterministic"``); this module resolves those names to
concrete :class:`~repro.routing.base.RoutingAlgorithm` instances.  The
Software-Based classes are imported lazily to avoid an import cycle between
:mod:`repro.routing` and :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.model import FaultSet
from repro.routing.base import RoutingAlgorithm
from repro.routing.dimension_order import DimensionOrderRouting
from repro.routing.duato import DuatoRouting
from repro.topology.base import Topology

__all__ = ["make_routing", "available_routing_algorithms"]


def _algorithm_factories() -> Dict[str, type]:
    """Name → class mapping, resolved lazily to avoid circular imports."""
    from repro.core.swbased_nd import SoftwareBasedRouting
    from repro.routing.turn_model import NegativeFirstRouting

    return {
        # Baselines (fault-oblivious).
        "dimension-order": DimensionOrderRouting,
        "ecube": DimensionOrderRouting,
        "duato": DuatoRouting,
        "fully-adaptive": DuatoRouting,
        "negative-first": NegativeFirstRouting,
        # The paper's algorithms.
        "swbased-deterministic": SoftwareBasedRouting.deterministic,
        "swbased-adaptive": SoftwareBasedRouting.adaptive,
    }


def available_routing_algorithms() -> List[str]:
    """Names accepted by :func:`make_routing`, sorted alphabetically."""
    return sorted(_algorithm_factories())


def make_routing(
    name: str,
    topology: Topology,
    faults: Optional[FaultSet] = None,
    num_virtual_channels: int = 2,
    **kwargs,
) -> RoutingAlgorithm:
    """Instantiate a routing algorithm by configuration name.

    Parameters
    ----------
    name:
        One of :func:`available_routing_algorithms` (case-insensitive).
    topology, faults, num_virtual_channels:
        Forwarded to the algorithm constructor.
    **kwargs:
        Extra keyword arguments forwarded verbatim (e.g. ``max_absorptions``
        for the Software-Based algorithms).
    """
    factories = _algorithm_factories()
    key = name.lower()
    if key not in factories:
        raise ValueError(
            f"unknown routing algorithm {name!r}; known: {sorted(factories)}"
        )
    factory = factories[key]
    return factory(
        topology=topology,
        faults=faults,
        num_virtual_channels=num_virtual_channels,
        **kwargs,
    )
