"""Per-message rerouting trace records.

When tracing is enabled (``SoftwareBasedRouting(trace_rerouting=True)`` or the
``--trace-rerouting`` CLI flag), every software rewrite appends one
:class:`ReroutingTraceEntry` to a bounded ring buffer carried on the message's
:class:`~repro.routing.base.RoutingHeader`.  Each entry captures where the
rewrite happened, what the tables (or the escape ladder) decided, and the full
header state *after* the rewrite, so a livelocked message's cycling path can
be read directly off the trace instead of being inferred from aggregate
counters.

The entries are plain frozen dataclasses with no behaviour beyond formatting;
they are surfaced in two places:

* :class:`~repro.errors.LivelockError` (and the engine's absorption-cap
  ``SimulationError``) embed the formatted trace of the offending message in
  the exception text;
* ``NetworkMetrics.rerouting`` aggregates the rewrite/escape counters across
  all messages of a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

__all__ = ["ReroutingTraceEntry", "format_trace"]


@dataclass(frozen=True)
class ReroutingTraceEntry:
    """One software rewrite of one message, recorded at the absorbing node.

    Attributes
    ----------
    node:
        The node whose messaging layer performed the rewrite.
    blocked_dimension, blocked_direction:
        The dimension/direction the e-cube order wanted to route next when the
        message was absorbed (``None``/``0`` for a resume at the target).
    decision:
        The table decision or escape-ladder rung that was taken, e.g.
        ``"reverse"``, ``"detour"``, ``"resume"``,
        ``"escape:alternate-dimension"``, ``"escape:anti-sticky"`` or
        ``"escape:restart"``.
    action:
        The :class:`~repro.core.rerouting_tables.ReroutingAction` value that
        was returned to the engine.
    escape_level:
        The message's escape-ladder level after the rewrite (0 = the normal
        table path).
    target, direction_overrides, reversed_dimensions, detour_directions:
        Snapshot of the header state *after* the rewrite was applied.
    """

    node: int
    blocked_dimension: Optional[int]
    blocked_direction: int
    decision: str
    action: str
    escape_level: int
    target: int
    direction_overrides: Tuple[Tuple[int, int], ...]
    reversed_dimensions: Tuple[int, ...]
    detour_directions: Tuple[Tuple[int, int], ...]

    def describe(self) -> str:
        """One human-readable line for this entry."""
        if self.blocked_dimension is None:
            blocked = "at-target"
        else:
            sign = "+" if self.blocked_direction > 0 else "-"
            blocked = f"dim {self.blocked_dimension}{sign}"
        overrides = {d: s for d, s in self.direction_overrides}
        detours = {d: s for d, s in self.detour_directions}
        return (
            f"node {self.node}: blocked {blocked} -> {self.decision} "
            f"({self.action}), target={self.target}, "
            f"overrides={overrides}, reversed={set(self.reversed_dimensions) or '{}'}, "
            f"detours={detours}, escape_level={self.escape_level}"
        )


def format_trace(entries: Iterable[ReroutingTraceEntry]) -> str:
    """Render a rerouting trace as an indented multi-line block.

    Returns an empty string for an empty trace so callers can append the
    result to an exception message unconditionally.
    """
    lines = [entry.describe() for entry in entries]
    if not lines:
        return ""
    header = f"rerouting trace ({len(lines)} most recent rewrites):"
    return "\n".join([header] + [f"  {line}" for line in lines])
