"""Turn-model partially adaptive routing (negative-first) for meshes.

The paper's related work ([9] Boppana & Chalasani and the turn-model family)
compares fault-tolerant schemes against partially adaptive algorithms obtained
by prohibiting turns.  The *negative-first* algorithm is the n-dimensional
member of that family: a message first makes every hop it needs in the
negative directions (in any order, fully adaptively), and only then the hops in
the positive directions.  Because no turn from a positive direction into a
negative direction ever occurs, the channel dependency graph is acyclic on a
mesh without needing virtual-channel classes.

The algorithm is provided as an additional baseline for mesh experiments and
for the deadlock-checker's test suite; it is *not* part of the paper's
evaluation (which uses tori), and it is fault-oblivious like the other
baselines.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.routing.base import (
    DETERMINISTIC_MODE,
    OutputCandidate,
    RoutingAlgorithm,
    RoutingDecision,
    RoutingHeader,
)
from repro.topology.channels import MINUS, PLUS, port_index

__all__ = ["NegativeFirstRouting"]


class NegativeFirstRouting(RoutingAlgorithm):
    """Negative-first turn-model routing on an n-dimensional mesh."""

    name = "negative-first"

    def __init__(self, topology, faults=None, num_virtual_channels: int = 2) -> None:
        if topology.wraparound:
            raise ConfigurationError(
                "negative-first routing is deadlock-free on meshes only; "
                "use dimension-order or Duato's Protocol on tori"
            )
        super().__init__(topology, faults, num_virtual_channels)

    @property
    def uses_adaptive_channels(self) -> bool:
        return False

    def initial_header(self, source: int, destination: int) -> RoutingHeader:
        header = super().initial_header(source, destination)
        header.routing_mode = DETERMINISTIC_MODE
        return header

    def route(self, node: int, header: RoutingHeader) -> RoutingDecision:
        if node == header.target:
            return RoutingDecision(deliver=True)

        offsets = self.remaining_offsets(node, header)
        negative = [dim for dim, off in enumerate(offsets) if off < 0]
        positive = [dim for dim, off in enumerate(offsets) if off > 0]
        phase_dims = negative if negative else positive
        direction = MINUS if negative else PLUS

        candidates: List[OutputCandidate] = []
        blocked_dim = phase_dims[0]
        for dim in phase_dims:
            if self.channel_is_faulty(node, dim, direction):
                continue
            candidates.append(
                OutputCandidate(
                    port=port_index(dim, direction),
                    virtual_channels=tuple(range(self._num_vcs)),
                    priority=0,
                    dimension=dim,
                    direction=direction,
                )
            )
        if not candidates:
            return RoutingDecision(
                absorb=True, blocked_dimension=blocked_dim, blocked_direction=direction
            )
        return RoutingDecision(candidates=candidates)
