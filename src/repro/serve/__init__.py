"""``repro.serve``: the campaign service daemon and its HTTP building blocks.

* :mod:`repro.serve.app` — the shared stdlib-HTTP application layer
  (:class:`ServeApp` routing + :class:`AppServer` lifecycle); ``campaign
  watch`` runs on the same plumbing.
* :mod:`repro.serve.daemon` — :class:`CampaignService` /
  :class:`CampaignServer`: the ``repro serve`` daemon hosting campaigns over
  one result backend (submit, status, leases, results, series, dashboard).
* :mod:`repro.serve.series` — merged-series assembly and the
  content-address series cache.
* :mod:`repro.serve.client` — the worker-side HTTP client behind
  ``campaign work --server URL``.
"""

from repro.serve.app import AppServer, HttpError, Response, ServeApp
from repro.serve.client import (
    RemoteLeaseStore,
    RemoteResultStore,
    ServeClient,
    open_remote_campaign,
)
from repro.serve.daemon import (
    CampaignServer,
    CampaignService,
    build_app,
    campaign_content_id,
)
from repro.serve.series import SeriesCache, assemble_series

__all__ = [
    "AppServer",
    "CampaignServer",
    "CampaignService",
    "HttpError",
    "RemoteLeaseStore",
    "RemoteResultStore",
    "Response",
    "ServeApp",
    "ServeClient",
    "SeriesCache",
    "assemble_series",
    "build_app",
    "campaign_content_id",
    "open_remote_campaign",
]
