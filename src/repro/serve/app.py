"""The shared stdlib-HTTP application layer for ``repro serve`` and ``watch``.

``http.server`` gives us a threading socket server and nothing else; this
module adds the three things every repro HTTP face needs and nothing more:

* :class:`ServeApp` — a method+pattern route table (``/campaigns/<cid>/series``
  style placeholders) whose dispatch turns handler return values and
  exceptions into uniform JSON responses: :class:`HttpError` keeps its
  status, :class:`~repro.errors.ConfigurationError` is a 400 (the caller
  sent something invalid), anything else is a 500 that is logged and *does
  not* kill the server.  Unknown paths are 404s; a path that exists under a
  different method is a 405.
* :class:`AppServer` — a :class:`~http.server.ThreadingHTTPServer` wrapper
  with the start/stop/serve_forever/context-manager lifecycle
  ``CampaignWatchServer`` established, reading JSON request bodies and
  writing :class:`Response` objects.  A failure to *bind* (port already in
  use) is re-raised as an actionable :class:`ConfigurationError` instead of
  a raw ``OSError`` traceback.

No new dependencies: the daemon must run anywhere the simulator does.
"""

from __future__ import annotations

import json
import logging
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "AppServer",
    "HttpError",
    "Response",
    "ServeApp",
    "html_response",
    "json_response",
    "text_response",
]

logger = logging.getLogger(__name__)

JSON_CONTENT_TYPE = "application/json"


class HttpError(Exception):
    """A handler-raised error with an explicit HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Response:
    """One HTTP response: status, body bytes and content type."""

    status: int = 200
    body: bytes = b""
    content_type: str = JSON_CONTENT_TYPE


def json_response(payload: object, status: int = 200) -> Response:
    """``payload`` rendered as indented JSON (the API's uniform shape)."""
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    return Response(status=status, body=body, content_type=JSON_CONTENT_TYPE)


def text_response(
    text: str, content_type: str = "text/plain; charset=utf-8", status: int = 200
) -> Response:
    return Response(status=status, body=text.encode("utf-8"), content_type=content_type)


def html_response(text: str, status: int = 200) -> Response:
    return text_response(text, content_type="text/html; charset=utf-8", status=status)


#: A route handler: called with the parsed JSON request body (or ``None``)
#: plus the pattern's named path parameters; returns a :class:`Response` or
#: any JSON-serialisable object (wrapped in a 200 ``json_response``).
Handler = Callable[..., object]

_PLACEHOLDER = re.compile(r"<([a-z_]+)>")


def _compile(pattern: str) -> "re.Pattern[str]":
    """``/campaigns/<cid>/leases/<key>`` → an anchored regex with named groups."""
    regex = _PLACEHOLDER.sub(lambda m: f"(?P<{m.group(1)}>[^/]+)", re.escape(pattern).replace(r"\<", "<").replace(r"\>", ">"))
    return re.compile("^" + regex + "$")


@dataclass(frozen=True)
class Route:
    method: str
    pattern: str
    regex: "re.Pattern[str]" = field(compare=False)
    handler: Handler = field(compare=False)


class ServeApp:
    """A method+pattern route table with uniform JSON error handling."""

    def __init__(self, name: str = "repro-serve/1") -> None:
        self.name = name
        self._routes: List[Route] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append(
            Route(method=method.upper(), pattern=pattern, regex=_compile(pattern), handler=handler)
        )

    def routes(self) -> List[str]:
        return [f"{route.method} {route.pattern}" for route in self._routes]

    def dispatch(self, method: str, path: str, body: object = None) -> Response:
        """Route one request; every outcome (including bugs) is a Response."""
        path = path.rstrip("/") or "/"
        allowed: List[str] = []
        for route in self._routes:
            match = route.regex.match(path)
            if match is None:
                continue
            if route.method != method:
                if route.method not in allowed:
                    allowed.append(route.method)
                continue
            try:
                result = route.handler(body=body, **match.groupdict())
            except HttpError as exc:
                return json_response({"error": exc.message}, status=exc.status)
            except ConfigurationError as exc:
                return json_response({"error": str(exc)}, status=400)
            except Exception as exc:  # a handler bug must not kill the server
                logger.warning("%s %s failed: %s", method, path, exc, exc_info=True)
                return json_response(
                    {"error": f"{type(exc).__name__}: {exc}"}, status=500
                )
            if isinstance(result, Response):
                return result
            return json_response(result)
        if allowed:
            return json_response(
                {"error": f"method {method} not allowed for {path} (try {', '.join(sorted(allowed))})"},
                status=405,
            )
        return json_response(
            {"error": f"unknown route {path}", "routes": self.routes()}, status=404
        )


class _AppHandler(BaseHTTPRequestHandler):
    """One connection: parse the JSON body, dispatch, write the Response."""

    server_version = "repro-serve/1"

    def _handle(self, method: str) -> None:
        app: ServeApp = self.server.app  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        body: object = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                self._write(
                    json_response({"error": "request body is not valid JSON"}, status=400)
                )
                return
        self._write(app.dispatch(method, path, body=body))

    def _write(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def log_message(self, format: str, *args) -> None:
        logger.debug("http: %s", format % args)


class AppServer:
    """A :class:`ServeApp` bound to a socket, with the watch lifecycle.

    ``port=0`` binds an ephemeral port (``.port`` reports the real one) —
    how the in-process tests and the CI smoke jobs scrape it.  Binding a
    port something else holds raises an actionable
    :class:`ConfigurationError` instead of leaking the ``OSError``.
    """

    def __init__(
        self, app: ServeApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        handler = type("_BoundHandler", (_AppHandler,), {"server_version": app.name})
        try:
            self._server = ThreadingHTTPServer((host, port), handler)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot serve on http://{host}:{port} ({exc}); the port is "
                "already in use — stop the other listener, pick a different "
                "--port, or use --port 0 for an ephemeral one"
            ) from exc
        self._server.daemon_threads = True
        self._server.app = app  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "AppServer":
        thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"{self.app.name}:{self.port}",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            self._server.serve_forever()
        finally:
            self._server.server_close()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "AppServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
