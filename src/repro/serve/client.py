"""The worker-side HTTP client for ``campaign work --server URL``.

A remote worker needs exactly four capabilities, each mapped onto the serve
daemon's JSON API so no shared filesystem is involved:

* fetch the plan (``GET /campaigns/<id>/plan`` →
  :meth:`~repro.campaign.plan.CampaignPlan.from_payload`, with the same
  integrity checks a local manifest load performs);
* claim/renew/release TTL leases and publish heartbeats
  (:class:`RemoteLeaseStore`, a :class:`~repro.campaign.leases.LeaseStore`
  whose public operations are HTTP calls — the daemon holds the lock);
* read and commit framed result records (:class:`RemoteResultStore`, a
  :class:`~repro.backends.base.ResultBackend` whose lookups and commits are
  HTTP calls; the daemon re-verifies every committed record's
  content-address, so the wire adds no trust);
* observe peers' commits (``GET /campaigns/<id>/keys`` — the HTTP analogue
  of a backend scan).

:func:`open_remote_campaign` bundles all four into the
:class:`~repro.campaign.runner.CampaignTransport` the work loop runs
against, so ``work_campaign`` is byte-for-byte the same claim → simulate →
commit → release loop either way.
"""

from __future__ import annotations

import json
import logging
import re
import urllib.error
import urllib.request
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.backends.base import ResultBackend
from repro.backends.serialize import frame_record, metrics_from_dict, parse_record
from repro.campaign.leases import LeaseRecord, LeaseStore
from repro.campaign.plan import CampaignPlan
from repro.errors import ConfigurationError

__all__ = [
    "RemoteLeaseStore",
    "RemoteResultStore",
    "ServeClient",
    "open_remote_campaign",
    "split_campaign_url",
]

logger = logging.getLogger(__name__)

_CAMPAIGN_URL = re.compile(
    r"^(?P<base>https?://[^/]+)/campaigns/(?P<cid>[A-Za-z0-9_.-]+)/?$"
)


def split_campaign_url(url: str) -> Tuple[str, str]:
    """``http://host:port/campaigns/<id>`` → ``(base URL, campaign id)``."""
    match = _CAMPAIGN_URL.match(url.strip())
    if match is None:
        raise ConfigurationError(
            f"--server must be a campaign URL of the form "
            f"http://host:port/campaigns/<id> (got {url!r}); list the ids "
            "with GET /campaigns on the daemon"
        )
    return match.group("base"), match.group("cid")


class ServeClient:
    """A minimal JSON-over-HTTP client (urllib, stdlib only)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        ok_missing: bool = False,
    ) -> Optional[dict]:
        """One API call; HTTP 404 returns ``None`` when ``ok_missing``.

        Transport failures and error statuses become
        :class:`ConfigurationError` with the daemon's own error message, so
        a worker pointed at a dead or wrong server fails actionably.
        """
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            if exc.code == 404 and ok_missing:
                return None
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                pass
            raise ConfigurationError(
                f"{method} {url} failed: HTTP {exc.code}"
                + (f" — {detail}" if detail else "")
            ) from exc
        except urllib.error.URLError as exc:
            raise ConfigurationError(
                f"cannot reach the campaign server at {url} ({exc.reason}); "
                "is 'repro serve' running and the URL correct?"
            ) from exc
        if not body:
            return None
        return json.loads(body.decode("utf-8"))


class RemoteLeaseStore(LeaseStore):
    """TTL leases held by the daemon, operated over HTTP.

    The base class's concrete operations assume local storage primitives
    under a local lock; here every public operation *is* one HTTP call and
    the daemon's lease store provides the atomicity, so the public methods
    are overridden wholesale and the storage primitives are unreachable.
    ``reclaims`` counts takeovers this client performed, mirroring the
    local accounting the work loop reports.
    """

    def __init__(self, client: ServeClient, campaign_id: str) -> None:
        super().__init__()
        self._client = client
        self._path = f"/campaigns/{campaign_id}"

    def acquire(self, key: str, worker: str, ttl: float, now: Optional[float] = None):
        if ttl <= 0:
            raise ConfigurationError(
                f"lease ttl must be positive seconds (got {ttl})"
            )
        response = self._client.request(
            "POST", f"{self._path}/leases", {"key": key, "worker": worker, "ttl": ttl}
        )
        if not response or not response.get("granted"):
            return None
        if response.get("reclaimed"):
            with self._lock:
                self.reclaims += 1
        return LeaseRecord.from_dict(response["lease"])

    def renew(self, key: str, worker: str, ttl: float, now: Optional[float] = None) -> bool:
        response = self._client.request(
            "PUT", f"{self._path}/leases/{key}", {"worker": worker, "ttl": ttl}
        )
        return bool(response and response.get("renewed"))

    def release(self, key: str, worker: str) -> bool:
        response = self._client.request(
            "DELETE", f"{self._path}/leases/{key}", {"worker": worker}
        )
        return bool(response and response.get("released"))

    def heartbeat(self, worker: str, payload: dict, now: Optional[float] = None) -> None:
        self._client.request("POST", f"{self._path}/workers/{worker}", dict(payload))

    def close(self) -> None:
        pass

    # The local-storage primitives never run remotely: the daemon owns them.
    def _read(self, key):  # pragma: no cover - contract guard
        raise NotImplementedError("remote lease state lives on the daemon")

    def _write(self, record):  # pragma: no cover - contract guard
        raise NotImplementedError("remote lease state lives on the daemon")

    def _delete(self, key):  # pragma: no cover - contract guard
        raise NotImplementedError("remote lease state lives on the daemon")

    def lease_keys(self):  # pragma: no cover - contract guard
        raise NotImplementedError("remote lease state lives on the daemon")

    def _write_worker(self, record):  # pragma: no cover - contract guard
        raise NotImplementedError("remote lease state lives on the daemon")

    def _read_workers(self):  # pragma: no cover - contract guard
        raise NotImplementedError("remote lease state lives on the daemon")


class RemoteResultStore(ResultBackend):
    """The daemon's result store as seen by one remote worker.

    ``get``/``contains`` resolve through ``GET .../records/<key>`` and the
    keys endpoint; ``commit`` POSTs the framed record (the daemon re-frames
    and re-verifies it).  Key knowledge is cached grow-only: completed keys
    never un-complete (commits are idempotent), so a stale negative only
    costs a harmless duplicate simulation, never a wrong result.
    """

    scheme = "http"

    def __init__(self, client: ServeClient, campaign_id: str, worker: str) -> None:
        super().__init__()
        self._client = client
        self._path = f"/campaigns/{campaign_id}"
        self._worker = worker
        self._known: Optional[Set[str]] = None
        self._total_units = 0

    # -- the scan face the work loop polls ----------------------------- #
    def completed_keys(self) -> FrozenSet[str]:
        response = self._client.request("GET", f"{self._path}/keys") or {}
        keys = frozenset(response.get("keys", ()))
        self._total_units = int(response.get("total_units", len(keys)))
        self._known = set(keys)
        return keys

    # -- ResultBackend storage hooks ----------------------------------- #
    def _lookup(self, key):
        response = self._client.request(
            "GET", f"{self._path}/records/{key}", ok_missing=True
        )
        if response is None:
            return None
        _, _, metrics = parse_record(
            response.get("record"), where=f"(served by {self._client.base_url})"
        )
        if self._known is not None:
            self._known.add(key)
        return metrics_from_dict(metrics)

    def _commit(self, key, config, metrics) -> None:
        self._client.request(
            "POST",
            f"{self._path}/results",
            {"worker": self._worker, "record": frame_record(key, config, metrics)},
        )
        if self._known is not None:
            self._known.add(key)

    def __contains__(self, key) -> bool:
        if self._known is None:
            self.completed_keys()
        return key in self._known  # type: ignore[operator]

    def __len__(self) -> int:
        return len(self.completed_keys())

    def keys(self) -> FrozenSet[str]:
        return self.completed_keys()

    def members(self) -> List[Tuple[str, int]]:
        return [("remote", len(self.completed_keys()))]

    def records(self) -> Iterator[Tuple[str, dict]]:  # pragma: no cover
        raise NotImplementedError(
            "remote stores are not record-enumerable; sync against the "
            "daemon's backend URI directly"
        )

    def _discard(self, keys) -> None:  # pragma: no cover - contract guard
        raise NotImplementedError("remote workers cannot delete records")


def open_remote_campaign(server: str, worker: str):
    """A :class:`~repro.campaign.runner.CampaignTransport` over the HTTP API.

    Fetches and integrity-checks the plan, then binds the lease and result
    stores to the daemon.  Event logs are a backend-side feature the HTTP
    face does not carry, so the transport has none.
    """
    # Imported here, not at module level: the runner imports this module
    # lazily for --server workers, and this module needs its transport type.
    from repro.campaign.runner import CampaignTransport

    base, campaign_id = split_campaign_url(server)
    client = ServeClient(base)
    payload = client.request("GET", f"/campaigns/{campaign_id}/plan")
    plan = CampaignPlan.from_payload(
        payload, where=f"{base}/campaigns/{campaign_id}/plan"
    )
    store = RemoteResultStore(client, campaign_id, worker=worker)
    return CampaignTransport(
        plan=plan,
        uri=f"{base}/campaigns/{campaign_id}",
        store=store,
        leases=RemoteLeaseStore(client, campaign_id),
        completed_keys=store.completed_keys,
        event_log=None,
    )
