"""The campaign service daemon behind ``repro serve``.

One long-running process hosts any number of campaigns against one result
backend:

* ``POST /campaigns`` submits a plan (a sweep's base config + rates or a
  figure name + scale).  The campaign id is the content-address of the
  planned work — resubmitting the same plan returns the same id with
  ``created: false`` instead of duplicating it, and the manifest is saved
  under ``<root>/<id>/`` so a restarted daemon re-hosts everything.
* ``GET /campaigns`` / ``GET /campaigns/<id>/status`` report progress
  (the latter is byte-for-byte the ``campaign status --json`` payload).
* ``POST /campaigns/<id>/leases`` + ``PUT/DELETE .../leases/<key>`` +
  ``POST .../workers/<worker>`` + ``POST .../results`` +
  ``GET .../plan|keys|records/<key>`` are the remote-worker face: a
  ``campaign work --server URL`` worker claims TTL leases, observes peers'
  commits and stores framed records entirely over HTTP — no shared
  filesystem.  Committed records pass the usual version check and
  content-address re-verification, so a corrupt or mislabelled submission
  is rejected, not stored.
* ``GET /campaigns/<id>/series`` returns the merged replicated series,
  cached by campaign content-address and invalidated by the store's
  completed-unit count (:mod:`repro.serve.series`) — the repeated figure
  request after a quiet period reads zero backend records.
* ``GET /`` renders the inline HTML+SVG dashboard; ``GET /metrics`` exposes
  the watch gauges for every hosted campaign, labelled by campaign id.

Thread-safety: the HTTP server is threading, so result-store handles are
opened per request (the SQLite backend is connection-per-thread); the one
shared lease store synchronises internally, and the campaign registry is
guarded by the service lock.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List

from repro.backends.registry import open_backend, scan_backend
from repro.backends.serialize import frame_record
from repro.campaign.leases import open_lease_store, worker_member_name
from repro.campaign.plan import (
    MANIFEST_NAME,
    CampaignPlan,
    CampaignUnit,
    check_campaign_backend,
)
from repro.campaign.runner import campaign_status
from repro.campaign.serialize import config_from_dict
from repro.errors import ConfigurationError
from repro.serve.app import AppServer, HttpError, ServeApp, html_response, text_response
from repro.serve.dashboard import render_dashboard
from repro.serve.series import SeriesCache, assemble_series

__all__ = ["CampaignServer", "CampaignService", "build_app", "campaign_content_id"]

logger = logging.getLogger(__name__)


def campaign_content_id(plan: CampaignPlan) -> str:
    """The campaign's content-address: a digest of what it plans to run.

    Covers the kind, the spec and every unit key — two submissions hash the
    same iff they would execute the same work, which is what makes
    ``POST /campaigns`` idempotent.  The hosting backend is deliberately
    excluded: the service decides storage, the plan decides work.
    """
    canonical = json.dumps(
        {"kind": plan.kind, "spec": plan.spec, "keys": [u.key for u in plan.units]},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class HostedCampaign:
    """One campaign the daemon serves: its id, manifest directory and plan."""

    id: str
    directory: Path
    plan: CampaignPlan

    @property
    def by_key(self) -> Dict[str, CampaignUnit]:
        # Built lazily and cached on the plan object (units never change).
        cached = getattr(self.plan, "_units_by_key", None)
        if cached is None:
            cached = {unit.key: unit for unit in self.plan.units}
            object.__setattr__(self.plan, "_units_by_key", cached)  # type: ignore[misc]
        return cached

    @property
    def unit_keys(self) -> List[str]:
        return [unit.key for unit in self.plan.units]


class CampaignService:
    """The daemon's state and request logic, independent of HTTP plumbing."""

    def __init__(self, root, backend: str, registry=None) -> None:
        self.root = Path(root)
        self.backend = check_campaign_backend(backend)
        self.registry = registry
        self._lock = threading.RLock()
        self._campaigns: "Dict[str, HostedCampaign]" = {}
        self._series_cache = SeriesCache()
        self._leases = open_lease_store(self.backend)
        self.root.mkdir(parents=True, exist_ok=True)
        self._rescan()

    # ------------------------------------------------------------------ #
    # campaign registry
    # ------------------------------------------------------------------ #
    def _rescan(self) -> None:
        """Re-host every manifest under the state root (daemon restart)."""
        for manifest in sorted(self.root.glob(f"*/{MANIFEST_NAME}")):
            directory = manifest.parent
            try:
                plan = CampaignPlan.load(directory)
            except ConfigurationError as exc:
                logger.warning("skipping unloadable campaign %s: %s", directory, exc)
                continue
            cid = campaign_content_id(plan)
            if directory.name != cid:
                logger.warning(
                    "campaign directory %s does not match its content id %s; "
                    "hosting it under the recomputed id",
                    directory,
                    cid,
                )
            self._campaigns[cid] = HostedCampaign(id=cid, directory=directory, plan=plan)
        if self._campaigns:
            logger.info(
                "re-hosting %d campaign(s) from %s", len(self._campaigns), self.root
            )

    def campaigns(self) -> List[HostedCampaign]:
        with self._lock:
            return list(self._campaigns.values())

    def _get(self, cid: str) -> HostedCampaign:
        with self._lock:
            hosted = self._campaigns.get(cid)
        if hosted is None:
            raise HttpError(404, f"no campaign {cid!r} (list them at GET /campaigns)")
        return hosted

    def _plan_from_payload(self, payload: object) -> CampaignPlan:
        if not isinstance(payload, dict):
            raise HttpError(400, "POST /campaigns needs a JSON object body")
        kind = payload.get("kind")
        try:
            replications = int(payload.get("replications", 1) or 1)
            if kind == "sweep":
                base = config_from_dict(payload["config"])
                rates = [float(r) for r in payload["rates"]]
                return CampaignPlan.from_injection_sweep(
                    base,
                    rates,
                    replications=replications,
                    label=payload.get("label"),
                    backend=self.backend,
                )
            if kind == "experiment":
                scale_spec = payload.get("scale")
                scale = None
                if scale_spec is not None:
                    from repro.experiments.common import ExperimentScale

                    scale = ExperimentScale(**scale_spec)
                return CampaignPlan.from_experiment(
                    str(payload["figure"]),
                    replications=replications,
                    scale=scale,
                    seed=payload.get("seed"),
                    backend=self.backend,
                )
        except HttpError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise HttpError(400, f"invalid campaign payload: {exc}") from exc
        raise HttpError(
            400,
            "campaign payload needs kind 'sweep' (config + rates [+ label, "
            "replications]) or 'experiment' (figure [+ scale, seed, replications])",
        )

    def submit(self, payload: object) -> dict:
        plan = self._plan_from_payload(payload)
        cid = campaign_content_id(plan)
        with self._lock:
            hosted = self._campaigns.get(cid)
            created = hosted is None
            if created:
                directory = self.root / cid
                plan.save(directory)
                hosted = HostedCampaign(id=cid, directory=directory, plan=plan)
                self._campaigns[cid] = hosted
                logger.info(
                    "hosting new campaign %s (%s, %d units)",
                    cid,
                    plan.kind,
                    len(plan.units),
                )
        return {**self.summary(hosted), "created": created}

    # ------------------------------------------------------------------ #
    # read-side payloads
    # ------------------------------------------------------------------ #
    def summary(self, hosted: HostedCampaign) -> dict:
        status = campaign_status(hosted.directory, backend=self.backend)
        return {
            "id": hosted.id,
            "url": f"/campaigns/{hosted.id}",
            "kind": hosted.plan.kind,
            "backend": self.backend,
            "total_units": status.total_units,
            "completed_units": status.completed_units,
            "pending_units": status.pending_units,
            "complete": status.complete,
        }

    def list_payload(self) -> dict:
        return {
            "backend": self.backend,
            "campaigns": [self.summary(hosted) for hosted in self.campaigns()],
        }

    def status_payload(self, cid: str) -> dict:
        hosted = self._get(cid)
        return campaign_status(hosted.directory, backend=self.backend).as_dict()

    def plan_payload(self, cid: str) -> dict:
        return self._get(cid).plan.to_payload()

    def keys_payload(self, cid: str) -> dict:
        """The campaign's stored unit keys — how remote workers observe
        their peers' commits (the HTTP analogue of a backend scan)."""
        hosted = self._get(cid)
        scan = scan_backend(self.backend)
        stored = sorted(set(hosted.unit_keys) & scan.keys)
        return {"keys": stored, "total_units": len(hosted.unit_keys)}

    def _completed_units(self, hosted: HostedCampaign) -> int:
        scan = scan_backend(self.backend)
        return sum(1 for key in hosted.unit_keys if key in scan.keys)

    def series_payload(self, cid: str) -> dict:
        """The merged replicated series, cached by content-address.

        The cache token is the completed-unit count from a keys-only scan:
        on a hit not a single backend *record* is read (pinned by tests);
        any new commit changes the count and rebuilds the payload.
        """
        hosted = self._get(cid)
        completed = self._completed_units(hosted)
        cached = self._series_cache.get(hosted.id, completed)
        if cached is not None:
            return {**cached, "cached": True}
        store = open_backend(self.backend)
        try:
            assembled = assemble_series(hosted.plan, store)
        finally:
            store.close()
        payload = {
            "id": hosted.id,
            "kind": hosted.plan.kind,
            "backend": self.backend,
            "total_units": len(hosted.unit_keys),
            "completed_units": completed,
            "complete": completed == len(hosted.unit_keys),
            **assembled,
        }
        self._series_cache.put(hosted.id, completed, payload)
        return {**payload, "cached": False}

    def record_payload(self, cid: str, key: str) -> dict:
        hosted = self._get(cid)
        unit = hosted.by_key.get(key)
        if unit is None:
            raise HttpError(404, f"unit {key!r} is not part of campaign {hosted.id}")
        store = open_backend(self.backend)
        try:
            metrics = store.metrics_for(key)
        finally:
            store.close()
        if metrics is None:
            raise HttpError(404, f"unit {key!r} has no stored result yet")
        return {"key": key, "record": frame_record(key, unit.config, metrics)}

    # ------------------------------------------------------------------ #
    # the remote-worker face
    # ------------------------------------------------------------------ #
    @staticmethod
    def _required(body: object, field: str) -> object:
        if not isinstance(body, dict) or not body.get(field):
            raise HttpError(400, f"request body needs a non-empty {field!r} field")
        return body[field]

    def lease_acquire(self, cid: str, body: object) -> dict:
        hosted = self._get(cid)
        worker = str(self._required(body, "worker"))
        key = str(self._required(body, "key"))
        ttl = float(self._required(body, "ttl"))
        if key not in hosted.by_key:
            raise HttpError(404, f"unit {key!r} is not part of campaign {hosted.id}")
        # A refused claim (live foreign lease) is a normal outcome for a
        # work-stealing worker, so it is a 200 with granted=false — errors
        # are reserved for malformed requests.
        before = self._leases.reclaims
        record = self._leases.acquire(key, worker, ttl)
        granted = record is not None
        return {
            "granted": granted,
            "reclaimed": granted and self._leases.reclaims > before,
            "lease": record.to_dict() if granted else None,
        }

    def lease_renew(self, cid: str, key: str, body: object) -> dict:
        self._get(cid)
        worker = str(self._required(body, "worker"))
        ttl = float(self._required(body, "ttl"))
        return {"renewed": self._leases.renew(key, worker, ttl)}

    def lease_release(self, cid: str, key: str, body: object) -> dict:
        self._get(cid)
        worker = str(self._required(body, "worker"))
        return {"released": self._leases.release(key, worker)}

    def worker_heartbeat(self, cid: str, worker: str, body: object) -> dict:
        self._get(cid)
        payload = body if isinstance(body, dict) else {}
        self._leases.heartbeat(worker, payload)
        return {"ok": True}

    def commit_result(self, cid: str, body: object) -> dict:
        hosted = self._get(cid)
        record = self._required(body, "record")
        if not isinstance(record, dict):
            raise HttpError(400, "the 'record' field must be a framed record object")
        key = record.get("key")
        if key not in hosted.by_key:
            raise HttpError(
                400, f"record key {key!r} is not a unit of campaign {hosted.id}"
            )
        worker = str(body.get("worker") or "remote") if isinstance(body, dict) else "remote"
        store = open_backend(self.backend, member=worker_member_name(worker))
        try:
            # put_record version-checks and re-verifies the content address,
            # so a corrupt or mislabelled submission raises (→ 400) here.
            store.put_record(record)
        finally:
            store.close()
        return {"stored": True, "key": key}

    # ------------------------------------------------------------------ #
    # dashboard + metrics
    # ------------------------------------------------------------------ #
    def dashboard_html(self) -> str:
        views = []
        for hosted in self.campaigns():
            views.append(
                {
                    "id": hosted.id,
                    "status": self.status_payload(hosted.id),
                    "series": self.series_payload(hosted.id),
                }
            )
        return render_dashboard(self.backend, views)

    def render_metrics(self) -> str:
        # Imported lazily to keep the telemetry module's own import of the
        # serve app one-directional at module-load time.
        from repro.telemetry.httpd import campaign_gauges
        from repro.telemetry.metrics import MetricsRegistry, metrics_registry

        registry = MetricsRegistry("serve")
        for hosted in self.campaigns():
            payload = self.status_payload(hosted.id)
            campaign_gauges(payload, registry=registry, campaign=hosted.id)
        text = registry.render_prometheus()
        extra = self.registry if self.registry is not None else metrics_registry()
        if extra is not None:
            text += extra.render_prometheus()
        return text

    def close(self) -> None:
        self._leases.close()


def build_app(service: CampaignService) -> ServeApp:
    """Wire the service's methods into the route table."""
    app = ServeApp("repro-serve/1")
    app.add("GET", "/", lambda body: html_response(service.dashboard_html()))
    app.add(
        "GET",
        "/metrics",
        lambda body: text_response(
            service.render_metrics(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        ),
    )
    app.add("GET", "/campaigns", lambda body: service.list_payload())
    app.add("POST", "/campaigns", lambda body: service.submit(body))
    app.add("GET", "/campaigns/<cid>", lambda body, cid: service.summary(service._get(cid)))
    app.add("GET", "/campaigns/<cid>/status", lambda body, cid: service.status_payload(cid))
    app.add("GET", "/campaigns/<cid>/plan", lambda body, cid: service.plan_payload(cid))
    app.add("GET", "/campaigns/<cid>/keys", lambda body, cid: service.keys_payload(cid))
    app.add("GET", "/campaigns/<cid>/series", lambda body, cid: service.series_payload(cid))
    app.add(
        "GET",
        "/campaigns/<cid>/records/<key>",
        lambda body, cid, key: service.record_payload(cid, key),
    )
    app.add(
        "POST", "/campaigns/<cid>/leases", lambda body, cid: service.lease_acquire(cid, body)
    )
    app.add(
        "PUT",
        "/campaigns/<cid>/leases/<key>",
        lambda body, cid, key: service.lease_renew(cid, key, body),
    )
    app.add(
        "DELETE",
        "/campaigns/<cid>/leases/<key>",
        lambda body, cid, key: service.lease_release(cid, key, body),
    )
    app.add(
        "POST",
        "/campaigns/<cid>/workers/<worker>",
        lambda body, cid, worker: service.worker_heartbeat(cid, worker, body),
    )
    app.add(
        "POST", "/campaigns/<cid>/results", lambda body, cid: service.commit_result(cid, body)
    )
    return app


class CampaignServer:
    """The bound daemon: a :class:`CampaignService` behind an :class:`AppServer`."""

    def __init__(
        self,
        root,
        backend: str,
        host: str = "127.0.0.1",
        port: int = 8080,
        registry=None,
    ) -> None:
        self.service = CampaignService(root, backend, registry=registry)
        self._server = AppServer(build_app(self.service), host=host, port=port)
        self.host = host

    @property
    def port(self) -> int:
        return self._server.port

    def start(self) -> "CampaignServer":
        self._server.start()
        logger.info(
            "serving campaigns on http://%s:%d/ (backend %s, state %s)",
            self.host,
            self.port,
            self.service.backend,
            self.service.root,
        )
        return self

    def serve_forever(self) -> None:
        logger.info(
            "serving campaigns on http://%s:%d/ (backend %s, state %s)",
            self.host,
            self.port,
            self.service.backend,
            self.service.root,
        )
        try:
            self._server.serve_forever()
        finally:
            self.service.close()

    def stop(self) -> None:
        self._server.stop()
        self.service.close()

    def __enter__(self) -> "CampaignServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
