"""The ``GET /`` dashboard: inline HTML + SVG, rendered server-side.

No template engine, no JavaScript framework, no dependency: the page is a
meta-refreshing snapshot built from the same ``status`` and ``series``
payloads the JSON API serves (so the curves come through the series cache
and rendering the dashboard costs no extra backend reads on a quiet
campaign).  Each campaign gets a progress bar fed by the unit counters and
an SVG plot of its series — latency vs injection rate for the sweep figures,
the y-metric vs fault count for figs 6/7 — with saturated points marked.
"""

from __future__ import annotations

import html
from typing import List, Sequence, Tuple

__all__ = ["render_dashboard"]

#: Stroke colours cycled across a campaign's series (dark-on-light safe).
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
           "#17becf", "#e377c2")

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-bottom: 0.2rem; }
.campaign { border: 1px solid #d8d8e0; border-radius: 8px; padding: 1rem;
            margin-bottom: 1.5rem; max-width: 64rem; }
.meta { color: #555; font-size: 0.85rem; margin: 0.2rem 0 0.6rem 0; }
.bar { background: #eceff4; border-radius: 4px; height: 14px; width: 100%;
       overflow: hidden; }
.bar span { display: block; height: 100%; background: #2ca02c; }
.bar.partial span { background: #1f77b4; }
.legend { font-size: 0.8rem; margin-top: 0.4rem; }
.legend b { font-weight: 600; }
.empty { color: #777; font-style: italic; }
"""


def _scaled(values: Sequence[float], lo: float, hi: float, size: float, pad: float) -> List[float]:
    span = (hi - lo) or 1.0
    return [pad + (v - lo) / span * (size - 2 * pad) for v in values]


def _svg_plot(series_payload: dict, width: int = 520, height: int = 240) -> str:
    """One campaign's series as an inline SVG latency/metric plot."""
    drawable = [s for s in series_payload.get("series", ()) if s.get("points")]
    if not drawable:
        return '<p class="empty">no completed points yet — curves appear as replications land</p>'
    xs = [p["x"] for s in drawable for p in s["points"]]
    ys = [p["latency_mean"] for s in drawable for p in s["points"]]
    x_lo, x_hi, y_lo, y_hi = min(xs), max(xs), min(ys), max(ys)
    pad = 34.0
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'role="img" style="background:#fbfbfd;border:1px solid #e4e4ec">',
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad / 2}" y2="{height - pad}" stroke="#888"/>',
        f'<line x1="{pad}" y1="{pad / 2}" x2="{pad}" y2="{height - pad}" stroke="#888"/>',
        f'<text x="{pad}" y="{height - 8}" font-size="10" fill="#555">{x_lo:.4g}</text>',
        f'<text x="{width - pad}" y="{height - 8}" font-size="10" fill="#555" text-anchor="end">{x_hi:.4g}</text>',
        f'<text x="4" y="{height - pad}" font-size="10" fill="#555">{y_lo:.4g}</text>',
        f'<text x="4" y="{pad / 2 + 8}" font-size="10" fill="#555">{y_hi:.4g}</text>',
    ]
    legend: List[Tuple[str, str]] = []
    for i, entry in enumerate(drawable):
        colour = PALETTE[i % len(PALETTE)]
        points = entry["points"]
        px = _scaled([p["x"] for p in points], x_lo, x_hi, width, pad)
        # SVG y grows downward; flip so larger latency plots higher.
        py = [
            height - v
            for v in _scaled([p["latency_mean"] for p in points], y_lo, y_hi, height, pad)
        ]
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(px, py))
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{colour}" stroke-width="1.6"/>'
        )
        for (x, y), point in zip(zip(px, py), points):
            radius = 3.4 if point.get("saturated") else 2.2
            fill = "#fff" if point.get("saturated") else colour
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" fill="{fill}" '
                f'stroke="{colour}" stroke-width="1.2"/>'
            )
        legend.append((colour, entry["label"]))
    parts.append("</svg>")
    axis = html.escape(str(drawable[0].get("axis", "injection_rate")))
    swatches = " &nbsp; ".join(
        f'<b style="color:{colour}">—</b> {html.escape(label)}'
        for colour, label in legend
    )
    parts.append(
        f'<div class="legend">latency (cycles) vs {axis}; hollow markers are '
        f"saturated points.<br>{swatches}</div>"
    )
    return "\n".join(parts)


def _campaign_section(view: dict) -> str:
    status = view["status"]
    total = int(status.get("total_units", 0))
    done = int(status.get("completed_units", 0))
    percent = 100.0 * done / total if total else 0.0
    bar_class = "bar" if status.get("complete") else "bar partial"
    work = status.get("work") or {}
    workers = work.get("workers") or []
    active = sum(1 for row in workers if row.get("active"))
    return "\n".join(
        [
            '<section class="campaign">',
            f'<h2><a href="/campaigns/{html.escape(view["id"])}/status">{html.escape(view["id"])}</a>'
            f' <small>({html.escape(str(status.get("kind", "?")))})</small></h2>',
            f'<div class="meta">{done}/{total} units ({percent:.0f}%) · '
            f'{active} active worker{"" if active == 1 else "s"} · '
            f'{work.get("active_leases", 0)} leases · backend {html.escape(str(status.get("backend", "")))}</div>',
            f'<div class="{bar_class}"><span style="width:{percent:.1f}%"></span></div>',
            _svg_plot(view["series"]),
            "</section>",
        ]
    )


def render_dashboard(backend: str, views: List[dict], refresh_seconds: int = 3) -> str:
    """The whole dashboard page for the hosted campaigns.

    ``views`` is one dict per campaign: ``{"id", "status": <status --json
    payload>, "series": <series payload>}``, in submission order.
    """
    sections = (
        "\n".join(_campaign_section(view) for view in views)
        if views
        else '<p class="empty">no campaigns yet — POST a plan to /campaigns</p>'
    )
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="{refresh_seconds}">
<title>repro serve — campaign dashboard</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>repro serve</h1>
<p class="meta">backend {html.escape(backend)} · {len(views)} campaign{"" if len(views) == 1 else "s"} ·
API: POST /campaigns · GET /campaigns · GET /campaigns/&lt;id&gt;/status · GET /campaigns/&lt;id&gt;/series · GET /metrics</p>
{sections}
</body>
</html>
"""
