"""Merged replicated series for the serve daemon, cached by content-address.

:func:`assemble_series` turns a campaign's stored records into the published
curves *without simulating anything*: the plan's units already carry the
per-(point, replication) metadata (``series`` label, ``sweep_point`` /
``fault_count`` position, ``replication`` index) that
:meth:`~repro.sim.parallel.SweepExecutor.run_injection_rate_sweep` stamped at
enumeration time, so grouping by label, ordering replications by index and
folding each point through
:func:`~repro.sim.parallel.aggregate_replications` reproduces the exact
aggregation a single-shot run performs — the returned means and confidence
intervals are bit-identical floats (stored metrics round-trip losslessly and
the fold order is the same).  Points whose replications are not all stored
yet are simply absent, which is what lets the dashboard render curves while
results stream in.

:class:`SeriesCache` makes the repeated-figure request O(1): the cache key is
the campaign's content-address and the validity token is the store's
completed-unit count for that campaign — never wall clock.  A hit returns
the previously assembled payload without touching a single backend record; a
new commit changes the count and invalidates exactly that campaign.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.backends.base import ResultBackend
from repro.sim.parallel import aggregate_replications

__all__ = ["SeriesCache", "assemble_series"]

#: The per-point fields of a series payload (pinned by the schema tests).
POINT_FIELDS = (
    "latency_mean",
    "latency_ci",
    "throughput_mean",
    "throughput_ci",
    "queued_mean",
    "queued_ci",
    "saturated",
    "replications",
)


def assemble_series(plan, store) -> dict:
    """The merged replicated series of ``plan`` from ``store``'s records.

    Returns ``{"series": [...], "total_points": N, "completed_points": M}``
    where each series is ``{"label", "axis", "points"}`` and each point
    carries the ``x`` position plus the :data:`POINT_FIELDS` of its
    :class:`~repro.sim.parallel.PointAggregate`.  Only points with *every*
    replication stored appear — a partially-replicated point would publish
    different floats than the finished campaign.
    """
    replications = int(plan.spec.get("replications", 1) or 1)
    # label -> point key -> {"x": float, "results": {replication: result}};
    # plain dicts keep enumeration (= submission) order for labels and
    # points, so the output is ordered like the single-shot run.
    groups: Dict[str, Dict[Tuple, dict]] = {}
    axis_by_label: Dict[str, str] = {}
    for unit in plan.units:
        metadata = unit.config.metadata or {}
        label = str(
            metadata.get("series")
            or plan.spec.get("label")
            or plan.spec.get("figure")
            or "series"
        )
        if "fault_count" in metadata:
            axis = "fault_count"
            x = float(metadata["fault_count"])
            point_key: Tuple = (x, int(metadata.get("fault_trial", 0)))
        elif "sweep_point" in metadata:
            axis = "injection_rate"
            x = float(unit.config.injection_rate)
            point_key = (int(metadata["sweep_point"]),)
        else:
            axis = "injection_rate"
            x = float(unit.config.injection_rate)
            point_key = ("unit", unit.index)
        axis_by_label[label] = axis
        point = groups.setdefault(label, {}).setdefault(
            point_key, {"x": x, "results": {}}
        )
        metrics = store.metrics_for(unit.key)
        if metrics is not None:
            replication = int(metadata.get("replication", 0))
            point["results"][replication] = ResultBackend.serve(unit.config, metrics)

    series: List[dict] = []
    total_points = completed_points = 0
    for label, points in groups.items():
        rows: List[dict] = []
        for point_key in sorted(points):
            point = points[point_key]
            total_points += 1
            if len(point["results"]) < replications:
                continue
            # Replication-index order is the fold order of a single-shot
            # run_injection_rate_sweep — the bit-identity guarantee.
            ordered = [point["results"][j] for j in sorted(point["results"])]
            aggregate = aggregate_replications(ordered)
            completed_points += 1
            row = {"x": point["x"]}
            for name in POINT_FIELDS:
                row[name] = getattr(aggregate, name)
            rows.append(row)
        series.append({"label": label, "axis": axis_by_label[label], "points": rows})
    return {
        "series": series,
        "total_points": total_points,
        "completed_points": completed_points,
    }


class SeriesCache:
    """Assembled-series payloads keyed by campaign content-address.

    The validity token is the completed-unit count the caller observed with
    a keys-only scan immediately before asking: counts only grow (commits
    are idempotent and content-addressed), so an equal count proves the
    records the cached payload was assembled from are still exactly the
    stored set — no TTLs, no wall clock, no record reads on a hit.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, Tuple[int, dict]] = {}

    def get(self, campaign_id: str, completed_units: int) -> Optional[dict]:
        with self._lock:
            entry = self._entries.get(campaign_id)
        if entry is None or entry[0] != completed_units:
            return None
        return entry[1]

    def put(self, campaign_id: str, completed_units: int, payload: dict) -> None:
        with self._lock:
            self._entries[campaign_id] = (completed_units, payload)

    def invalidate(self, campaign_id: str) -> None:
        with self._lock:
            self._entries.pop(campaign_id, None)
