"""Simulation configuration, runner and parameter-sweep harness.

This is the high-level public API most users interact with: build a
:class:`~repro.sim.config.SimulationConfig`, call
:func:`~repro.sim.runner.run_simulation`, and read the returned metrics.  The
sweep helpers iterate a configuration over injection rates or fault counts,
which is how every figure of the paper is produced; the
:mod:`~repro.sim.parallel` executor underneath fans those points out over a
process pool and replicates each point over independent seeds.
"""

from repro.sim.config import (
    SimulationConfig,
    config_hash,
    config_key,
    derive_child_seeds,
    derive_sweep_seeds,
)
from repro.sim.parallel import (
    PointAggregate,
    ReplicatedSweepResult,
    ShardSpec,
    StreamedResult,
    SweepExecutor,
    SweepPointCache,
    aggregate_replications,
    default_jobs,
)
from repro.sim.runner import SimulationResult, build_engine, run_simulation
from repro.sim.sweep import (
    LoadSweepResult,
    fault_count_sweep,
    injection_rate_sweep,
    latency_throughput_curve,
)

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "build_engine",
    "LoadSweepResult",
    "injection_rate_sweep",
    "latency_throughput_curve",
    "fault_count_sweep",
    "ShardSpec",
    "StreamedResult",
    "SweepExecutor",
    "SweepPointCache",
    "ReplicatedSweepResult",
    "PointAggregate",
    "aggregate_replications",
    "config_hash",
    "config_key",
    "default_jobs",
    "derive_child_seeds",
    "derive_sweep_seeds",
]
