"""Simulation configuration.

A :class:`SimulationConfig` bundles every parameter listed in Section 5 of the
paper ("It accepts several parameters including network size, message length,
number of virtual channels, buffer length, message generation rate, number of
faulty components, router decision time, delay overhead for re-routing and
many other parameters") plus the reproduction-specific controls (warm-up and
measurement sizes, saturation early-stop, RNG seed).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.connectivity import is_connected_without_faults
from repro.faults.model import FaultSet
from repro.topology.base import Topology
from repro.topology.torus import TorusTopology

__all__ = [
    "SimulationConfig",
    "config_hash",
    "config_key",
    "derive_child_seeds",
    "derive_sweep_seeds",
]

#: Traffic processes accepted by ``traffic_process``.
_TRAFFIC_PROCESSES = ("poisson", "bernoulli", "periodic")
#: Engine implementations accepted by ``engine`` (``"auto"`` defers to the
#: ``REPRO_ENGINE`` environment variable, then the dict reference engine).
_ENGINE_CHOICES = ("auto", "dict", "array")
#: Routing algorithms that implement software re-routing.
_FAULT_TOLERANT_ROUTINGS = ("swbased-deterministic", "swbased-adaptive")


@dataclass
class SimulationConfig:
    """Complete description of one simulation run.

    Attributes
    ----------
    topology:
        The network (defaults to the paper's 8-ary 2-cube).
    routing:
        Routing-algorithm name; see
        :func:`repro.routing.available_routing_algorithms`.  The paper's two
        algorithms are ``"swbased-deterministic"`` and ``"swbased-adaptive"``.
    num_virtual_channels:
        Virtual channels per physical channel (``V``).
    buffer_depth:
        Flit capacity of each virtual-channel buffer.
    message_length:
        Message length ``M`` in flits.
    injection_rate:
        Traffic generation rate λ in messages/node/cycle.
    traffic_process:
        ``"poisson"`` (the paper's process), ``"bernoulli"`` or ``"periodic"``.
    traffic_pattern:
        Destination pattern name (``"uniform"`` in the paper).
    faults:
        Static fault set; must keep the healthy network connected.
    warmup_messages / measure_messages:
        Statistics are gathered only for messages generated after the first
        ``warmup_messages`` ones; the run ends once
        ``warmup_messages + measure_messages`` messages have been delivered.
    max_cycles:
        Hard cap on the simulated cycles.
    reinjection_delay:
        Software re-injection overhead Δ in cycles (0 in the paper).
    router_decision_time:
        The paper's ``Td``; kept for completeness.  Only ``Td = 0`` (the value
        used in all of the paper's experiments) is currently supported.
    seed:
        Master RNG seed.  A single run uses it directly; sweeps treat it as
        the *base* seed of the seed-derivation scheme below and give every
        (point, replication) pair its own independent child seed.
    saturation_queue_limit:
        Average backlog (new messages per node) above which the run is marked
        saturated and stopped early; ``None`` disables the early stop.
    max_absorptions_per_message:
        Engine safety valve against livelocked fault patterns: a message
        absorbed more than this many times raises a diagnostic
        :class:`~repro.errors.SimulationError` naming the node, message and
        absorption count instead of spinning until ``max_cycles``.  The
        default is far above the livelock bound of any supported fault
        pattern (the :class:`~repro.core.livelock.LivelockGuard` fires first
        on those); ``None`` disables the valve.
    engine:
        Engine implementation: ``"dict"`` is the object-per-virtual-channel
        reference engine, ``"array"`` the struct-of-arrays kernel
        (:mod:`repro.network.kernel`), and ``"auto"`` (the default) defers to
        the ``REPRO_ENGINE`` environment variable, falling back to ``"dict"``.
        Both engines are bit-identical for a given seed (pinned by
        ``tests/test_engine_golden.py``), so the choice is pure implementation
        selection and is **excluded** from :func:`config_key` /
        :func:`config_hash` — the same point simulated by either engine has
        one content-address.
    drain_max_cycles:
        Cycle budget of :meth:`SimulationEngine.drain` (the hand-injection
        helper used by tests and examples).  ``None`` (the default) scales the
        historical 50 000-cycle budget with the network size so a loaded
        16×16 mesh can still empty; small meshes keep the old value.  Never
        consulted by :meth:`SimulationEngine.run`, hence also excluded from
        the content-address.
    keep_records:
        Retain per-message records in the result (memory-hungry; tests only).
    trace_rerouting:
        Attach a per-message rerouting trace ring buffer to every message of a
        fault-tolerant run (see :mod:`repro.routing.trace`).  The trace is
        embedded in livelock diagnostics and costs a few entries of memory per
        in-flight message; it does not change routing behaviour or RNG draws.
        Ignored (and rejected by :meth:`validate`) for non-fault-tolerant
        algorithms.
    rerouting_trace_depth:
        Capacity of the per-message trace ring buffer (most recent rewrites
        are kept).
    metadata:
        Free-form labels propagated into reports (e.g. figure/series names).
    """

    topology: Topology = field(default_factory=lambda: TorusTopology(radix=8, dimensions=2))
    routing: str = "swbased-deterministic"
    num_virtual_channels: int = 4
    buffer_depth: int = 2
    message_length: int = 32
    injection_rate: float = 0.001
    traffic_process: str = "poisson"
    traffic_pattern: str = "uniform"
    faults: FaultSet = field(default_factory=FaultSet.empty)
    warmup_messages: int = 100
    measure_messages: int = 1000
    max_cycles: int = 200_000
    reinjection_delay: int = 0
    router_decision_time: int = 0
    seed: int = 1
    saturation_queue_limit: Optional[float] = 25.0
    max_absorptions_per_message: Optional[int] = 10_000
    engine: str = "auto"
    drain_max_cycles: Optional[int] = None
    keep_records: bool = False
    trace_rerouting: bool = False
    rerouting_trace_depth: int = 64
    metadata: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # validation and derived quantities
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistent setting."""
        if self.num_virtual_channels < 1:
            raise ConfigurationError("num_virtual_channels must be at least 1")
        if self.routing in ("swbased-adaptive", "duato", "fully-adaptive"):
            if self.num_virtual_channels < 3:
                raise ConfigurationError(
                    "adaptive routing requires at least 3 virtual channels "
                    "(2 escape + 1 adaptive)"
                )
        elif self.num_virtual_channels < 2 and self.topology.wraparound:
            raise ConfigurationError(
                "deterministic torus routing requires at least 2 virtual channels "
                "for the Dally-Seitz dateline classes"
            )
        if self.buffer_depth < 1:
            raise ConfigurationError("buffer_depth must be at least 1")
        if self.message_length < 1:
            raise ConfigurationError("message_length must be at least 1 flit")
        if self.injection_rate < 0:
            raise ConfigurationError("injection_rate must be non-negative")
        if self.traffic_process not in _TRAFFIC_PROCESSES:
            raise ConfigurationError(
                f"unknown traffic process {self.traffic_process!r}; "
                f"known: {_TRAFFIC_PROCESSES}"
            )
        if self.warmup_messages < 0 or self.measure_messages < 1:
            raise ConfigurationError("invalid warm-up / measurement message counts")
        if self.max_cycles < 1:
            raise ConfigurationError("max_cycles must be positive")
        if self.reinjection_delay < 0:
            raise ConfigurationError("reinjection_delay must be non-negative")
        if self.router_decision_time != 0:
            raise ConfigurationError(
                "only router_decision_time = 0 is supported (the value used by the paper)"
            )
        if self.max_absorptions_per_message is not None and self.max_absorptions_per_message < 1:
            raise ConfigurationError(
                "max_absorptions_per_message must be positive (or None to disable the valve)"
            )
        if self.engine not in _ENGINE_CHOICES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {_ENGINE_CHOICES}"
            )
        if self.drain_max_cycles is not None and self.drain_max_cycles < 1:
            raise ConfigurationError(
                "drain_max_cycles must be positive (or None for the size-scaled default)"
            )
        if self.rerouting_trace_depth < 1:
            raise ConfigurationError("rerouting_trace_depth must be at least 1")
        if self.trace_rerouting and self.routing not in _FAULT_TOLERANT_ROUTINGS:
            raise ConfigurationError(
                f"trace_rerouting is only meaningful for the fault-tolerant "
                f"algorithms {_FAULT_TOLERANT_ROUTINGS}, not {self.routing!r}"
            )
        try:
            self.faults.validate(self.topology)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        if not self.faults.is_empty():
            if self.routing not in _FAULT_TOLERANT_ROUTINGS:
                raise ConfigurationError(
                    f"routing {self.routing!r} is not fault tolerant but the fault set "
                    f"contains {self.faults.num_faulty_nodes} faulty nodes / "
                    f"{self.faults.num_faulty_links} faulty links"
                )
            if not is_connected_without_faults(self.topology, self.faults):
                raise ConfigurationError(
                    "the fault set disconnects the network (violates assumption (h))"
                )

    @property
    def total_messages(self) -> int:
        """Messages to deliver before the run stops (warm-up + measured)."""
        return self.warmup_messages + self.measure_messages

    def with_updates(self, **changes) -> "SimulationConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary used in logs and reports."""
        topo = self.topology
        return (
            f"{topo.radices[0]}-ary {topo.dimensions}-cube, routing={self.routing}, "
            f"V={self.num_virtual_channels}, M={self.message_length}, "
            f"lambda={self.injection_rate:g}, faults={self.faults.num_faulty_nodes}"
        )


# --------------------------------------------------------------------------- #
# content-addressed configuration identity
# --------------------------------------------------------------------------- #
# A simulation's metrics are a pure function of its configuration (the seed is
# a config field), so a canonical key over the dynamics-relevant fields
# identifies a result wherever it was computed.  The same key function backs
# the in-memory ``SweepPointCache`` and the disk-backed campaign ``PointStore``
# so the two layers always agree on what "the same point" means.


#: Fields excluded from the content-address: presentation-only state whose
#: value never changes the simulated dynamics.  ``engine`` selects between
#: bit-identical implementations (the dict reference engine and the array
#: kernel produce the same metrics for the same seed), and
#: ``drain_max_cycles`` only budgets the hand-injection ``drain`` helper that
#: ``run`` never calls — including either would split the content-address of
#: otherwise identical results.
_KEY_EXCLUDED_FIELDS = frozenset({"metadata", "engine", "drain_max_cycles"})


def config_key(config: "SimulationConfig") -> Tuple:
    """The hashable identity of a configuration's simulated dynamics.

    Enumerates the dataclass fields (so a field added to
    :class:`SimulationConfig` later joins the key automatically — it must be
    listed in ``_KEY_EXCLUDED_FIELDS`` to opt *out*); ``metadata`` (free-form
    report labels) is excluded so relabelled reruns of the same point share
    one identity.  Topologies are keyed by class and radices, fault sets by
    their sorted node/link contents — the key is a pure value, independent of
    object identity, dict insertion order and the per-process hash seed.
    """
    parts: List = []
    for spec in fields(SimulationConfig):
        if spec.name in _KEY_EXCLUDED_FIELDS:
            continue
        value = getattr(config, spec.name)
        if spec.name == "topology":
            parts.append(type(value).__name__)
            parts.append(tuple(value.radices))
        elif spec.name == "faults":
            parts.append(tuple(sorted(value.nodes)))
            parts.append(tuple(sorted(value.links)))
        else:
            parts.append(value)
    return tuple(parts)


def config_hash(config: "SimulationConfig") -> str:
    """Stable hex digest of :func:`config_key`, usable across processes.

    The key tuple is serialised to canonical JSON (tuples become arrays,
    floats keep their shortest round-trip representation) and hashed with
    SHA-256, so the digest of a given configuration is identical across
    interpreter runs, hosts and ``PYTHONHASHSEED`` values — the property the
    disk-backed campaign store relies on.
    """
    canonical = json.dumps(config_key(config), separators=(",", ":"), allow_nan=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# seed-derivation scheme
# --------------------------------------------------------------------------- #
# Sweeps must NOT reuse the literal base seed for every point: points would
# then share the traffic arrival stream and their results would be strongly
# correlated, understating the variance of any aggregate.  Instead every
# sweep derives child seeds through ``numpy.random.SeedSequence``:
#
# * point ``i`` of a sweep gets ``SeedSequence(base_seed).spawn(n)[i]``;
# * replication ``j`` of point ``i`` gets a second-level spawn of that
#   point's sequence, i.e. ``SeedSequence(base_seed, spawn_key=(i, j))``.
#
# ``spawn(n)[i]`` depends only on ``(base_seed, i)`` — never on ``n``, the
# worker count or the execution order — so serial and parallel executions of
# the same sweep see identical per-run seeds (proven by
# ``tests/test_sim_determinism.py``).  The 64-bit child seed feeds
# ``SimulationConfig.seed`` and from there the engine's two RNGs.


def _seed_of(sequence: "np.random.SeedSequence") -> int:
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def derive_child_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` independent child seeds derived from ``base_seed``.

    Entry ``i`` depends only on ``(base_seed, i)``; extending the sweep with
    more points never changes the seeds of the existing ones.  Defined as
    replication 0 of the two-level scheme so the returned seeds reproduce
    exactly what a 1-replication executor sweep runs.
    """
    if count < 0:
        raise ConfigurationError("seed count must be non-negative")
    return [point[0] for point in derive_sweep_seeds(base_seed, count, 1)]


def derive_sweep_seeds(base_seed: int, num_points: int, replications: int) -> List[List[int]]:
    """The two-level seed table of a replicated sweep.

    ``derive_sweep_seeds(s, P, R)[i][j]`` is the seed of replication ``j`` of
    sweep point ``i`` — the scheme documented above.
    """
    if num_points < 0:
        raise ConfigurationError("num_points must be non-negative")
    if replications < 1:
        raise ConfigurationError("replications must be at least 1")
    return [
        [_seed_of(rep) for rep in point.spawn(replications)]
        for point in np.random.SeedSequence(base_seed).spawn(num_points)
    ]
