"""Parallel sweep execution with replicated runs.

Every figure of the paper is a parameter sweep whose points are mutually
independent simulations — an embarrassingly parallel workload that the serial
harness in :mod:`repro.sim.sweep` leaves on the table.  This module adds the
substrate the ROADMAP's scaling work builds on:

* :class:`SweepExecutor` fans sweep points out over a ``multiprocessing``
  pool (serial when ``jobs=1`` or when the platform cannot fork), runs
  ``replications`` independent seeds per point, and streams results back
  without holding per-message state in the parent;
* per-run seeds are derived from the base seed with
  :func:`repro.sim.config.derive_sweep_seeds`, so ``jobs=1`` and ``jobs=N``
  produce bit-identical results for the same base seed;
* :class:`ReplicatedSweepResult` aggregates the replications of each point
  into mean ± 95 % confidence-interval series, which is what the paper's
  methodology ("each of them corresponding to a different randomly selected
  failures") calls for and what the serial harness never provided;
* :class:`SweepPointCache` memoises ``(config, seed) → result`` so repeated
  figure runs — and the sweep points shared between figures — skip the
  already-simulated points entirely; it is the process-local flavour of the
  pluggable :class:`repro.backends.base.ResultBackend` family, and any
  backend (or backend URI such as ``sqlite://…``) drops into ``cache=``.

Execution is a streaming producer/consumer: :meth:`SweepExecutor.
stream_configs` yields every completed ``(index, result)`` out of an
``as_completed`` drain loop the moment it finishes, committing it to the
configured backend first — so a consumer killed mid-stream loses at most the
in-flight work, and live ``status`` queries see every committed point.  The
collect-then-return APIs (:meth:`run_configs` and the sweep methods) are
thin, order-restoring layers over that stream, which is why ``jobs=1`` and
``jobs=N`` remain bit-identical.

The executor is deliberately free of simulation knowledge: workers receive a
pickled :class:`~repro.sim.config.SimulationConfig` and return a
:class:`~repro.sim.runner.SimulationResult`, so any future sweep axis
parallelises the same way.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import re
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, fields
from time import perf_counter
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends.memory import MemoryBackend
from repro.errors import ConfigurationError
from repro.faults.injection import random_node_faults
from repro.faults.model import FaultSet
from repro.metrics.statistics import confidence_interval
from repro.sim.config import SimulationConfig, config_key, derive_sweep_seeds
from repro.sim.runner import SimulationResult, run_simulation
from repro.telemetry.metrics import metrics_registry

__all__ = [
    "PointAggregate",
    "ReplicatedSweepResult",
    "ShardSpec",
    "StreamedResult",
    "SweepExecutor",
    "SweepPointCache",
    "SweepSeriesMixin",
    "aggregate_replications",
    "default_jobs",
]


logger = logging.getLogger(__name__)


def default_jobs() -> int:
    """A sensible worker count for this machine (all CPUs, at least 1)."""
    return max(1, os.cpu_count() or 1)


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _timed_run(config: SimulationConfig) -> Tuple[SimulationResult, float]:
    """``run_simulation`` plus its wall-clock seconds.

    Module-level so it pickles into pool workers; the two ``perf_counter``
    reads are noise next to a whole simulation, so the timing is
    unconditional and the parent decides whether to record it.
    """
    start = perf_counter()
    result = run_simulation(config)
    return result, perf_counter() - start


def _record_unit_metrics(reused: bool, seconds: float) -> None:
    """Fold one completed unit into the metrics registry (no-op when off)."""
    registry = metrics_registry()
    if registry is None:
        return
    registry.counter(
        "repro_executor_units_total",
        "Sweep units completed, by how the result was obtained.",
        labelnames=("outcome",),
    ).inc(outcome="reused" if reused else "simulated")
    if not reused:
        registry.histogram(
            "repro_executor_unit_seconds",
            "Wall-clock seconds per simulated sweep unit.",
        ).observe(seconds)


# --------------------------------------------------------------------------- #
# shard addressing
# --------------------------------------------------------------------------- #
_SHARD_RE = re.compile(r"^\s*(\d+)\s*/\s*(\d+)\s*$")


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a work list split round-robin across ``count`` runners.

    Shard ``index`` (1-based, so ``1/4`` .. ``4/4``) owns every work unit
    whose 0-based position satisfies ``position % count == index - 1``.
    Round-robin (rather than contiguous blocks) keeps the shards balanced
    even when cost grows monotonically along the list, as it does for
    injection-rate sweeps approaching saturation.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(
                f"shard count must be at least 1 (got {self.count}); "
                "use 1/1 for an unsharded run"
            )
        if not 1 <= self.index <= self.count:
            raise ConfigurationError(
                f"shard index must be between 1 and the shard count "
                f"(got {self.index}/{self.count}); shards are numbered from 1, "
                f"e.g. --shard 1/{self.count} through --shard {self.count}/{self.count}"
            )

    @classmethod
    def parse(cls, spec: str) -> "ShardSpec":
        """Parse an ``I/N`` command-line spec (e.g. ``2/4``).

        Raises :class:`ConfigurationError` with an actionable message on any
        malformed input.
        """
        match = _SHARD_RE.match(spec)
        if not match:
            raise ConfigurationError(
                f"invalid shard spec {spec!r}: expected INDEX/COUNT with two "
                "positive integers, e.g. --shard 2/4 to run the second of four "
                "shards"
            )
        return cls(index=int(match.group(1)), count=int(match.group(2)))

    def owns(self, position: int) -> bool:
        """True when this shard is responsible for the given 0-based position."""
        return position % self.count == self.index - 1

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


# --------------------------------------------------------------------------- #
# the sweep-point memo cache
# --------------------------------------------------------------------------- #
class SweepPointCache(MemoryBackend):
    """In-memory ``(config, seed) → SimulationResult`` memo cache.

    A simulation's metrics are a pure function of its configuration (the seed
    is a config field), so repeated figure runs — and sweep points shared
    between figures, e.g. the fault-free series of Figs. 3 and 4 — can skip
    points that were already simulated.  Share one cache instance between
    executors to share points across sweeps.

    This is the executor-facing flavour of
    :class:`repro.backends.memory.MemoryBackend`: all cache semantics
    (detach-on-serve, rebind to the requesting configuration, hit/miss
    accounting) are inherited from the shared
    :class:`~repro.backends.base.ResultBackend` contract.  The only
    difference is the key: :func:`repro.sim.config.config_key` — the raw
    tuple behind the :func:`~repro.sim.config.config_hash` content-address
    every persistent backend uses — which skips the canonical-JSON/SHA-256
    digest on a process-local hot path where a plain tuple hashes faster.
    ``metadata`` (free-form report labels) is excluded from the key either
    way, so a hit returns a result rebound to the *requesting* configuration
    with the caller's labels preserved.
    """

    def __init__(self) -> None:
        super().__init__()

    #: The shared key function (kept as a static method for backwards
    #: compatibility with callers of ``SweepPointCache.key_of``).
    key_of = staticmethod(config_key)


# --------------------------------------------------------------------------- #
# replication aggregation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PointAggregate:
    """Mean ± 95 % confidence interval over the replications of one point.

    ``*_ci`` fields are confidence-interval *half widths* (NaN for a single
    replication, where no interval exists).  ``saturated`` is True when *any*
    replication saturated: a point whose network collapses under one seed is
    past the knee of the curve even if another seed squeaked through.
    """

    latency_mean: float
    latency_ci: float
    throughput_mean: float
    throughput_ci: float
    queued_mean: float
    queued_ci: float
    saturated: bool
    replications: int


def aggregate_replications(results: Sequence[SimulationResult]) -> PointAggregate:
    """Aggregate the independent replications of one sweep point.

    With a single replication the means equal the run's own values exactly
    (the streaming mean of identical observations is bit-exact), so a
    1-replication sweep reproduces the historical single-seed series.
    """
    if not results:
        raise ConfigurationError("cannot aggregate an empty replication set")
    lat_mean, lat_ci = confidence_interval([r.mean_latency for r in results])
    thr_mean, thr_ci = confidence_interval([r.throughput for r in results])
    queued_mean, queued_ci = confidence_interval([float(r.messages_queued) for r in results])
    return PointAggregate(
        latency_mean=lat_mean,
        latency_ci=lat_ci,
        throughput_mean=thr_mean,
        throughput_ci=thr_ci,
        queued_mean=queued_mean,
        queued_ci=queued_ci,
        saturated=any(r.saturated for r in results),
        replications=len(results),
    )


class SweepSeriesMixin:
    """Shared views over aligned ``(rates, latencies, saturated)`` series.

    Mixed into both sweep-result flavours so the duck-type contract the
    reporting helpers rely on has a single implementation.
    """

    @property
    def saturation_rate(self) -> Optional[float]:
        """The smallest injection rate at which the network saturated, if any."""
        for rate, sat in zip(self.rates, self.saturated):
            if sat:
                return rate
        return None

    def non_saturated_latencies(self) -> List[float]:
        """Latency values of the points below saturation."""
        return [lat for lat, sat in zip(self.latencies, self.saturated) if not sat]


@dataclass
class ReplicatedSweepResult(SweepSeriesMixin):
    """Mean ± CI series produced by a replicated injection-rate sweep.

    The series are aligned exactly like :class:`~repro.sim.sweep.LoadSweepResult`
    (``latency_mean[i]`` belongs to ``rates[i]``) and the result duck-types the
    subset of that class used by the reporting helpers (``rates`` /
    ``latencies`` / ``throughputs`` / ``saturated`` / ``label``), so a
    replicated sweep drops into :func:`repro.analysis.tables.series_table`
    unchanged.  ``results[i][j]`` is replication ``j`` of point ``i``.
    """

    label: str
    replications: int = 1
    rates: List[float] = field(default_factory=list)
    latency_mean: List[float] = field(default_factory=list)
    latency_ci: List[float] = field(default_factory=list)
    throughput_mean: List[float] = field(default_factory=list)
    throughput_ci: List[float] = field(default_factory=list)
    queued_mean: List[float] = field(default_factory=list)
    queued_ci: List[float] = field(default_factory=list)
    saturated: List[bool] = field(default_factory=list)
    results: List[List[SimulationResult]] = field(default_factory=list)

    def append_point(self, rate: float, point_results: Sequence[SimulationResult]) -> PointAggregate:
        """Aggregate one point's replications and add it to the series."""
        agg = aggregate_replications(point_results)
        self.rates.append(rate)
        self.latency_mean.append(agg.latency_mean)
        self.latency_ci.append(agg.latency_ci)
        self.throughput_mean.append(agg.throughput_mean)
        self.throughput_ci.append(agg.throughput_ci)
        self.queued_mean.append(agg.queued_mean)
        self.queued_ci.append(agg.queued_ci)
        self.saturated.append(agg.saturated)
        self.results.append(list(point_results))
        return agg

    # ------------------------------------------------------------------ #
    # LoadSweepResult-compatible views
    # ------------------------------------------------------------------ #
    @property
    def latencies(self) -> List[float]:
        """Alias of ``latency_mean`` (LoadSweepResult-compatible)."""
        return self.latency_mean

    @property
    def throughputs(self) -> List[float]:
        """Alias of ``throughput_mean`` (LoadSweepResult-compatible)."""
        return self.throughput_mean


# --------------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StreamedResult:
    """One completed unit of a streamed execution.

    ``index`` is the submission-order position of the configuration (the
    campaign unit index), ``reused`` is True when the result was served from
    the backend instead of simulated.  By the time a consumer sees the event
    the result has already been committed to the executor's backend — the
    streaming durability contract.
    """

    index: int
    result: SimulationResult
    reused: bool
    #: Wall-clock seconds the simulation took (0.0 for reused results) —
    #: what the campaign runner's per-unit events and the executor's
    #: wall-time histogram report.
    seconds: float = 0.0


class SweepExecutor:
    """Run sweep points across a process pool with replicated seeds.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` runs everything in the calling process; on
        platforms without the ``fork`` start method the executor silently
        falls back to serial execution regardless of ``jobs`` (results are
        identical either way by construction).
    replications:
        Independent seeds per sweep point; each replication's seed is derived
        from the base seed via the scheme documented in
        :mod:`repro.sim.config`.
    cache:
        Optional result backend; configurations already simulated (same
        dynamics, same seed) return their stored result instead of
        re-running.  Accepts any :class:`repro.backends.base.ResultBackend`
        (or anything with the same ``get(config)`` / ``put(config, result)``
        contract), or a backend URI string — ``"mem://"``,
        ``"dir://results"``, ``"sqlite://results/points.sqlite"`` — resolved
        through :func:`repro.backends.open_backend`.  Persistent backends
        make the executor resumable across processes; pass a shared instance
        to share points across sweeps and figures.  Since a cached result is
        bit-identical to a fresh run by construction, caching never changes a
        sweep's output.
    shard:
        Optional :class:`ShardSpec` restricting :meth:`run_configs` to the
        work units this shard owns (the others come back as ``None``); the
        aggregated sweep methods refuse a sharded executor because a shard
        cannot assemble complete series on its own — merge the shards'
        stores first, then re-run unsharded against the merged store.

    Determinism contract: for a fixed base seed, every ``(point,
    replication)`` run receives a seed that depends only on the base seed and
    its own indices, and results are reassembled in submission order — so
    ``jobs`` changes wall-clock time, never a single output bit.
    """

    def __init__(
        self,
        jobs: int = 1,
        replications: int = 1,
        cache: Union[SweepPointCache, str, None] = None,
        shard: Optional[ShardSpec] = None,
    ) -> None:
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
            raise ConfigurationError(
                f"jobs must be a positive integer (got {jobs!r}); "
                "use jobs=1 for serial execution"
            )
        if not isinstance(replications, int) or isinstance(replications, bool) or replications < 1:
            raise ConfigurationError(
                f"replications must be a positive integer (got {replications!r})"
            )
        if shard is not None and not isinstance(shard, ShardSpec):
            raise ConfigurationError(
                f"shard must be a ShardSpec (got {shard!r}); "
                "build one with ShardSpec.parse('2/4')"
            )
        if isinstance(cache, str):
            # A backend URI: resolve it through the registry so callers can
            # say SweepExecutor(cache="sqlite://results/points.sqlite").
            # Imported lazily — the registry is storage-layer machinery the
            # executor only needs when asked for it by name.
            from repro.backends.registry import open_backend

            cache = open_backend(cache)
        self.jobs = jobs
        self.replications = replications
        self.cache = cache
        self.shard = shard

    def _reject_sharded(self, method: str) -> None:
        if self.shard is not None:
            raise ConfigurationError(
                f"{method} cannot run on a sharded executor (shard {self.shard}): "
                "a single shard cannot assemble a complete aggregated series; "
                "run each shard's work units through run_configs (or the campaign "
                "runner) and merge the shards' stores before aggregating"
            )

    @property
    def effective_jobs(self) -> int:
        """Worker processes actually usable on this platform.

        Equals ``jobs`` where the ``fork`` start method exists, 1 otherwise
        (the serial fallback) — report this value, not ``jobs``, when telling
        a user how a sweep was executed.
        """
        return self.jobs if _fork_available() else 1

    # ------------------------------------------------------------------ #
    # the streaming producer/consumer core
    # ------------------------------------------------------------------ #
    def stream_configs(
        self, configs: Sequence[SimulationConfig]
    ) -> Iterator[StreamedResult]:
        """Yield every configuration's result the moment it completes.

        The streaming core every collect-then-return API sits on.  Each
        yielded :class:`StreamedResult` has already been committed to the
        executor's backend (``cache.put`` happens *before* the yield), so a
        consumer killed between events loses at most the in-flight work —
        the durability contract the campaign runner's kill-and-resume
        depends on — and a concurrently watching ``status`` query sees live
        progress.

        Ordering: with one effective worker, events arrive in submission
        order; in parallel mode, backend hits are streamed first (in
        submission order) and the simulated misses follow in completion
        order out of an ``as_completed`` drain loop.  Consumers that need
        submission order
        reassemble by ``event.index`` — which is why aggregation stays
        bit-identical for every ``jobs`` value.  On a sharded executor only
        owned positions are consulted and yielded.
        """
        configs = list(configs)
        cache = self.cache
        shard = self.shard
        owned: Sequence[int] = (
            range(len(configs))
            if shard is None
            else [i for i in range(len(configs)) if shard.owns(i)]
        )
        if self.effective_jobs <= 1:
            # Fully serial: submission order, hits and misses interleaved,
            # each result released to the consumer before the next lookup —
            # a resumed million-unit shard holds one result at a time.
            for index in owned:
                result = cache.get(configs[index]) if cache is not None else None
                if result is not None:
                    _record_unit_metrics(True, 0.0)
                    yield StreamedResult(index=index, result=result, reused=True)
                    continue
                result, seconds = _timed_run(configs[index])
                if cache is not None:
                    cache.put(configs[index], result)
                _record_unit_metrics(False, seconds)
                yield StreamedResult(
                    index=index, result=result, reused=False, seconds=seconds
                )
            return

        # Parallel mode: backend hits are streamed (and released) as the
        # cache pass discovers them, never buffered — only the miss *indices*
        # are retained, so resuming a huge mostly-complete shard stays O(1)
        # in result space.  Hits therefore precede misses in the event
        # stream, which the parallel ordering contract allows.
        miss_indices: List[int] = []
        for index in owned:
            hit = cache.get(configs[index]) if cache is not None else None
            if hit is not None:
                _record_unit_metrics(True, 0.0)
                yield StreamedResult(index=index, result=hit, reused=True)
            else:
                miss_indices.append(index)

        # The pool is sized by (and only created for) the cache misses: a
        # warm-cache rerun answers everything from the parent process.
        workers = min(self.effective_jobs, len(miss_indices))
        if workers <= 1:
            for index in miss_indices:
                result, seconds = _timed_run(configs[index])
                if cache is not None:
                    cache.put(configs[index], result)
                _record_unit_metrics(False, seconds)
                yield StreamedResult(
                    index=index, result=result, reused=False, seconds=seconds
                )
            return

        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            futures = {
                pool.submit(_timed_run, configs[index]): index
                for index in miss_indices
            }
            try:
                for future in as_completed(list(futures)):
                    index = futures.pop(future)  # release the result once consumed
                    result, seconds = future.result()
                    if cache is not None:
                        cache.put(configs[index], result)
                    _record_unit_metrics(False, seconds)
                    yield StreamedResult(
                        index=index, result=result, reused=False, seconds=seconds
                    )
            finally:
                if futures:
                    # The consumer stopped early (close(), an exception in its
                    # loop, a kill): without this, the pool's __exit__ would
                    # block until every queued simulation ran — and then drop
                    # the results.  Cancel the queued tail so shutdown waits
                    # only for the in-flight runs, and commit any run that
                    # finished unconsumed; the loss stays "at most in-flight
                    # work", matching the streaming durability contract.
                    for future in futures:
                        future.cancel()
                    if cache is not None:
                        for future, index in futures.items():
                            if future.done() and not future.cancelled():
                                try:
                                    result, _seconds = future.result()
                                except Exception:
                                    continue  # a failed run has nothing to keep
                                try:
                                    cache.put(configs[index], result)
                                except Exception:
                                    # Best-effort salvage: a backend that is
                                    # itself failing (the likely reason we are
                                    # unwinding) must not mask the original
                                    # error — the unit simply stays pending.
                                    continue

    # ------------------------------------------------------------------ #
    # generic ordered map
    # ------------------------------------------------------------------ #
    def run_configs(
        self,
        configs: Sequence[SimulationConfig],
        progress: Optional[Callable[[SimulationResult], None]] = None,
    ) -> List[SimulationResult]:
        """Run every configuration and return results in submission order.

        An order-restoring drain of :meth:`stream_configs`.  ``progress``
        fires once per finished run — in submission order when serial, in
        completion order when parallel.  On a sharded executor only the
        positions this shard owns are consulted against the cache and run;
        the other entries of the returned list are ``None`` and never reach
        ``progress``.
        """
        configs = list(configs)
        results: List[Optional[SimulationResult]] = [None] * len(configs)
        for event in self.stream_configs(configs):
            results[event.index] = event.result
            if progress is not None:
                progress(event.result)
        return results  # type: ignore[return-value]

    def _map_pool(
        self,
        pool: ProcessPoolExecutor,
        configs: Sequence[SimulationConfig],
        progress: Optional[Callable[[SimulationResult], None]] = None,
    ) -> List[SimulationResult]:
        """Map ``configs`` over a live pool in submission order, serving
        cache hits locally.

        Only cache misses are dispatched to workers; hits are answered from
        the parent-process cache (their ``progress`` fires immediately,
        before the pooled runs complete).  Used by the windowed truncation
        path, which keeps one pool across windows.
        """
        ordered: List[Optional[SimulationResult]] = [None] * len(configs)
        miss_indices: List[int] = []
        cache = self.cache
        if cache is None:
            miss_indices = list(range(len(configs)))
        else:
            for index, config in enumerate(configs):
                hit = cache.get(config)
                if hit is not None:
                    ordered[index] = hit
                    _record_unit_metrics(True, 0.0)
                    if progress is not None:
                        progress(hit)
                else:
                    miss_indices.append(index)
        futures = {
            pool.submit(_timed_run, configs[index]): index
            for index in miss_indices
        }
        try:
            for future in as_completed(list(futures)):
                index = futures.pop(future)
                result, seconds = future.result()
                ordered[index] = result
                if cache is not None:
                    cache.put(configs[index], result)
                _record_unit_metrics(False, seconds)
                if progress is not None:
                    progress(result)
        finally:
            # On an early exit (a raising progress callback): same cleanup
            # as stream_configs — cancel the queued tail so the owning
            # pool's shutdown does not block on simulations nobody will
            # consume, and commit any run that finished unconsumed so the
            # backend loses at most in-flight work.
            if futures:
                for future in futures:
                    future.cancel()
                if cache is not None:
                    for future, index in futures.items():
                        if future.done() and not future.cancelled():
                            try:
                                result, _seconds = future.result()
                            except Exception:
                                continue
                            cache.put(configs[index], result)
        return ordered  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # injection-rate sweeps
    # ------------------------------------------------------------------ #
    def run_injection_rate_sweep(
        self,
        base_config: SimulationConfig,
        rates: Sequence[float],
        label: Optional[str] = None,
        progress: Optional[Callable[[SimulationResult], None]] = None,
        stop_after_saturation: int = 0,
    ) -> ReplicatedSweepResult:
        """Replicated injection-rate sweep (the paper's Figs. 3-5 axis).

        ``stop_after_saturation`` truncates the series after that many
        consecutive saturated points.  Serial execution genuinely stops early
        (skipping the remaining simulations); parallel execution dispatches
        points in windows just wide enough to keep every worker busy and
        stops submitting once a window crosses the threshold, truncating the
        overshoot — the *returned series* is identical in both modes, only
        the (bounded) wasted work differs.  ``progress`` likewise fires
        exactly once per run that survives truncation in both modes; when
        truncation is active in parallel mode the calls are buffered until
        the kept points are known (they fire in submission order).
        """
        if stop_after_saturation < 0:
            raise ConfigurationError(
                "stop_after_saturation must be non-negative (0 disables truncation)"
            )
        self._reject_sharded("run_injection_rate_sweep")
        rates = [float(r) for r in rates]
        seeds = derive_sweep_seeds(base_config.seed, len(rates), self.replications)
        point_configs: List[List[SimulationConfig]] = []
        for i, rate in enumerate(rates):
            replicas = []
            for j in range(self.replications):
                metadata = dict(base_config.metadata)
                metadata.update({"sweep_point": str(i), "replication": str(j)})
                replicas.append(
                    base_config.with_updates(
                        injection_rate=rate, seed=seeds[i][j], metadata=metadata
                    )
                )
            point_configs.append(replicas)

        sweep = ReplicatedSweepResult(
            label=label or base_config.describe(), replications=self.replications
        )
        workers = min(self.effective_jobs, sum(len(p) for p in point_configs))
        if workers <= 1:
            for rate, replicas in zip(rates, point_configs):
                sweep.append_point(rate, self.run_configs(replicas, progress=progress))
                if (
                    stop_after_saturation
                    and self._saturation_cut(sweep.saturated, stop_after_saturation)
                    is not None
                ):
                    break
            return sweep

        if not stop_after_saturation:
            flat = [config for replicas in point_configs for config in replicas]
            flat_results = self.run_configs(flat, progress=progress)
            offset = 0
            for rate, replicas in zip(rates, point_configs):
                sweep.append_point(rate, flat_results[offset : offset + len(replicas)])
                offset += len(replicas)
            return sweep

        # With truncation active, dispatch in windows of ceil(jobs /
        # replications) points — wide enough to keep every worker busy, small
        # enough that a sweep saturating early does not simulate the whole
        # deep-saturation tail before truncating it away.  Runs past the cut
        # must not reach the caller's progress callback (jobs=1 never
        # executes them), so the calls are buffered until the kept points are
        # known.
        window_points = max(1, -(-workers // self.replications))
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            index = 0
            while index < len(point_configs):
                window = point_configs[index : index + window_points]
                window_flat = [config for replicas in window for config in replicas]
                window_results = self._map_pool(pool, window_flat)
                offset = 0
                for rate, replicas in zip(rates[index : index + len(window)], window):
                    sweep.append_point(rate, window_results[offset : offset + len(replicas)])
                    offset += len(replicas)
                index += len(window)
                if self._saturation_cut(sweep.saturated, stop_after_saturation) is not None:
                    break
        self._truncate_after_saturation(sweep, stop_after_saturation)
        if progress is not None:
            for point_results in sweep.results:
                for result in point_results:
                    progress(result)
        return sweep

    @staticmethod
    def _saturation_cut(saturated: Sequence[bool], limit: int) -> Optional[int]:
        """Index after which the series is truncated, or None if it is not."""
        consecutive = 0
        for index, sat in enumerate(saturated):
            consecutive = consecutive + 1 if sat else 0
            if consecutive >= limit:
                return index + 1
        return None

    @classmethod
    def _truncate_after_saturation(cls, sweep: ReplicatedSweepResult, limit: int) -> None:
        cut = cls._saturation_cut(sweep.saturated, limit)
        if cut is None:
            return
        # every list-typed field is a per-point series aligned with
        # ``rates``; deriving the set from the dataclass keeps truncation in
        # sync with future fields automatically
        for spec in fields(sweep):
            value = getattr(sweep, spec.name)
            if isinstance(value, list):
                del value[cut:]

    # ------------------------------------------------------------------ #
    # fault-count sweeps
    # ------------------------------------------------------------------ #
    def run_fault_count_sweep(
        self,
        base_config: SimulationConfig,
        fault_counts: Sequence[int],
        trials_per_count: int = 1,
        seed: Optional[int] = None,
        progress: Optional[Callable[[SimulationResult], None]] = None,
    ) -> List[SimulationResult]:
        """Replicated fault-count sweep (the paper's Figs. 6-7 axis).

        Fault sets are drawn up front from a single ``numpy`` generator seeded
        with ``seed`` (defaulting to the configuration's base seed), so the
        sampled failure patterns never depend on ``jobs``.  Each (count,
        trial) pair is then run under ``replications`` derived seeds; results
        come back flat, ordered by (count, trial, replication) and tagged
        through ``config.metadata``.
        """
        self._reject_sharded("run_fault_count_sweep")
        fault_seed = base_config.seed if seed is None else seed
        rng = np.random.default_rng(fault_seed)
        keyed: List[Tuple[int, int, FaultSet]] = []
        for count in fault_counts:
            for trial in range(trials_per_count):
                if count == 0:
                    faults = FaultSet.empty()
                else:
                    faults = random_node_faults(
                        base_config.topology, count, rng=rng, ensure_connected=True
                    )
                keyed.append((int(count), trial, faults))

        # Two-level derivation, exactly as for injection-rate sweeps: the seed
        # of replication j of task t depends only on (base_seed, t, j), so
        # raising the replication count adds spread without perturbing the
        # existing runs.
        child_seeds = derive_sweep_seeds(base_config.seed, len(keyed), self.replications)
        configs: List[SimulationConfig] = []
        for task_index, (count, trial, faults) in enumerate(keyed):
            for j in range(self.replications):
                metadata = dict(base_config.metadata)
                metadata.update(
                    {
                        "fault_count": str(count),
                        "fault_trial": str(trial),
                        "replication": str(j),
                    }
                )
                configs.append(
                    base_config.with_updates(
                        faults=faults,
                        metadata=metadata,
                        seed=child_seeds[task_index][j],
                    )
                )
        return self.run_configs(configs, progress=progress)
