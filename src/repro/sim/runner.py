"""Build and run a simulation from a :class:`~repro.sim.config.SimulationConfig`."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.livelock import LivelockGuard
from repro.errors import ConfigurationError
from repro.metrics.collectors import NetworkMetrics
from repro.network.engine import SimulationEngine
from repro.network.kernel import ArraySimulationEngine
from repro.routing.registry import make_routing
from repro.sim.config import SimulationConfig
from repro.telemetry.profile import StageProfiler
from repro.traffic.generators import (
    BernoulliTraffic,
    PeriodicTraffic,
    PoissonTraffic,
    TrafficGenerator,
)
from repro.traffic.patterns import make_pattern

__all__ = ["SimulationResult", "build_engine", "resolve_engine", "run_simulation"]

#: Environment variable consulted when ``SimulationConfig.engine`` is "auto".
ENV_ENGINE = "REPRO_ENGINE"

#: Engine implementations selectable via config / environment.
_ENGINE_CLASSES = {"dict": SimulationEngine, "array": ArraySimulationEngine}


def resolve_engine(config: SimulationConfig) -> str:
    """The engine implementation name a config resolves to.

    ``config.engine`` wins when explicit; ``"auto"`` defers to the
    ``REPRO_ENGINE`` environment variable and finally to the ``"dict"``
    reference engine.  Both implementations are bit-identical (pinned by the
    golden matrix), so this choice never affects results or content-addresses
    — only wall-clock speed.
    """
    choice = config.engine
    if choice == "auto":
        choice = os.environ.get(ENV_ENGINE, "").strip().lower() or "dict"
    if choice not in _ENGINE_CLASSES:
        raise ConfigurationError(
            f"unknown engine {choice!r} (from config.engine or ${ENV_ENGINE}); "
            f"known: {sorted(_ENGINE_CLASSES)} (or 'auto')"
        )
    return choice


@dataclass
class SimulationResult:
    """A finished run: the configuration it used and the metrics it produced."""

    config: SimulationConfig
    metrics: NetworkMetrics

    @property
    def mean_latency(self) -> float:
        """Mean message latency in cycles (paper's vertical axis in Figs. 3-5)."""
        return self.metrics.mean_latency

    @property
    def throughput(self) -> float:
        """Delivered messages per node per cycle (paper's Fig. 6 metric)."""
        return self.metrics.throughput_messages

    @property
    def messages_queued(self) -> int:
        """Absorption events counted over the whole run (paper's Fig. 7 metric)."""
        return self.metrics.messages_absorbed_total

    @property
    def saturated(self) -> bool:
        """True when the run stopped because the network saturated."""
        return self.metrics.saturated

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary (configuration + metrics) for tabular reporting."""
        row: Dict[str, float] = {
            "routing": self.config.routing,
            "radix": self.config.topology.radices[0],
            "dimensions": self.config.topology.dimensions,
            "virtual_channels": self.config.num_virtual_channels,
            "message_length": self.config.message_length,
            "injection_rate": self.config.injection_rate,
            "faulty_nodes": self.config.faults.num_faulty_nodes,
        }
        row.update(self.config.metadata)
        row.update(self.metrics.as_dict())
        return row


def _make_traffic(config: SimulationConfig) -> TrafficGenerator:
    if config.traffic_process == "poisson":
        return PoissonTraffic(config.injection_rate)
    if config.traffic_process == "bernoulli":
        return BernoulliTraffic(config.injection_rate)
    if config.traffic_process == "periodic":
        return PeriodicTraffic(config.injection_rate)
    raise ConfigurationError(f"unknown traffic process {config.traffic_process!r}")


def build_engine(
    config: SimulationConfig, stage_profiler: Optional[StageProfiler] = None
) -> SimulationEngine:
    """Construct (but do not run) the simulation engine described by ``config``.

    Useful for tests and examples that want to drive the engine cycle by cycle
    or inject messages by hand.  ``stage_profiler`` opts the engine into
    per-stage wall-time accounting (see :mod:`repro.telemetry.profile`).

    The implementation class is chosen by :func:`resolve_engine`
    (``config.engine``, then ``REPRO_ENGINE``, then the dict reference
    engine); both produce bit-identical metrics for a given seed.
    """
    config.validate()
    engine_cls = _ENGINE_CLASSES[resolve_engine(config)]
    routing_kwargs = {}
    if config.trace_rerouting:
        # Only the fault-tolerant factories accept the trace knobs (validate()
        # rejects trace_rerouting for anything else).
        routing_kwargs["trace_rerouting"] = True
        routing_kwargs["trace_depth"] = config.rerouting_trace_depth
    routing = make_routing(
        config.routing,
        topology=config.topology,
        faults=config.faults,
        num_virtual_channels=config.num_virtual_channels,
        **routing_kwargs,
    )
    pattern = make_pattern(
        config.traffic_pattern,
        config.topology,
        excluded=config.faults.nodes,
    )
    traffic = _make_traffic(config)
    guard = LivelockGuard(topology=config.topology, faults=config.faults)
    return engine_cls(
        topology=config.topology,
        routing=routing,
        traffic=traffic,
        pattern=pattern,
        faults=config.faults,
        message_length=config.message_length,
        buffer_depth=config.buffer_depth,
        warmup_messages=config.warmup_messages,
        measure_messages=config.measure_messages,
        max_cycles=config.max_cycles,
        reinjection_delay=config.reinjection_delay,
        seed=config.seed,
        livelock_guard=guard,
        saturation_queue_limit=config.saturation_queue_limit,
        max_absorptions_per_message=config.max_absorptions_per_message,
        drain_max_cycles=config.drain_max_cycles,
        keep_records=config.keep_records,
        stage_profiler=stage_profiler,
    )


def run_simulation(
    config: SimulationConfig, stage_profiler: Optional[StageProfiler] = None
) -> SimulationResult:
    """Run the simulation described by ``config`` and return its result."""
    engine = build_engine(config, stage_profiler=stage_profiler)
    metrics = engine.run()
    return SimulationResult(config=config, metrics=metrics)
