"""Parameter sweeps: the workhorse behind every figure of the paper.

Two sweep axes cover all of the paper's experiments:

* **injection-rate sweeps** (Figs. 3, 4, 5) — latency/throughput as a function
  of the traffic generation rate λ for a fixed fault set;
* **fault-count sweeps** (Figs. 6, 7) — throughput or absorption counts as a
  function of the number of random faulty nodes at a fixed load.

Both are thin conveniences over :class:`repro.sim.parallel.SweepExecutor`,
which owns the execution strategy: per-point/per-replication seed derivation
(see :mod:`repro.sim.config`), optional ``multiprocessing`` fan-out via
``jobs``, and replication aggregation.  Passing ``jobs=1, replications=1``
(the defaults) reproduces the historical serial single-seed behaviour, except
that sweep points no longer share the literal base seed — each point gets its
own derived child seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.sim.config import SimulationConfig
from repro.sim.parallel import ReplicatedSweepResult, SweepExecutor, SweepSeriesMixin
from repro.sim.runner import SimulationResult

__all__ = [
    "LoadSweepResult",
    "injection_rate_sweep",
    "latency_throughput_curve",
    "fault_count_sweep",
]


@dataclass
class LoadSweepResult(SweepSeriesMixin):
    """Latency/throughput series produced by an injection-rate sweep.

    The series are aligned: ``latencies[i]`` and ``throughputs[i]`` belong to
    ``rates[i]``.  ``saturated[i]`` marks points where the network saturated
    before delivering the requested number of messages (the paper plots these
    as the near-vertical part of the latency curves).  The saturation views
    (``saturation_rate`` / ``non_saturated_latencies``) come from
    :class:`~repro.sim.parallel.SweepSeriesMixin`, shared with
    :class:`~repro.sim.parallel.ReplicatedSweepResult`.
    """

    label: str
    rates: List[float] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    throughputs: List[float] = field(default_factory=list)
    saturated: List[bool] = field(default_factory=list)
    results: List[SimulationResult] = field(default_factory=list)

    def append(self, result: SimulationResult) -> None:
        """Add one finished run to the series."""
        self.rates.append(result.config.injection_rate)
        self.latencies.append(result.mean_latency)
        self.throughputs.append(result.throughput)
        self.saturated.append(result.saturated)
        self.results.append(result)


def injection_rate_sweep(
    base_config: SimulationConfig,
    rates: Sequence[float],
    label: Optional[str] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    stop_after_saturation: int = 1,
    jobs: int = 1,
    replications: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> Union[LoadSweepResult, ReplicatedSweepResult]:
    """Run ``base_config`` at each injection rate and collect the series.

    Parameters
    ----------
    base_config:
        Configuration shared by every point of the sweep (the injection rate
        and seed fields are overridden per point).
    rates:
        Injection rates λ to simulate, in ascending order.
    label:
        Series label (defaults to the configuration summary).
    progress:
        Optional callback invoked after every finished run.
    stop_after_saturation:
        Truncate the sweep after this many consecutive saturated points; the
        paper plots one or two points beyond saturation, and simulating deep
        into saturation is expensive without adding information.  Use 0 to
        keep every requested rate regardless.
    jobs:
        Worker processes for the underlying :class:`SweepExecutor`; the
        returned series is independent of this value.
    replications:
        Independent seeds per point.  With the default of 1 the historical
        :class:`LoadSweepResult` is returned; with more, a
        :class:`~repro.sim.parallel.ReplicatedSweepResult` carrying mean ± CI
        series.
    executor:
        Optional pre-built :class:`SweepExecutor` (its ``jobs``,
        ``replications`` and cache take precedence over the arguments above).
        Pass one instance to several sweeps to share a result cache or a
        disk-backed campaign store across series and figures.
    """
    if executor is None:
        executor = SweepExecutor(jobs=jobs, replications=replications)
    replicated = executor.run_injection_rate_sweep(
        base_config,
        rates,
        label=label or base_config.describe(),
        progress=progress,
        stop_after_saturation=stop_after_saturation,
    )
    if executor.replications > 1:
        return replicated
    sweep = LoadSweepResult(label=replicated.label)
    for point_results in replicated.results:
        sweep.append(point_results[0])
    return sweep


def latency_throughput_curve(
    base_config: SimulationConfig,
    rates: Sequence[float],
    label: Optional[str] = None,
) -> LoadSweepResult:
    """Alias of :func:`injection_rate_sweep` kept for readability in benches."""
    return injection_rate_sweep(base_config, rates, label=label)


def fault_count_sweep(
    base_config: SimulationConfig,
    fault_counts: Sequence[int],
    trials_per_count: int = 1,
    seed: int = 7,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    jobs: int = 1,
    replications: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> List[SimulationResult]:
    """Run ``base_config`` for each number of random faulty nodes.

    For every entry of ``fault_counts`` the sweep samples ``trials_per_count``
    independent random fault sets (mirroring the paper: "we have run
    simulations for each number of failures, each of them corresponding to a
    different randomly selected failures"), runs each under ``replications``
    derived seeds, and returns the flat list of results tagged through
    ``config.metadata['fault_count'/'fault_trial'/'replication']``.  The
    fault sets are sampled from ``seed`` independently of ``jobs``.  As for
    :func:`injection_rate_sweep`, a pre-built ``executor`` takes precedence
    over ``jobs``/``replications`` and lets several sweeps share one cache.
    """
    if executor is None:
        executor = SweepExecutor(jobs=jobs, replications=replications)
    return executor.run_fault_count_sweep(
        base_config,
        fault_counts,
        trials_per_count=trials_per_count,
        seed=seed,
        progress=progress,
    )
