"""Parameter sweeps: the workhorse behind every figure of the paper.

Two sweep axes cover all of the paper's experiments:

* **injection-rate sweeps** (Figs. 3, 4, 5) — latency/throughput as a function
  of the traffic generation rate λ for a fixed fault set;
* **fault-count sweeps** (Figs. 6, 7) — throughput or absorption counts as a
  function of the number of random faulty nodes at a fixed load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.faults.injection import random_node_faults
from repro.faults.model import FaultSet
from repro.sim.config import SimulationConfig
from repro.sim.runner import SimulationResult, run_simulation

__all__ = [
    "LoadSweepResult",
    "injection_rate_sweep",
    "latency_throughput_curve",
    "fault_count_sweep",
]


@dataclass
class LoadSweepResult:
    """Latency/throughput series produced by an injection-rate sweep.

    The series are aligned: ``latencies[i]`` and ``throughputs[i]`` belong to
    ``rates[i]``.  ``saturated[i]`` marks points where the network saturated
    before delivering the requested number of messages (the paper plots these
    as the near-vertical part of the latency curves).
    """

    label: str
    rates: List[float] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    throughputs: List[float] = field(default_factory=list)
    saturated: List[bool] = field(default_factory=list)
    results: List[SimulationResult] = field(default_factory=list)

    def append(self, result: SimulationResult) -> None:
        """Add one finished run to the series."""
        self.rates.append(result.config.injection_rate)
        self.latencies.append(result.mean_latency)
        self.throughputs.append(result.throughput)
        self.saturated.append(result.saturated)
        self.results.append(result)

    @property
    def saturation_rate(self) -> Optional[float]:
        """The smallest injection rate at which the network saturated, if any."""
        for rate, sat in zip(self.rates, self.saturated):
            if sat:
                return rate
        return None

    def non_saturated_latencies(self) -> List[float]:
        """Latency values of the points below saturation."""
        return [lat for lat, sat in zip(self.latencies, self.saturated) if not sat]


def injection_rate_sweep(
    base_config: SimulationConfig,
    rates: Sequence[float],
    label: Optional[str] = None,
    progress: Optional[Callable[[SimulationResult], None]] = None,
    stop_after_saturation: int = 1,
) -> LoadSweepResult:
    """Run ``base_config`` at each injection rate and collect the series.

    Parameters
    ----------
    base_config:
        Configuration shared by every point of the sweep (the injection rate
        field is overridden per point).
    rates:
        Injection rates λ to simulate, in ascending order.
    label:
        Series label (defaults to the configuration summary).
    progress:
        Optional callback invoked after every finished point.
    stop_after_saturation:
        Stop the sweep after this many consecutive saturated points; the paper
        plots one or two points beyond saturation, and simulating deep into
        saturation is expensive without adding information.  Use 0 to run
        every requested rate regardless.
    """
    sweep = LoadSweepResult(label=label or base_config.describe())
    consecutive_saturated = 0
    for rate in rates:
        config = base_config.with_updates(injection_rate=float(rate))
        result = run_simulation(config)
        sweep.append(result)
        if progress is not None:
            progress(result)
        if result.saturated:
            consecutive_saturated += 1
            if stop_after_saturation and consecutive_saturated >= stop_after_saturation:
                break
        else:
            consecutive_saturated = 0
    return sweep


def latency_throughput_curve(
    base_config: SimulationConfig,
    rates: Sequence[float],
    label: Optional[str] = None,
) -> LoadSweepResult:
    """Alias of :func:`injection_rate_sweep` kept for readability in benches."""
    return injection_rate_sweep(base_config, rates, label=label)


def fault_count_sweep(
    base_config: SimulationConfig,
    fault_counts: Sequence[int],
    trials_per_count: int = 1,
    seed: int = 7,
    progress: Optional[Callable[[SimulationResult], None]] = None,
) -> List[SimulationResult]:
    """Run ``base_config`` for each number of random faulty nodes.

    For every entry of ``fault_counts`` the sweep samples ``trials_per_count``
    independent random fault sets (mirroring the paper: "we have run
    simulations for each number of failures, each of them corresponding to a
    different randomly selected failures") and returns the flat list of
    results, tagged through ``config.metadata['fault_trial']``.
    """
    rng = np.random.default_rng(seed)
    results: List[SimulationResult] = []
    for count in fault_counts:
        for trial in range(trials_per_count):
            if count == 0:
                faults = FaultSet.empty()
            else:
                faults = random_node_faults(
                    base_config.topology, count, rng=rng, ensure_connected=True
                )
            metadata = dict(base_config.metadata)
            metadata.update({"fault_count": str(count), "fault_trial": str(trial)})
            config = base_config.with_updates(faults=faults, metadata=metadata)
            result = run_simulation(config)
            results.append(result)
            if progress is not None:
                progress(result)
    return results
