"""repro.telemetry — unified observability for the reproduction.

Four pieces, all stdlib-only and all off by default:

* :mod:`repro.telemetry.metrics` — a process-wide metrics registry
  (counters, gauges, histograms) the engine, executor, blob backends and
  lease machinery report into.  Enabled by ``enable_metrics()`` or
  ``REPRO_TELEMETRY=1``; instrumented call sites check
  ``metrics_registry() is None`` first, so disabled runs pay nothing.
* :mod:`repro.telemetry.events` — structured JSONL event tracing for
  campaigns, stored beside the results under a ``.events/`` prefix on
  every backend scheme; ``repro campaign tail`` follows it live.
* :mod:`repro.telemetry.profile` — opt-in per-stage engine timers and a
  cProfile wrapper behind ``repro simulate --profile``.
* :mod:`repro.telemetry.httpd` — ``repro campaign watch``'s stdlib HTTP
  endpoint serving ``/metrics`` (Prometheus text) and ``/status`` (the
  ``campaign status --json`` payload).  Imported lazily: grab it via
  ``from repro.telemetry.httpd import CampaignWatchServer``.
"""

from repro.telemetry.events import (
    EVENTS_PREFIX,
    EventLog,
    EventReader,
    open_event_log,
    open_event_reader,
    read_events,
    tail_events,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    metrics_registry,
)
from repro.telemetry.profile import StageProfiler, StageStat, profile_call

__all__ = [
    "EVENTS_PREFIX",
    "Counter",
    "EventLog",
    "EventReader",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StageProfiler",
    "StageStat",
    "disable_metrics",
    "enable_metrics",
    "metrics_registry",
    "open_event_log",
    "open_event_reader",
    "profile_call",
    "read_events",
    "tail_events",
]
