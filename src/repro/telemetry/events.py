"""Structured JSONL event tracing for campaigns.

Events are small dicts — ``{"ts", "run", "seq", "kind", "event", ...}`` —
appended to a per-run event log stored *beside* the campaign results, the
same way lease records are: a ``.events/`` prefix in the blob and
directory layouts, a sidecar table in ``sqlite://`` stores, a process-wide
named list for ``mem://<name>``.  Because the log reuses the blob layout,
``chaos+`` wrapping and all six backend schemes work unchanged, and result
scans never see event traffic (the ``.events/`` prefix is ignored exactly
like ``.leases/``).

Blob stores cannot append, so the writer buffers events and flushes them
as sequential batch blobs ``.events/<run>/<seq:08d>.jsonl``; each batch is
written once (first-write-wins idempotency holds) and readers merge
batches back into one ordered stream.  ``tail_events`` polls a reader for
new batches, which is what ``repro campaign tail --follow`` runs on.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "EVENTS_PREFIX",
    "EventLog",
    "EventReader",
    "open_event_log",
    "open_event_reader",
    "read_events",
    "tail_events",
]

#: Store prefix event batches live under in blob/directory layouts.  Must
#: stay a dot-prefixed name: result scans skip it wholesale (see
#: ``repro.backends.objectstore``), mirroring ``.leases/``.
EVENTS_PREFIX = ".events"

Event = Dict[str, object]


def _sort_key(event: Event) -> Tuple[float, str, int]:
    return (
        float(event.get("ts", 0.0)),
        str(event.get("run", "")),
        int(event.get("seq", 0)),
    )


def _encode_batch(events: List[Event]) -> bytes:
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in events
    ).encode("utf-8")


def _decode_batch(data: bytes) -> List[Event]:
    events: List[Event] = []
    for line in data.decode("utf-8", errors="replace").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            parsed = json.loads(line)
        except ValueError:
            continue  # torn line: the batch write was interrupted
        if isinstance(parsed, dict):
            events.append(parsed)
    return events


class MemoryEventSink:
    """Process-wide named event list (the ``mem://<name>`` pattern)."""

    _registry: Dict[str, "MemoryEventSink"] = {}
    _registry_lock = threading.Lock()

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._lock = threading.Lock()

    @classmethod
    def open(cls, name: str) -> "MemoryEventSink":
        with cls._registry_lock:
            sink = cls._registry.get(name)
            if sink is None:
                sink = cls()
                cls._registry[name] = sink
            return sink

    @classmethod
    def discard(cls, name: str) -> None:
        with cls._registry_lock:
            cls._registry.pop(name, None)

    def append(self, batch: List[Event]) -> None:
        with self._lock:
            self._events.extend(batch)

    def read_since(self, cursor: Optional[object]) -> Tuple[List[Event], object]:
        start = int(cursor or 0)
        with self._lock:
            events = list(self._events[start:])
            return events, len(self._events)


class BlobEventSink:
    """Event batches as ``.events/<run>/<seq>.jsonl`` blobs."""

    def __init__(self, client) -> None:
        self.client = client
        self._batch = 0

    def append(self, batch: List[Event]) -> None:
        if not batch:
            return
        run = str(batch[0].get("run", "run"))
        first_seq = int(batch[0].get("seq", self._batch))
        path = f"{EVENTS_PREFIX}/{run}/{first_seq:08d}.jsonl"
        self.client.put_blob(path, _encode_batch(batch))
        self._batch += 1

    def read_since(self, cursor: Optional[object]) -> Tuple[List[Event], object]:
        seen = set(cursor or ())
        events: List[Event] = []
        for path in sorted(self.client.list_prefix(EVENTS_PREFIX)):
            if path in seen or not path.endswith(".jsonl"):
                continue
            try:
                data = self.client.get_blob(path)
            except KeyError:
                continue  # listed then deleted: racing gc
            events.extend(_decode_batch(data))
            seen.add(path)
        return events, frozenset(seen)


class SQLiteEventSink:
    """Events in a ``campaign_events`` sidecar table of the results db."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        with self._lock, self._connection:
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS campaign_events ("
                " id INTEGER PRIMARY KEY AUTOINCREMENT,"
                " run TEXT NOT NULL,"
                " seq INTEGER NOT NULL,"
                " payload TEXT NOT NULL)"
            )

    def append(self, batch: List[Event]) -> None:
        rows = [
            (
                str(event.get("run", "")),
                int(event.get("seq", 0)),
                json.dumps(event, sort_keys=True, separators=(",", ":")),
            )
            for event in batch
        ]
        with self._lock, self._connection:
            self._connection.executemany(
                "INSERT INTO campaign_events (run, seq, payload) VALUES (?, ?, ?)",
                rows,
            )

    def read_since(self, cursor: Optional[object]) -> Tuple[List[Event], object]:
        last = int(cursor or 0)
        with self._lock:
            rows = self._connection.execute(
                "SELECT id, payload FROM campaign_events WHERE id > ? ORDER BY id",
                (last,),
            ).fetchall()
        events: List[Event] = []
        for row_id, payload in rows:
            try:
                parsed = json.loads(payload)
            except ValueError:
                continue
            if isinstance(parsed, dict):
                events.append(parsed)
            last = row_id
        return events, last

    def close(self) -> None:
        self._connection.close()


class EventLog:
    """A buffered, thread-safe writer of one run's event stream.

    ``emit`` stamps ``ts``/``run``/``seq`` and buffers; ``flush`` writes
    the buffer as one batch.  Batches are flushed automatically every
    ``flush_every`` events so a ``tail --follow`` sees progress mid-run,
    and ``close`` flushes the remainder.
    """

    def __init__(
        self,
        sink,
        run: str,
        clock: Callable[[], float] = time.time,
        flush_every: int = 32,
    ) -> None:
        self.sink = sink
        self.run = run
        self.clock = clock
        self.flush_every = max(1, int(flush_every))
        self._seq = 0
        self._buffer: List[Event] = []
        self._lock = threading.Lock()

    def emit(self, kind: str, event: str, **fields: object) -> Event:
        record: Event = {"kind": kind, "event": event}
        record.update(fields)
        with self._lock:
            record["ts"] = round(float(self.clock()), 6)
            record["run"] = self.run
            record["seq"] = self._seq
            self._seq += 1
            self._buffer.append(record)
            if len(self._buffer) >= self.flush_every:
                self._flush_locked()
        return record

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self.sink.append(batch)

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        self.flush()
        close = getattr(self.sink, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventReader:
    """Incremental reader over a sink: each ``read_new`` call returns only
    events not yet seen, in (ts, run, seq) order."""

    def __init__(self, sink) -> None:
        self.sink = sink
        self._cursor: Optional[object] = None

    def read_new(self) -> List[Event]:
        events, self._cursor = self.sink.read_since(self._cursor)
        events.sort(key=_sort_key)
        return events


def _open_sink(uri: str):
    """The event sink paired with a campaign backend URI (the same
    dispatch as ``open_lease_store``: events live with the results)."""
    from repro.backends.registry import parse_backend_uri

    scheme, location = parse_backend_uri(uri)
    chaos_spec = None
    if scheme.startswith("chaos+"):
        from repro.backends.chaos import parse_chaos_location

        scheme = scheme[len("chaos+") :]
        location, chaos_spec = parse_chaos_location(location)
    if scheme == "mem":
        if not location:
            raise ConfigurationError(
                "event logs need a shareable backend; the anonymous mem:// "
                "store is private to each opener — use mem://<name> or a "
                "persistent backend"
            )
        return MemoryEventSink.open(location)
    if scheme == "sqlite":
        return SQLiteEventSink(location)
    if scheme == "dir":
        from repro.backends.objectstore import LocalObjectClient

        client = LocalObjectClient(location)
    elif scheme in ("obj", "s3", "gs"):
        from repro.backends.objectstore import blob_client_for

        client = blob_client_for(scheme, location)
    else:
        raise ConfigurationError(
            f"no event log is defined for backend scheme {scheme!r}; "
            "event tracing supports mem://<name>, dir, sqlite, obj, s3 "
            "and gs backends (and their chaos+ variants)"
        )
    from repro.backends.retry import DEFAULT_RETRY_POLICY, RetryingBlobClient

    policy = DEFAULT_RETRY_POLICY
    if chaos_spec is not None:
        from repro.backends.chaos import ChaosBlobClient

        client = ChaosBlobClient(client, chaos_spec)
        policy = chaos_spec.policy()
    return BlobEventSink(RetryingBlobClient(client, policy=policy))


def open_event_log(
    uri: str,
    run: str,
    clock: Callable[[], float] = time.time,
    flush_every: int = 32,
) -> EventLog:
    """An :class:`EventLog` writing beside the results of backend ``uri``."""
    return EventLog(_open_sink(uri), run, clock=clock, flush_every=flush_every)


def open_event_reader(uri: str) -> EventReader:
    """An incremental reader over every run's events at backend ``uri``."""
    return EventReader(_open_sink(uri))


def read_events(uri: str, run: Optional[str] = None) -> List[Event]:
    """Every event recorded at backend ``uri``, ordered, optionally
    filtered to one run."""
    events = open_event_reader(uri).read_new()
    if run is not None:
        events = [event for event in events if event.get("run") == run]
    return events


def tail_events(
    uri: str,
    follow: bool = False,
    poll: float = 0.5,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Event]:
    """Yield events from backend ``uri`` as they appear.

    Without ``follow`` this drains the current log once and returns.  With
    ``follow`` it polls every ``poll`` seconds until ``stop()`` (when
    given) returns true — the engine behind ``repro campaign tail -f``.
    """
    reader = open_event_reader(uri)
    while True:
        for event in reader.read_new():
            yield event
        if not follow:
            return
        if stop is not None and stop():
            return
        time.sleep(poll)
