"""A stdlib-only HTTP endpoint for live campaigns.

``repro campaign watch --port N`` serves two routes:

* ``GET /metrics`` — the process metrics registry plus per-scrape campaign
  gauges (unit totals, lease health) in the Prometheus text exposition
  format (0.0.4), so a stock Prometheus scrape config works unchanged.
* ``GET /status`` — the exact ``campaign status --json`` payload as
  ``application/json`` (the schema is pinned by a golden-keys test).

This is the minimal first slice of the ROADMAP's campaign-service
dashboard: no daemon framework, no dependency — just
``http.server.ThreadingHTTPServer`` over the existing status machinery.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.telemetry.metrics import MetricsRegistry, metrics_registry

__all__ = ["CampaignWatchServer"]

logger = logging.getLogger(__name__)


def _campaign_gauges(status_payload: dict) -> MetricsRegistry:
    """A throwaway registry of per-scrape campaign gauges."""
    registry = MetricsRegistry("campaign")
    units = registry.gauge(
        "repro_campaign_units", "Campaign units by state.", labelnames=("state",)
    )
    units.set(status_payload.get("total_units", 0), state="total")
    units.set(status_payload.get("completed_units", 0), state="completed")
    units.set(status_payload.get("pending_units", 0), state="pending")
    registry.gauge(
        "repro_campaign_complete", "1 when every planned unit is stored."
    ).set(1.0 if status_payload.get("complete") else 0.0)
    registry.gauge(
        "repro_campaign_skipped_records", "Malformed records seen by the scan."
    ).set(status_payload.get("skipped_records", 0))
    work = status_payload.get("work") or {}
    if work:
        leases = registry.gauge(
            "repro_campaign_leases", "Work-stealing leases by state.",
            labelnames=("state",),
        )
        leases.set(work.get("active_leases", 0), state="active")
        leases.set(work.get("expired_leases", 0), state="expired")
        registry.gauge(
            "repro_campaign_lease_reclaims",
            "Expired leases taken over from other workers.",
        ).set(work.get("reclaims", 0))
        registry.gauge(
            "repro_campaign_lease_retries", "Retried lease-store operations."
        ).set(work.get("retries", 0))
        workers = work.get("workers") or []
        registry.gauge(
            "repro_campaign_workers_active", "Workers with a live heartbeat."
        ).set(sum(1 for row in workers if row.get("active")))
    return registry


class _WatchHandler(BaseHTTPRequestHandler):
    server_version = "repro-watch/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        watch: "CampaignWatchServer" = self.server.watch  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = watch.render_metrics().encode("utf-8")
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/status":
                body = json.dumps(watch.status_payload(), indent=2).encode("utf-8")
                ctype = "application/json"
            else:
                self.send_error(404, "unknown route (try /metrics or /status)")
                return
        except Exception as exc:  # surface scrape failures as 500s, keep serving
            logger.warning("watch request %s failed: %s", path, exc)
            self.send_error(500, str(exc))
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        logger.debug("watch: %s", format % args)


class CampaignWatchServer:
    """Serve ``/metrics`` and ``/status`` for one campaign directory.

    ``port=0`` binds an ephemeral port (``.port`` reports the real one),
    which is how the in-process tests and the CI smoke job scrape it.
    """

    def __init__(
        self,
        directory,
        backend: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = directory
        self.backend = backend
        self.host = host
        self.registry = registry
        self._server = ThreadingHTTPServer((host, port), _WatchHandler)
        self._server.daemon_threads = True
        self._server.watch = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def status_payload(self) -> dict:
        from repro.campaign.runner import campaign_status

        return campaign_status(self.directory, backend=self.backend).as_dict()

    def render_metrics(self) -> str:
        payload = self.status_payload()
        text = _campaign_gauges(payload).render_prometheus()
        registry = self.registry if self.registry is not None else metrics_registry()
        if registry is not None:
            text += registry.render_prometheus()
        return text

    def start(self) -> "CampaignWatchServer":
        thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-watch:{self.port}",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        logger.info(
            "watching campaign %s on http://%s:%d (/metrics, /status)",
            self.directory,
            self.host,
            self.port,
        )
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        logger.info(
            "watching campaign %s on http://%s:%d (/metrics, /status)",
            self.directory,
            self.host,
            self.port,
        )
        try:
            self._server.serve_forever()
        finally:
            self._server.server_close()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "CampaignWatchServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
