"""A stdlib-only HTTP endpoint for live campaigns.

``repro campaign watch --port N`` serves two routes:

* ``GET /metrics`` — the process metrics registry plus per-scrape campaign
  gauges (unit totals, lease health) in the Prometheus text exposition
  format (0.0.4), so a stock Prometheus scrape config works unchanged.
* ``GET /status`` — the exact ``campaign status --json`` payload as
  ``application/json`` (the schema is pinned by a golden-keys test).

Since the serve daemon landed this is a thin alias over the shared
application layer (:mod:`repro.serve.app`): same routing, same threading
server, same actionable port-in-use error.  ``repro serve`` is the
multi-campaign superset — its ``/metrics`` reuses :func:`campaign_gauges`
with a ``campaign`` label per hosted campaign.
"""

from __future__ import annotations

import json
import logging
from typing import Optional

from repro.telemetry.metrics import MetricsRegistry, metrics_registry

__all__ = ["CampaignWatchServer", "campaign_gauges"]

logger = logging.getLogger(__name__)


def campaign_gauges(
    status_payload: dict,
    registry: Optional[MetricsRegistry] = None,
    campaign: Optional[str] = None,
) -> MetricsRegistry:
    """Per-scrape campaign gauges from one ``status --json`` payload.

    With no arguments this is the ``campaign watch`` form: a throwaway
    registry, unlabelled gauges (the exact text the CI telemetry-smoke job
    greps).  The serve daemon passes its own ``registry`` and a ``campaign``
    id, which adds a ``campaign`` label to every gauge so one scrape covers
    every hosted campaign.
    """
    registry = MetricsRegistry("campaign") if registry is None else registry
    label_names = ("campaign",) if campaign else ()
    labels = {"campaign": campaign} if campaign else {}
    units = registry.gauge(
        "repro_campaign_units",
        "Campaign units by state.",
        labelnames=("state",) + label_names,
    )
    units.set(status_payload.get("total_units", 0), state="total", **labels)
    units.set(status_payload.get("completed_units", 0), state="completed", **labels)
    units.set(status_payload.get("pending_units", 0), state="pending", **labels)
    registry.gauge(
        "repro_campaign_complete",
        "1 when every planned unit is stored.",
        labelnames=label_names,
    ).set(1.0 if status_payload.get("complete") else 0.0, **labels)
    registry.gauge(
        "repro_campaign_skipped_records",
        "Malformed records seen by the scan.",
        labelnames=label_names,
    ).set(status_payload.get("skipped_records", 0), **labels)
    work = status_payload.get("work") or {}
    if work:
        leases = registry.gauge(
            "repro_campaign_leases",
            "Work-stealing leases by state.",
            labelnames=("state",) + label_names,
        )
        leases.set(work.get("active_leases", 0), state="active", **labels)
        leases.set(work.get("expired_leases", 0), state="expired", **labels)
        registry.gauge(
            "repro_campaign_lease_reclaims",
            "Expired leases taken over from other workers.",
            labelnames=label_names,
        ).set(work.get("reclaims", 0), **labels)
        registry.gauge(
            "repro_campaign_lease_retries",
            "Retried lease-store operations.",
            labelnames=label_names,
        ).set(work.get("retries", 0), **labels)
        workers = work.get("workers") or []
        registry.gauge(
            "repro_campaign_workers_active",
            "Workers with a live heartbeat.",
            labelnames=label_names,
        ).set(sum(1 for row in workers if row.get("active")), **labels)
    return registry


#: Backwards-compatible alias (pre-serve name).
_campaign_gauges = campaign_gauges


class CampaignWatchServer:
    """Serve ``/metrics`` and ``/status`` for one campaign directory.

    ``port=0`` binds an ephemeral port (``.port`` reports the real one),
    which is how the in-process tests and the CI smoke job scrape it.
    A port something else holds raises a
    :class:`~repro.errors.ConfigurationError` at construction.
    """

    def __init__(
        self,
        directory,
        backend: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        # Imported lazily so importing the telemetry package never drags the
        # whole serve/campaign stack in (and vice versa at module load).
        from repro.serve.app import AppServer, HttpError, Response, ServeApp

        self.directory = directory
        self.backend = backend
        self.host = host
        self.registry = registry

        def scraped(render):
            # Any scrape failure (including a ConfigurationError from a
            # missing manifest) is a *server-side* 500 here, not the 400 the
            # serve API uses for bad client payloads — watch requests carry
            # nothing the client could fix.
            try:
                return render()
            except Exception as exc:
                raise HttpError(500, str(exc)) from exc

        def metrics_route(body=None):
            return Response(
                body=scraped(self.render_metrics).encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )

        def status_route(body=None):
            payload = scraped(self.status_payload)
            return Response(
                body=(json.dumps(payload, indent=2) + "\n").encode("utf-8"),
                content_type="application/json",
            )

        app = ServeApp("repro-watch/1")
        app.add("GET", "/metrics", metrics_route)
        app.add("GET", "/status", status_route)
        self._server = AppServer(app, host=host, port=port)

    @property
    def port(self) -> int:
        return self._server.port

    def status_payload(self) -> dict:
        from repro.campaign.runner import campaign_status

        return campaign_status(self.directory, backend=self.backend).as_dict()

    def render_metrics(self) -> str:
        payload = self.status_payload()
        text = campaign_gauges(payload).render_prometheus()
        registry = self.registry if self.registry is not None else metrics_registry()
        if registry is not None:
            text += registry.render_prometheus()
        return text

    def _log_serving(self) -> None:
        logger.info(
            "watching campaign %s on http://%s:%d (/metrics, /status)",
            self.directory,
            self.host,
            self.port,
        )

    def start(self) -> "CampaignWatchServer":
        self._server.start()
        self._log_serving()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._log_serving()
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.stop()

    def __enter__(self) -> "CampaignWatchServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
