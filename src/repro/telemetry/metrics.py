"""Low-overhead metrics registry: counters, gauges and histograms.

The registry follows the same two conventions the rest of the repo already
uses for cheap opt-in machinery:

* **Zero cost when disabled** — the same pre-check pattern as
  ``header.trace is None`` from the rerouting traces: instrumented call
  sites fetch the active registry once (``metrics_registry()``) and skip
  every telemetry branch when it returns ``None``.  Nothing is allocated,
  no lock is touched and no dict is probed on the hot path unless the
  process opted in via :func:`enable_metrics` or ``REPRO_TELEMETRY=1``.
* **Process-wide named instances** — like ``mem://<name>`` backends and
  ``MemoryLeaseStore.open``, :meth:`MetricsRegistry.named` hands out one
  shared registry per name so the CLI, the executor and an embedded HTTP
  scraper all see the same counters without plumbing a handle through
  every constructor.

Rendering follows the Prometheus text exposition format (0.0.4) so the
``repro campaign watch`` endpoint can serve ``/metrics`` directly.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "enable_metrics",
    "disable_metrics",
    "metrics_registry",
]

#: Upper bounds (seconds) used by duration histograms unless overridden.
#: Spans blob round-trips (~1 ms local, ~100 ms remote) through whole
#: simulation units (seconds to minutes).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
    120.0,
)

LabelValues = Tuple[str, ...]


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labelnames: Sequence[str], values: LabelValues, extra: str = "") -> str:
    parts = [f'{name}="{_escape_label(value)}"' for name, value in zip(labelnames, values)]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _Metric:
    """Shared plumbing for one metric family (a name plus its label sets)."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _check_labels(self, labels: Mapping[str, str]) -> LabelValues:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._check_labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._check_labels(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        if not items:
            items = [((), 0.0)] if not self.labelnames else []
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Gauge(_Metric):
    """A value that can go up and down (heartbeat lag, active leases...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._check_labels(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._check_labels(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._check_labels(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} gauge"]
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Histogram(_Metric):
    """Cumulative-bucket histogram in the Prometheus style."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._check_labels(labels)
        value = float(value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] += value

    def count(self, **labels: str) -> int:
        key = self._check_labels(labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def sum(self, **labels: str) -> float:
        key = self._check_labels(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted((k, list(v), self._sums[k]) for k, v in self._counts.items())
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        for key, counts, total in items:
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                labels = _render_labels(
                    self.labelnames, key, f'le="{_format_value(bound)}"'
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _render_labels(self.labelnames, key, 'le="+Inf"')
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(total)}")
            lines.append(f"{self.name}_count{plain} {cumulative}")
        return lines


class MetricsRegistry:
    """A named collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: layers that
    share a registry share the family, and re-registering with a
    conflicting kind raises instead of silently shadowing.
    """

    _named: Dict[str, "MetricsRegistry"] = {}
    _named_lock = threading.Lock()

    def __init__(self, name: str = ""):
        self.name = name
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- named process-wide instances (the mem://<name> pattern) ----------
    @classmethod
    def named(cls, name: str = "default") -> "MetricsRegistry":
        with cls._named_lock:
            registry = cls._named.get(name)
            if registry is None:
                registry = cls(name)
                cls._named[name] = registry
            return registry

    @classmethod
    def discard(cls, name: str) -> None:
        """Drop a named instance (test hygiene, like MemoryLeaseStore)."""
        with cls._named_lock:
            cls._named.pop(name, None)

    def _get_or_create(self, kind: type, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )

    def metrics(self) -> Iterable[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def render_prometheus(self) -> str:
        lines: List[str] = []
        for metric in sorted(self.metrics(), key=lambda m: m.name):
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Flat {metric: {labelrepr: value}} view for tests and JSON dumps."""
        out: Dict[str, Dict[str, float]] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                with metric._lock:
                    out[metric.name] = {
                        _render_labels(metric.labelnames, key) or "": float(sum(counts))
                        for key, counts in metric._counts.items()
                    }
            else:
                with metric._lock:
                    out[metric.name] = {
                        _render_labels(metric.labelnames, key) or "": float(value)
                        for key, value in metric._values.items()
                    }
        return out


# -- global on/off switch -------------------------------------------------
#
# ``metrics_registry()`` is the single gate every instrumented call site
# checks.  It returns ``None`` unless telemetry was switched on, so the
# disabled cost is one function call + one identity check per *run* (never
# per cycle).  ``REPRO_TELEMETRY=1`` in the environment enables it lazily,
# which also covers forked pool workers.

_active: Optional[MetricsRegistry] = None
_env_checked = False
_switch_lock = threading.Lock()

ENV_TELEMETRY = "REPRO_TELEMETRY"


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Switch metrics on, optionally routing into an explicit registry."""
    global _active, _env_checked
    with _switch_lock:
        _active = registry if registry is not None else MetricsRegistry.named()
        _env_checked = True
        return _active


def disable_metrics() -> None:
    global _active, _env_checked
    with _switch_lock:
        _active = None
        _env_checked = True


def metrics_registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when telemetry is off (the default)."""
    global _env_checked, _active
    if not _env_checked:
        with _switch_lock:
            if not _env_checked:
                if os.environ.get(ENV_TELEMETRY, "").strip() not in ("", "0", "false"):
                    _active = MetricsRegistry.named()
                _env_checked = True
    return _active
