"""Engine stage profiling and a cProfile convenience wrapper.

The :class:`StageProfiler` is the opt-in half of the engine's stage
instrumentation: when a profiler is passed to ``SimulationEngine`` (or
threaded through ``run_simulation``), the engine swaps in a timed
``step`` that wraps each pipeline stage (``generate``/``inject``/
``route_allocate``/``transfer``/``drain``) in a pair of
``perf_counter`` reads.  When no profiler is attached the engine's hot
loop is byte-for-byte the untimed one — the swap happens once in
``__init__``, so disabled cost is zero (the ``header.trace is None``
pattern applied to methods).

The stage breakdown is what scopes the ROADMAP's array-native-kernel
item: it answers "which stage burns the cycles" with real numbers per
topology/load instead of folklore.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple, TypeVar

__all__ = ["StageProfiler", "StageStat", "profile_call"]

T = TypeVar("T")

#: Engine pipeline stages in execution order, as reported by the engine.
ENGINE_STAGES: Tuple[str, ...] = (
    "generate",
    "inject",
    "route_allocate",
    "transfer",
    "drain",
)


@dataclass
class StageStat:
    """Accumulated wall time for one named stage."""

    calls: int = 0
    seconds: float = 0.0


@dataclass
class StageProfiler:
    """Accumulates per-stage call counts and wall-clock seconds."""

    stages: Dict[str, StageStat] = field(default_factory=dict)

    def record(self, stage: str, seconds: float) -> None:
        stat = self.stages.get(stage)
        if stat is None:
            stat = StageStat()
            self.stages[stage] = stat
        stat.calls += 1
        stat.seconds += seconds

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.stages.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"calls": stat.calls, "seconds": stat.seconds}
            for name, stat in self.stages.items()
        }

    def describe(self) -> str:
        """A human-readable stage-time breakdown table."""
        total = self.total_seconds
        if not self.stages:
            return "stage profile: no stages recorded"
        order = [name for name in ENGINE_STAGES if name in self.stages]
        order += [name for name in self.stages if name not in ENGINE_STAGES]
        width = max(len(name) for name in order)
        lines = ["stage profile (wall time per engine stage):"]
        for name in order:
            stat = self.stages[name]
            share = (stat.seconds / total * 100.0) if total > 0 else 0.0
            lines.append(
                f"  {name:<{width}}  {stat.seconds:9.4f}s  {share:5.1f}%  "
                f"{stat.calls:>9} calls"
            )
        lines.append(f"  {'total':<{width}}  {total:9.4f}s")
        return "\n".join(lines)


def profile_call(
    fn: Callable[[], T], top: int = 25, sort: str = "cumulative"
) -> Tuple[T, str]:
    """Run ``fn`` under :mod:`cProfile`; returns ``(result, report)``.

    ``report`` is the top-``top`` entries of the profile sorted by
    ``sort`` — what ``repro simulate --profile`` prints to stderr while
    the result table still goes to stdout.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return result, buffer.getvalue()


def render_profile_lines(report: str) -> List[str]:
    """Split a profile report into trimmed, non-empty lines (logging aid)."""
    return [line.rstrip() for line in report.splitlines() if line.strip()]
