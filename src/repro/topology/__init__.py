"""Topology substrate: k-ary n-cube (torus) and n-dimensional mesh networks.

This package provides the direct-network topologies used by the paper
(Section 2): the k-ary n-cube ("torus") and, as a supporting baseline, the
n-dimensional mesh.  It also defines the node-address algebra (mixed-radix
coordinates) and the port/channel enumeration shared by the router model and
the routing functions.
"""

from repro.topology.address import (
    coords_to_id,
    id_to_coords,
    manhattan_offsets,
    wrap_offset,
)
from repro.topology.base import Topology
from repro.topology.channels import (
    EJECTION_PORT_NAME,
    INJECTION_PORT_NAME,
    MINUS,
    PLUS,
    Channel,
    Port,
    opposite_direction,
    port_direction,
    port_dimension,
    port_index,
    port_name,
)
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology

__all__ = [
    "Topology",
    "TorusTopology",
    "MeshTopology",
    "Channel",
    "Port",
    "PLUS",
    "MINUS",
    "INJECTION_PORT_NAME",
    "EJECTION_PORT_NAME",
    "port_index",
    "port_dimension",
    "port_direction",
    "port_name",
    "opposite_direction",
    "coords_to_id",
    "id_to_coords",
    "wrap_offset",
    "manhattan_offsets",
]
