"""Node-address algebra for mixed-radix direct networks.

A node of a k-ary n-cube is identified either by an integer id in
``[0, k**n)`` or by an n-digit radix-k coordinate tuple ``(a_{n-1}, ..., a_0)``.
Throughout this code base coordinates are stored **little-endian**: index 0 of
the tuple is dimension 0.  Dimension 0 is the lowest dimension and is the first
dimension corrected by dimension-order (e-cube) routing.

These helpers are deliberately free functions (rather than methods on the
topology classes) so that routing code and tests can manipulate addresses
without holding a topology object.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = [
    "coords_to_id",
    "id_to_coords",
    "wrap_offset",
    "manhattan_offsets",
    "validate_coords",
]


def coords_to_id(coords: Sequence[int], radices: Sequence[int]) -> int:
    """Convert a coordinate tuple into a flat node id.

    Parameters
    ----------
    coords:
        Per-dimension coordinates, little-endian (``coords[0]`` is dimension 0).
    radices:
        Per-dimension radix ``k_d``; must have the same length as ``coords``.

    Returns
    -------
    int
        The mixed-radix integer ``sum_d coords[d] * prod_{j<d} radices[j]``.

    Raises
    ------
    ValueError
        If the lengths disagree or a coordinate lies outside ``[0, k_d)``.
    """
    if len(coords) != len(radices):
        raise ValueError(
            f"coordinate arity {len(coords)} does not match radix arity {len(radices)}"
        )
    node = 0
    stride = 1
    for dim, (c, k) in enumerate(zip(coords, radices)):
        if not 0 <= c < k:
            raise ValueError(f"coordinate {c} out of range [0, {k}) in dimension {dim}")
        node += c * stride
        stride *= k
    return node


def id_to_coords(node: int, radices: Sequence[int]) -> Tuple[int, ...]:
    """Convert a flat node id back into a little-endian coordinate tuple.

    Inverse of :func:`coords_to_id`.
    """
    total = 1
    for k in radices:
        total *= k
    if not 0 <= node < total:
        raise ValueError(f"node id {node} out of range [0, {total})")
    coords = []
    for k in radices:
        coords.append(node % k)
        node //= k
    return tuple(coords)


def validate_coords(coords: Sequence[int], radices: Sequence[int]) -> None:
    """Raise :class:`ValueError` if ``coords`` is not a valid address."""
    coords_to_id(coords, radices)


def wrap_offset(src: int, dst: int, radix: int) -> int:
    """Signed minimal offset from ``src`` to ``dst`` along one torus dimension.

    The returned value ``o`` satisfies ``(src + o) mod radix == dst`` and
    ``|o| <= radix // 2``.  When the two directions are equidistant (possible
    only for even ``radix``), the positive direction is preferred — the same
    tie-break the paper's simulator uses for minimal routing on a torus.

    Examples
    --------
    >>> wrap_offset(0, 3, 8)
    3
    >>> wrap_offset(0, 6, 8)
    -2
    >>> wrap_offset(1, 5, 8)   # tie: distance 4 both ways, prefer +
    4
    """
    if radix <= 0:
        raise ValueError("radix must be positive")
    if not (0 <= src < radix and 0 <= dst < radix):
        raise ValueError(f"coordinates must lie in [0, {radix})")
    forward = (dst - src) % radix
    backward = forward - radix  # negative or zero
    if forward == 0:
        return 0
    if forward <= -backward:  # forward <= radix - forward
        return forward
    return backward


def mesh_offset(src: int, dst: int) -> int:
    """Signed offset from ``src`` to ``dst`` along one mesh dimension."""
    return dst - src


def manhattan_offsets(
    src: Sequence[int],
    dst: Sequence[int],
    radices: Sequence[int],
    wraparound: bool = True,
) -> Tuple[int, ...]:
    """Per-dimension signed minimal offsets from ``src`` to ``dst``.

    With ``wraparound=True`` each offset is the torus-minimal signed offset
    (see :func:`wrap_offset`); with ``wraparound=False`` the plain difference
    is returned (mesh behaviour).
    """
    if not (len(src) == len(dst) == len(radices)):
        raise ValueError("src, dst and radices must have the same arity")
    if wraparound:
        return tuple(wrap_offset(s, d, k) for s, d, k in zip(src, dst, radices))
    return tuple(mesh_offset(s, d) for s, d in zip(src, dst))


def hop_distance(offsets: Iterable[int]) -> int:
    """Total number of hops implied by a tuple of per-dimension offsets."""
    return sum(abs(o) for o in offsets)
