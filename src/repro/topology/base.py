"""Abstract base class shared by the torus and mesh topologies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.topology.address import coords_to_id, id_to_coords
from repro.topology.channels import MINUS, PLUS, Channel, port_index

__all__ = ["Topology"]


class Topology(ABC):
    """A direct network of ``N`` nodes arranged in an n-dimensional grid.

    Concrete subclasses (:class:`~repro.topology.torus.TorusTopology`,
    :class:`~repro.topology.mesh.MeshTopology`) decide whether dimensions wrap
    around.  The class owns:

    * the address algebra (node id ⟷ coordinate conversions),
    * neighbour/channel enumeration, and
    * minimal-offset computation used by every routing function.

    Instances are immutable and hashable; they are freely shared between the
    simulator, the routing functions and the fault model.
    """

    def __init__(self, radix: int | Sequence[int], dimensions: int) -> None:
        if dimensions <= 0:
            raise ValueError(f"dimensions must be positive, got {dimensions}")
        if isinstance(radix, int):
            radices: Tuple[int, ...] = tuple([radix] * dimensions)
        else:
            radices = tuple(int(k) for k in radix)
            if len(radices) != dimensions:
                raise ValueError(
                    f"got {len(radices)} radices for {dimensions} dimensions"
                )
        for k in radices:
            if k < 2:
                raise ValueError(f"every radix must be >= 2, got {k}")
        self._radices = radices
        self._dimensions = dimensions
        self._num_nodes = 1
        for k in radices:
            self._num_nodes *= k
        # Coordinate table: the id -> coords conversion is on the routing hot
        # path (every routing decision converts at least two ids), so it is
        # precomputed once per topology instead of divmod-looping per call.
        self._coords_table: List[Tuple[int, ...]] = [
            id_to_coords(node, radices) for node in range(self._num_nodes)
        ]
        # Neighbour table: _neighbors[node][port] -> neighbour id or -1.
        self._neighbors: List[List[int]] = self._build_neighbor_table()

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def dimensions(self) -> int:
        """Number of dimensions ``n``."""
        return self._dimensions

    @property
    def radices(self) -> Tuple[int, ...]:
        """Per-dimension radix ``k_d`` (little-endian, index = dimension)."""
        return self._radices

    @property
    def radix(self) -> int:
        """The common radix ``k`` (raises if the network is mixed-radix)."""
        first = self._radices[0]
        if any(k != first for k in self._radices):
            raise ValueError("topology is mixed-radix; use .radices instead")
        return first

    @property
    def num_nodes(self) -> int:
        """Total number of nodes ``N``."""
        return self._num_nodes

    @property
    def num_network_ports(self) -> int:
        """Number of network (non PE) ports per router: ``2n``."""
        return 2 * self._dimensions

    @property
    @abstractmethod
    def wraparound(self) -> bool:
        """True for tori (k-ary n-cubes), False for meshes."""

    # ------------------------------------------------------------------ #
    # address algebra
    # ------------------------------------------------------------------ #
    def coords(self, node: int) -> Tuple[int, ...]:
        """Coordinate tuple of node ``node`` (precomputed table lookup)."""
        return self._coords_table[node]

    def node_id(self, coords: Sequence[int]) -> int:
        """Flat node id of the node at ``coords``."""
        return coords_to_id(coords, self._radices)

    def nodes(self) -> Iterator[int]:
        """Iterate over all node ids."""
        return iter(range(self._num_nodes))

    def contains(self, coords: Sequence[int]) -> bool:
        """True if ``coords`` is a valid address of this network."""
        if len(coords) != self._dimensions:
            return False
        return all(0 <= c < k for c, k in zip(coords, self._radices))

    # ------------------------------------------------------------------ #
    # neighbours and channels
    # ------------------------------------------------------------------ #
    def _build_neighbor_table(self) -> List[List[int]]:
        table: List[List[int]] = []
        for node in range(self._num_nodes):
            coords = id_to_coords(node, self._radices)
            row: List[int] = []
            for dim in range(self._dimensions):
                for direction in (PLUS, MINUS):
                    neighbour = self._neighbor_coords(coords, dim, direction)
                    row_index = port_index(dim, direction)
                    # Ports are visited in index order (PLUS, MINUS per dim),
                    # so appending keeps row[port_index] consistent.
                    assert row_index == len(row)
                    if neighbour is None:
                        row.append(-1)
                    else:
                        row.append(coords_to_id(neighbour, self._radices))
            table.append(row)
        return table

    @abstractmethod
    def _neighbor_coords(
        self, coords: Tuple[int, ...], dimension: int, direction: int
    ) -> Optional[Tuple[int, ...]]:
        """Coordinates of the neighbour in ``(dimension, direction)``, or None."""

    def neighbor(self, node: int, dimension: int, direction: int) -> Optional[int]:
        """Neighbour of ``node`` along ``(dimension, direction)``.

        Returns ``None`` when the mesh boundary is reached (never for a torus).
        """
        if not 0 <= dimension < self._dimensions:
            raise ValueError(f"dimension {dimension} out of range")
        nid = self._neighbors[node][port_index(dimension, direction)]
        return None if nid < 0 else nid

    def neighbor_via_port(self, node: int, port: int) -> Optional[int]:
        """Neighbour reached by leaving ``node`` through network port ``port``."""
        nid = self._neighbors[node][port]
        return None if nid < 0 else nid

    def neighbors(self, node: int) -> List[Tuple[int, int, int]]:
        """All neighbours of ``node`` as ``(dimension, direction, neighbour_id)``."""
        out: List[Tuple[int, int, int]] = []
        for dim in range(self._dimensions):
            for direction in (PLUS, MINUS):
                nid = self._neighbors[node][port_index(dim, direction)]
                if nid >= 0:
                    out.append((dim, direction, nid))
        return out

    def channel(self, node: int, dimension: int, direction: int) -> Optional[Channel]:
        """The directed physical channel leaving ``node`` along ``(dimension, direction)``."""
        dst = self.neighbor(node, dimension, direction)
        if dst is None:
            return None
        coords = self.coords(node)
        k = self._radices[dimension]
        wrap = self.wraparound and (
            (direction == PLUS and coords[dimension] == k - 1)
            or (direction == MINUS and coords[dimension] == 0)
        )
        return Channel(src=node, dst=dst, dimension=dimension, direction=direction, wraparound=wrap)

    def channels(self) -> Iterator[Channel]:
        """Iterate over every directed physical channel of the network."""
        for node in range(self._num_nodes):
            for dim in range(self._dimensions):
                for direction in (PLUS, MINUS):
                    ch = self.channel(node, dim, direction)
                    if ch is not None:
                        yield ch

    # ------------------------------------------------------------------ #
    # distances and offsets
    # ------------------------------------------------------------------ #
    @abstractmethod
    def offsets(self, src: int, dst: int) -> Tuple[int, ...]:
        """Per-dimension signed minimal offsets from ``src`` to ``dst``."""

    def distance(self, src: int, dst: int) -> int:
        """Minimal hop distance between two nodes."""
        return sum(abs(o) for o in self.offsets(src, dst))

    def minimal_directions(self, src: int, dst: int) -> Dict[int, int]:
        """Profitable directions per dimension.

        Returns a mapping ``dimension -> direction`` containing only the
        dimensions in which ``src`` and ``dst`` differ; the direction is the
        minimal-path direction (ties on an even-radix torus resolve to +1,
        matching :func:`repro.topology.address.wrap_offset`).
        """
        out: Dict[int, int] = {}
        for dim, off in enumerate(self.offsets(src, dst)):
            if off > 0:
                out[dim] = PLUS
            elif off < 0:
                out[dim] = MINUS
        return out

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Directed graph of nodes and physical channels (for analysis/tests)."""
        g = nx.DiGraph()
        g.add_nodes_from(range(self._num_nodes))
        for ch in self.channels():
            g.add_edge(ch.src, ch.dst, dimension=ch.dimension, direction=ch.direction,
                       wraparound=ch.wraparound)
        return g

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Topology)
            and type(self) is type(other)
            and self._radices == other._radices
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._radices))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        kind = "torus" if self.wraparound else "mesh"
        return f"{type(self).__name__}(radices={self._radices}, {kind})"
