"""Port and channel enumeration shared by routers and routing functions.

Every router of an n-dimensional direct network has ``2n`` *network* ports —
one per (dimension, direction) pair — plus one injection port (from the local
processing element, PE) and one ejection port (to the local PE).  The paper's
router model (Section 2) is exactly this: a ``(2n+1)·V``-way input /
``(2n+1)·V``-way output crossbar once V virtual channels are attached to each
physical channel.

Port numbering convention
-------------------------
* Network port for dimension ``d`` in the positive direction: ``2*d``.
* Network port for dimension ``d`` in the negative direction: ``2*d + 1``.
* Injection port: ``2*n``  (only meaningful as an *input* port of the router).
* Ejection port: ``2*n + 1`` (only meaningful as an *output* port).

A *physical channel* (here called :class:`Channel`) is the directed link that
leaves node ``src`` through network port ``port`` and enters its neighbour
``dst`` through the opposite port.  Virtual channels are modelled by the
network layer (:mod:`repro.network.virtual_channel`); topologically they all
share the same :class:`Channel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "PLUS",
    "MINUS",
    "Port",
    "Channel",
    "port_index",
    "port_dimension",
    "port_direction",
    "opposite_port",
    "opposite_direction",
    "injection_port",
    "ejection_port",
    "port_name",
    "INJECTION_PORT_NAME",
    "EJECTION_PORT_NAME",
]

#: Positive ("increasing coordinate") direction along a dimension.
PLUS: int = +1
#: Negative ("decreasing coordinate") direction along a dimension.
MINUS: int = -1

#: Human-readable name used for injection ports in dumps and error messages.
INJECTION_PORT_NAME = "inject"
#: Human-readable name used for ejection ports in dumps and error messages.
EJECTION_PORT_NAME = "eject"


@dataclass(frozen=True)
class Port:
    """A (dimension, direction) network port of a router.

    ``direction`` is :data:`PLUS` or :data:`MINUS`.  The flat integer index of
    the port (used as a list index by the router model) is given by
    :func:`port_index`.
    """

    dimension: int
    direction: int

    def __post_init__(self) -> None:
        if self.direction not in (PLUS, MINUS):
            raise ValueError(f"direction must be +1 or -1, got {self.direction}")
        if self.dimension < 0:
            raise ValueError(f"dimension must be non-negative, got {self.dimension}")

    @property
    def index(self) -> int:
        """Flat index of this port (see :func:`port_index`)."""
        return port_index(self.dimension, self.direction)

    def opposite(self) -> "Port":
        """The port pointing the other way along the same dimension."""
        return Port(self.dimension, -self.direction)

    def __str__(self) -> str:  # pragma: no cover - trivial
        sign = "+" if self.direction == PLUS else "-"
        return f"d{self.dimension}{sign}"


@dataclass(frozen=True)
class Channel:
    """A directed physical channel between two adjacent routers.

    Attributes
    ----------
    src, dst:
        Flat node ids of the upstream and downstream routers.
    dimension, direction:
        The dimension the channel spans and the direction of travel
        (:data:`PLUS` or :data:`MINUS`) as seen from ``src``.
    wraparound:
        True when the channel is a torus wrap-around link (i.e. it connects
        coordinate ``k-1`` to ``0`` or vice versa).  Routing functions use this
        to assign Dally–Seitz virtual-channel classes.
    """

    src: int
    dst: int
    dimension: int
    direction: int
    wraparound: bool = False

    @property
    def port(self) -> int:
        """Output-port index at ``src`` through which this channel leaves."""
        return port_index(self.dimension, self.direction)

    def key(self) -> Tuple[int, int]:
        """Hashable key ``(src, output-port index)`` identifying the channel."""
        return (self.src, self.port)

    def __str__(self) -> str:  # pragma: no cover - trivial
        sign = "+" if self.direction == PLUS else "-"
        wrap = "~" if self.wraparound else ""
        return f"{self.src}->{self.dst}(d{self.dimension}{sign}{wrap})"


def port_index(dimension: int, direction: int) -> int:
    """Flat index of the network port ``(dimension, direction)``.

    Positive direction maps to even indices, negative to odd indices.
    """
    if direction == PLUS:
        return 2 * dimension
    if direction == MINUS:
        return 2 * dimension + 1
    raise ValueError(f"direction must be +1 or -1, got {direction}")


def port_dimension(port: int) -> int:
    """Dimension spanned by the network port with flat index ``port``."""
    if port < 0:
        raise ValueError("port index must be non-negative")
    return port // 2


def port_direction(port: int) -> int:
    """Direction (:data:`PLUS`/:data:`MINUS`) of the network port ``port``."""
    if port < 0:
        raise ValueError("port index must be non-negative")
    return PLUS if port % 2 == 0 else MINUS


def opposite_port(port: int) -> int:
    """Flat index of the port pointing the opposite way along the same dimension."""
    return port ^ 1


def opposite_direction(direction: int) -> int:
    """The reverse of ``direction`` (+1 ↔ -1)."""
    if direction not in (PLUS, MINUS):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    return -direction


def injection_port(dimensions: int) -> int:
    """Flat index of the injection port for an n-dimensional router."""
    return 2 * dimensions


def ejection_port(dimensions: int) -> int:
    """Flat index of the ejection port for an n-dimensional router."""
    return 2 * dimensions + 1


def port_name(port: int, dimensions: int) -> str:
    """Human-readable name of a port index for diagnostics."""
    if port == injection_port(dimensions):
        return INJECTION_PORT_NAME
    if port == ejection_port(dimensions):
        return EJECTION_PORT_NAME
    sign = "+" if port_direction(port) == PLUS else "-"
    return f"d{port_dimension(port)}{sign}"
