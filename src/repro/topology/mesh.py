"""n-dimensional mesh topology.

The mesh is not the paper's primary topology, but it is the natural substrate
for several of the fault-tolerant routing baselines cited in the related work
(e.g. Boppana & Chalasani's fault rings) and for channel-dependency-graph
sanity checks where wrap-around cycles are absent.  It shares the address and
port conventions of :class:`~repro.topology.torus.TorusTopology`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.topology.address import manhattan_offsets
from repro.topology.base import Topology
from repro.topology.channels import MINUS, PLUS

__all__ = ["MeshTopology"]


class MeshTopology(Topology):
    """An n-dimensional mesh: like a torus but without wrap-around links.

    Boundary nodes simply lack the neighbour in the outward direction;
    :meth:`neighbor` returns ``None`` there and routing functions must not
    select that port.
    """

    def __init__(self, radix: int | Sequence[int] = 8, dimensions: int = 2) -> None:
        super().__init__(radix, dimensions)

    @property
    def wraparound(self) -> bool:
        return False

    def _neighbor_coords(
        self, coords: Tuple[int, ...], dimension: int, direction: int
    ) -> Optional[Tuple[int, ...]]:
        k = self.radices[dimension]
        c = list(coords)
        if direction == PLUS:
            if c[dimension] == k - 1:
                return None
            c[dimension] += 1
        elif direction == MINUS:
            if c[dimension] == 0:
                return None
            c[dimension] -= 1
        else:  # pragma: no cover - guarded elsewhere
            raise ValueError(f"direction must be +1 or -1, got {direction}")
        return tuple(c)

    def offsets(self, src: int, dst: int) -> Tuple[int, ...]:
        """Plain signed per-dimension offsets (no wrap-around)."""
        return manhattan_offsets(self.coords(src), self.coords(dst), self.radices, wraparound=False)
