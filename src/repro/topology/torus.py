"""k-ary n-cube (torus) topology.

The k-ary n-cube is the topology the paper evaluates (Section 2): ``N = k**n``
nodes arranged in an n-dimensional cube with ``k`` nodes along each dimension,
every node connected to the two neighbours that differ by ±1 (mod k) in exactly
one coordinate.  The network is regular and edge-symmetric.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.topology.address import manhattan_offsets
from repro.topology.base import Topology
from repro.topology.channels import MINUS, PLUS

__all__ = ["TorusTopology"]


class TorusTopology(Topology):
    """A k-ary n-cube with wrap-around links in every dimension.

    Parameters
    ----------
    radix:
        Nodes per dimension ``k`` (or a per-dimension sequence for a
        mixed-radix torus).
    dimensions:
        Number of dimensions ``n``.

    Examples
    --------
    >>> t = TorusTopology(radix=8, dimensions=2)   # the paper's 8-ary 2-cube
    >>> t.num_nodes
    64
    >>> t.neighbor(t.node_id((7, 0)), dimension=0, direction=+1)  # wraps to x=0
    0
    """

    def __init__(self, radix: int | Sequence[int] = 8, dimensions: int = 2) -> None:
        super().__init__(radix, dimensions)

    @property
    def wraparound(self) -> bool:
        return True

    def _neighbor_coords(
        self, coords: Tuple[int, ...], dimension: int, direction: int
    ) -> Optional[Tuple[int, ...]]:
        k = self.radices[dimension]
        c = list(coords)
        if direction == PLUS:
            c[dimension] = (c[dimension] + 1) % k
        elif direction == MINUS:
            c[dimension] = (c[dimension] - 1) % k
        else:  # pragma: no cover - guarded by Port validation elsewhere
            raise ValueError(f"direction must be +1 or -1, got {direction}")
        return tuple(c)

    def offsets(self, src: int, dst: int) -> Tuple[int, ...]:
        """Torus-minimal signed offsets (each ``|o_d| <= k_d // 2``)."""
        return manhattan_offsets(self.coords(src), self.coords(dst), self.radices, wraparound=True)

    def non_minimal_offset(self, src: int, dst: int, dimension: int) -> int:
        """The signed offset going the *long* way around ``dimension``.

        Software-Based re-routing reverses direction within a dimension; on a
        torus the reversed path still reaches the destination coordinate by
        travelling ``k - |minimal offset|`` hops the other way.  This helper
        returns that signed non-minimal offset (0 if the coordinates already
        agree).
        """
        minimal = self.offsets(src, dst)[dimension]
        if minimal == 0:
            return 0
        k = self.radices[dimension]
        if minimal > 0:
            return minimal - k
        return minimal + k
