"""Traffic generation: arrival processes and destination patterns.

The paper's workload (assumptions (a)–(c) in Section 5.1) is a Poisson arrival
process per node with rate λ messages/node/cycle, fixed message length and
uniformly distributed destinations.  This package implements that workload and
a set of standard synthetic patterns (transpose, bit-complement, bit-reversal,
hotspot, nearest-neighbour) used by the extension benchmarks.
"""

from repro.traffic.patterns import (
    BitComplementPattern,
    BitReversalPattern,
    DestinationPattern,
    HotspotPattern,
    NearestNeighborPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
)
from repro.traffic.generators import (
    BernoulliTraffic,
    PeriodicTraffic,
    PoissonTraffic,
    TrafficGenerator,
)

__all__ = [
    "DestinationPattern",
    "UniformPattern",
    "TransposePattern",
    "BitComplementPattern",
    "BitReversalPattern",
    "HotspotPattern",
    "NearestNeighborPattern",
    "make_pattern",
    "TrafficGenerator",
    "PoissonTraffic",
    "BernoulliTraffic",
    "PeriodicTraffic",
]
