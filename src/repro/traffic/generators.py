"""Arrival processes (paper assumption (a)).

Nodes generate traffic independently of each other following a Poisson process
with mean rate λ messages/node/cycle.  The generators in this module produce,
per node, the cycle numbers at which new messages are created; the simulation
engine then enqueues the messages at the source's injection queue.

Besides the Poisson process used by the paper, a Bernoulli process (one
arrival per cycle with probability λ — the discrete-time approximation many
simulators use) and a deterministic periodic process (useful for tests where
exact arrival times matter) are provided.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

__all__ = [
    "TrafficGenerator",
    "PoissonTraffic",
    "BernoulliTraffic",
    "PeriodicTraffic",
]


class TrafficGenerator(ABC):
    """Per-node arrival process.

    A generator is instantiated once per simulation with the injection rate,
    then :meth:`make_source` is called once per node to obtain an independent
    arrival stream (so that "nodes generate traffic independently of each
    other", assumption (a)).
    """

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"injection rate must be non-negative, got {rate}")
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        """Mean injection rate λ in messages/node/cycle."""
        return self._rate

    @abstractmethod
    def make_source(self, rng: np.random.Generator) -> "ArrivalStream":
        """A fresh, independent arrival stream for one node."""

    def with_rate(self, rate: float) -> "TrafficGenerator":
        """A copy of this generator with a different injection rate.

        Used by the sweep harness, which varies λ while keeping the process
        type fixed.
        """
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone._rate = float(rate)
        return clone

    @property
    def name(self) -> str:
        """Short name of the process (``poisson``, ``bernoulli``, ``periodic``)."""
        return type(self).__name__.replace("Traffic", "").lower()


class ArrivalStream(ABC):
    """Stream of arrival cycle numbers for a single node."""

    @abstractmethod
    def arrivals_until(self, cycle: int) -> int:
        """Number of new messages generated at (i.e. up to and including) ``cycle``.

        The engine calls this once per cycle with monotonically increasing
        cycle numbers; implementations keep their own position.
        """

    def next_arrival_cycle(self) -> Optional[Union[int, float]]:
        """The earliest future cycle at which this stream will report an arrival.

        Enables the engine's idle skip-ahead: when the network is empty it can
        jump straight to the minimum of the per-node next-arrival cycles
        instead of spinning through empty stages.  Must be side-effect free
        (no RNG draws).  Returns

        * an ``int`` cycle number when the next arrival time is known (its
          exact value; ``arrivals_until`` of any earlier cycle returns 0 and
          consumes no randomness, so skipping those cycles is RNG-neutral);
        * ``math.inf`` when the stream will never produce another arrival;
        * ``None`` when the stream cannot predict it — e.g. a Bernoulli
          stream, which draws the RNG every single cycle.  Any ``None``
          disables skip-ahead for the whole simulation.
        """
        return None


class _ExponentialStream(ArrivalStream):
    """Poisson process realised through exponential inter-arrival times."""

    __slots__ = ("_rate", "_rng", "_next_arrival")

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self._rate = rate
        self._rng = rng
        self._next_arrival = self._draw_gap() if rate > 0 else float("inf")

    def _draw_gap(self) -> float:
        return float(self._rng.exponential(1.0 / self._rate))

    def arrivals_until(self, cycle: int) -> int:
        if self._rate <= 0:
            return 0
        count = 0
        while self._next_arrival <= cycle:
            count += 1
            self._next_arrival += self._draw_gap()
        return count

    def next_arrival_cycle(self) -> Union[int, float]:
        if not math.isfinite(self._next_arrival):
            return math.inf
        # The arrival at continuous time t is reported by the first integer
        # cycle >= t.
        return math.ceil(self._next_arrival)


class _BernoulliStream(ArrivalStream):
    """At most one arrival per cycle, with probability λ."""

    __slots__ = ("_rate", "_rng")

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if rate > 1.0:
            raise ValueError("a Bernoulli process cannot have rate > 1 message/cycle")
        self._rate = rate
        self._rng = rng

    def arrivals_until(self, cycle: int) -> int:
        if self._rate <= 0:
            return 0
        return 1 if self._rng.random() < self._rate else 0

    def next_arrival_cycle(self) -> Optional[Union[int, float]]:
        # Every cycle consumes one RNG draw regardless of the outcome, so
        # skipping cycles would change the draw sequence: unpredictable.
        return math.inf if self._rate <= 0 else None


class _PeriodicStream(ArrivalStream):
    """Deterministic arrivals every ``1/λ`` cycles (first arrival at the phase)."""

    __slots__ = ("_period", "_next_arrival")

    def __init__(self, rate: float, phase: float) -> None:
        self._period = float("inf") if rate <= 0 else 1.0 / rate
        self._next_arrival = phase if rate > 0 else float("inf")

    def arrivals_until(self, cycle: int) -> int:
        count = 0
        while self._next_arrival <= cycle:
            count += 1
            if self._period == float("inf"):
                self._next_arrival = float("inf")
            else:
                self._next_arrival += self._period
        return count

    def next_arrival_cycle(self) -> Union[int, float]:
        if not math.isfinite(self._next_arrival):
            return math.inf
        return math.ceil(self._next_arrival)


class PoissonTraffic(TrafficGenerator):
    """The paper's arrival process: Poisson with rate λ messages/node/cycle."""

    def make_source(self, rng: np.random.Generator) -> ArrivalStream:
        return _ExponentialStream(self._rate, rng)


class BernoulliTraffic(TrafficGenerator):
    """Discrete-time approximation: one arrival per cycle with probability λ."""

    def make_source(self, rng: np.random.Generator) -> ArrivalStream:
        return _BernoulliStream(self._rate, rng)


class PeriodicTraffic(TrafficGenerator):
    """Deterministic arrivals every ``1/λ`` cycles.

    Parameters
    ----------
    rate:
        Injection rate λ; the inter-arrival gap is ``1/λ`` cycles.
    phase:
        Cycle of the first arrival (default 0, i.e. a message is generated in
        the very first cycle).  Useful in unit tests that need exact control
        over the workload.
    """

    def __init__(self, rate: float, phase: float = 0.0) -> None:
        super().__init__(rate)
        if phase < 0:
            raise ValueError("phase must be non-negative")
        self._phase = float(phase)

    def make_source(self, rng: np.random.Generator) -> ArrivalStream:
        return _PeriodicStream(self._rate, self._phase)
