"""Destination patterns for synthetic traffic.

A destination pattern maps a source node to the destination of the next
message generated there.  The paper uses the uniform pattern only; the other
classical patterns (transpose, bit-complement, bit-reversal, hotspot,
nearest-neighbour) are provided because they stress routing algorithms in
different ways and are used by the extension benchmarks.

All patterns avoid selecting a faulty destination or the source itself when
given the relevant exclusion sets, since the paper measures latency only for
messages exchanged between healthy nodes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, Optional

import numpy as np

from repro.topology.base import Topology

__all__ = [
    "DestinationPattern",
    "UniformPattern",
    "TransposePattern",
    "BitComplementPattern",
    "BitReversalPattern",
    "HotspotPattern",
    "NearestNeighborPattern",
    "make_pattern",
]


class DestinationPattern(ABC):
    """Strategy object choosing the destination of each generated message."""

    def __init__(self, topology: Topology, excluded: Iterable[int] = ()) -> None:
        self._topology = topology
        self._excluded: FrozenSet[int] = frozenset(int(n) for n in excluded)

    @property
    def topology(self) -> Topology:
        """The network the pattern addresses."""
        return self._topology

    @property
    def excluded(self) -> FrozenSet[int]:
        """Nodes that are never chosen as destinations (e.g. faulty nodes)."""
        return self._excluded

    def with_excluded(self, excluded: Iterable[int]) -> "DestinationPattern":
        """A copy of this pattern that never targets the given nodes."""
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone._excluded = frozenset(int(n) for n in excluded)
        return clone

    @abstractmethod
    def _candidate(self, source: int, rng: np.random.Generator) -> int:
        """Propose a destination (may coincide with source or an excluded node)."""

    def pick(self, source: int, rng: np.random.Generator) -> Optional[int]:
        """Destination for a message generated at ``source``.

        Falls back to uniform re-sampling when the deterministic candidate is
        the source itself or an excluded node; returns ``None`` only if no
        valid destination exists at all.
        """
        candidate = self._candidate(source, rng)
        if candidate != source and candidate not in self._excluded:
            return candidate
        valid = [
            n
            for n in range(self._topology.num_nodes)
            if n != source and n not in self._excluded
        ]
        if not valid:
            return None
        return int(valid[int(rng.integers(len(valid)))])

    @property
    def name(self) -> str:
        """Short human-readable pattern name."""
        return type(self).__name__.replace("Pattern", "").lower()


class UniformPattern(DestinationPattern):
    """Uniformly random destinations (the paper's workload)."""

    def _candidate(self, source: int, rng: np.random.Generator) -> int:
        return int(rng.integers(self._topology.num_nodes))


class TransposePattern(DestinationPattern):
    """Matrix-transpose permutation: coordinates are rotated by half the arity.

    For a 2-D network node ``(x, y)`` sends to ``(y, x)``; in higher dimensions
    the coordinate vector is rotated by ``n // 2`` positions, the usual
    generalisation.
    """

    def _candidate(self, source: int, rng: np.random.Generator) -> int:
        coords = self._topology.coords(source)
        n = len(coords)
        shift = max(1, n // 2)
        rotated = tuple(coords[(i + shift) % n] for i in range(n))
        clipped = tuple(min(c, k - 1) for c, k in zip(rotated, self._topology.radices))
        return self._topology.node_id(clipped)


class BitComplementPattern(DestinationPattern):
    """Each coordinate is complemented: ``a_d -> k_d - 1 - a_d``."""

    def _candidate(self, source: int, rng: np.random.Generator) -> int:
        coords = self._topology.coords(source)
        complemented = tuple(k - 1 - c for c, k in zip(coords, self._topology.radices))
        return self._topology.node_id(complemented)


class BitReversalPattern(DestinationPattern):
    """The binary representation of the node id is reversed.

    Only meaningful for power-of-two network sizes; other sizes fall back to
    reversing the id's bits within ``ceil(log2(N))`` bits modulo ``N``.
    """

    def _candidate(self, source: int, rng: np.random.Generator) -> int:
        n = self._topology.num_nodes
        bits = max(1, (n - 1).bit_length())
        reversed_id = int(f"{source:0{bits}b}"[::-1], 2)
        return reversed_id % n


class HotspotPattern(DestinationPattern):
    """A fraction of traffic targets a single hotspot node, the rest is uniform.

    Parameters
    ----------
    hotspot:
        Flat id of the hotspot node.
    fraction:
        Probability that a message targets the hotspot (0 < fraction <= 1).
    """

    def __init__(
        self,
        topology: Topology,
        hotspot: int,
        fraction: float = 0.1,
        excluded: Iterable[int] = (),
    ) -> None:
        super().__init__(topology, excluded)
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not 0 <= hotspot < topology.num_nodes:
            raise ValueError(f"hotspot node {hotspot} does not exist")
        self._hotspot = int(hotspot)
        self._fraction = float(fraction)

    @property
    def hotspot(self) -> int:
        """The hotspot node id."""
        return self._hotspot

    @property
    def fraction(self) -> float:
        """Probability that a message targets the hotspot."""
        return self._fraction

    def _candidate(self, source: int, rng: np.random.Generator) -> int:
        if rng.random() < self._fraction:
            return self._hotspot
        return int(rng.integers(self._topology.num_nodes))


class NearestNeighborPattern(DestinationPattern):
    """Messages target a uniformly chosen physical neighbour of the source."""

    def _candidate(self, source: int, rng: np.random.Generator) -> int:
        neighbours = [nid for _, _, nid in self._topology.neighbors(source)]
        return int(neighbours[int(rng.integers(len(neighbours)))])


#: Pattern registry keyed by the names accepted in configuration files.
_PATTERNS = {
    "uniform": UniformPattern,
    "transpose": TransposePattern,
    "bit-complement": BitComplementPattern,
    "bit-reversal": BitReversalPattern,
    "nearest-neighbor": NearestNeighborPattern,
}


def make_pattern(
    name: str,
    topology: Topology,
    excluded: Iterable[int] = (),
    **kwargs,
) -> DestinationPattern:
    """Instantiate a destination pattern by name.

    ``"hotspot"`` additionally requires the ``hotspot`` keyword (node id) and
    accepts ``fraction``.
    """
    key = name.lower()
    if key == "hotspot":
        return HotspotPattern(topology, excluded=excluded, **kwargs)
    if key not in _PATTERNS:
        raise ValueError(
            f"unknown traffic pattern {name!r}; known: {sorted(_PATTERNS) + ['hotspot']}"
        )
    return _PATTERNS[key](topology, excluded=excluded, **kwargs)
