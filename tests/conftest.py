"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.faults.model import FaultSet
from repro.sim.config import SimulationConfig
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology


@pytest.fixture
def torus_4x4() -> TorusTopology:
    """A small 4-ary 2-cube (16 nodes) used by most unit tests."""
    return TorusTopology(radix=4, dimensions=2)


@pytest.fixture
def torus_8x8() -> TorusTopology:
    """The paper's 8-ary 2-cube (64 nodes)."""
    return TorusTopology(radix=8, dimensions=2)


@pytest.fixture
def torus_4x4x4() -> TorusTopology:
    """A 4-ary 3-cube (64 nodes) for n-dimensional tests."""
    return TorusTopology(radix=4, dimensions=3)


@pytest.fixture
def mesh_4x4() -> MeshTopology:
    """A 4x4 mesh."""
    return MeshTopology(radix=4, dimensions=2)


@pytest.fixture
def small_config(torus_4x4) -> SimulationConfig:
    """A fast-running simulation configuration for engine/integration tests."""
    return SimulationConfig(
        topology=torus_4x4,
        routing="swbased-deterministic",
        num_virtual_channels=2,
        message_length=4,
        injection_rate=0.02,
        faults=FaultSet.empty(),
        warmup_messages=10,
        measure_messages=80,
        max_cycles=30_000,
        seed=3,
    )
