"""Tests for the approximate analytical latency model (extension)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.analytical import AnalyticalLatencyModel
from repro.analysis.saturation import zero_load_latency
from repro.faults.model import FaultSet


@pytest.fixture
def model(torus_8x8):
    return AnalyticalLatencyModel(topology=torus_8x8, message_length=32,
                                  num_virtual_channels=4)


class TestModelStructure:
    def test_zero_load_limit_matches_zero_load_latency(self, model, torus_8x8):
        assert model.mean_latency(0.0) == pytest.approx(zero_load_latency(torus_8x8, 32))

    def test_latency_is_monotone_in_load(self, model):
        rates = [0.0, 0.002, 0.004, 0.008, 0.012]
        latencies = model.latency_curve(rates)
        assert latencies == sorted(latencies)

    def test_latency_diverges_at_saturation(self, model):
        saturation = model.saturation_rate()
        assert math.isinf(model.mean_latency(saturation))
        assert math.isfinite(model.mean_latency(saturation * 0.9))

    def test_longer_messages_cost_more(self, torus_8x8):
        short = AnalyticalLatencyModel(torus_8x8, message_length=32)
        long = AnalyticalLatencyModel(torus_8x8, message_length=64)
        assert long.mean_latency(0.004) > short.mean_latency(0.004)

    def test_more_virtual_channels_reduce_blocking(self, torus_8x8):
        few = AnalyticalLatencyModel(torus_8x8, message_length=32, num_virtual_channels=2)
        many = AnalyticalLatencyModel(torus_8x8, message_length=32, num_virtual_channels=10)
        assert many.mean_latency(0.01) < few.mean_latency(0.01)

    def test_adaptive_flag_reduces_latency(self, torus_8x8):
        det = AnalyticalLatencyModel(torus_8x8, message_length=32, adaptive=False)
        adpt = AnalyticalLatencyModel(torus_8x8, message_length=32, adaptive=True)
        assert adpt.mean_latency(0.01) < det.mean_latency(0.01)

    def test_invalid_parameters(self, torus_8x8):
        with pytest.raises(ValueError):
            AnalyticalLatencyModel(torus_8x8, message_length=0)
        with pytest.raises(ValueError):
            AnalyticalLatencyModel(torus_8x8, message_length=8, num_virtual_channels=0)
        model = AnalyticalLatencyModel(torus_8x8, message_length=8)
        with pytest.raises(ValueError):
            model.mean_latency(-0.1)


class TestFaultTerm:
    def test_no_faults_no_absorptions(self, model):
        assert model.absorption_probability() == 0.0

    def test_absorption_probability_grows_with_faults(self, torus_8x8):
        few = AnalyticalLatencyModel(torus_8x8, 32, faults=FaultSet.from_nodes([1]))
        many = AnalyticalLatencyModel(torus_8x8, 32, faults=FaultSet.from_nodes(range(1, 9)))
        assert many.absorption_probability() > few.absorption_probability()

    def test_adaptive_absorbs_much_less_often(self, torus_8x8):
        faults = FaultSet.from_nodes(range(1, 6))
        det = AnalyticalLatencyModel(torus_8x8, 32, faults=faults, adaptive=False)
        adpt = AnalyticalLatencyModel(torus_8x8, 32, faults=faults, adaptive=True)
        assert adpt.absorption_probability() < det.absorption_probability() / 5

    def test_faults_increase_latency(self, torus_8x8):
        healthy = AnalyticalLatencyModel(torus_8x8, 32)
        faulty = AnalyticalLatencyModel(torus_8x8, 32, faults=FaultSet.from_nodes(range(1, 6)))
        assert faulty.mean_latency(0.004) > healthy.mean_latency(0.004)

    def test_reinjection_delay_adds_cost_only_with_faults(self, torus_8x8):
        faults = FaultSet.from_nodes([1, 2, 3])
        model = AnalyticalLatencyModel(torus_8x8, 32, faults=faults)
        assert model.mean_latency(0.004, reinjection_delay=50) > model.mean_latency(0.004)
        healthy = AnalyticalLatencyModel(torus_8x8, 32)
        assert healthy.mean_latency(0.004, reinjection_delay=50) == pytest.approx(
            healthy.mean_latency(0.004)
        )


class TestAgainstSimulation:
    def test_model_tracks_simulation_at_low_load(self, torus_8x8):
        """At 20 % of capacity the model should be within ~35 % of the simulator."""
        from repro.sim.config import SimulationConfig
        from repro.sim.runner import run_simulation

        rate = 0.2 * AnalyticalLatencyModel(torus_8x8, 16).saturation_rate()
        config = SimulationConfig(
            topology=torus_8x8,
            routing="swbased-deterministic",
            num_virtual_channels=4,
            message_length=16,
            injection_rate=rate,
            warmup_messages=30,
            measure_messages=300,
            seed=9,
        )
        simulated = run_simulation(config).mean_latency
        predicted = AnalyticalLatencyModel(torus_8x8, 16, num_virtual_channels=4).mean_latency(rate)
        assert predicted == pytest.approx(simulated, rel=0.35)
