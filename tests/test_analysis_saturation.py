"""Tests for zero-load latency, capacity and saturation estimation."""

from __future__ import annotations

import pytest

from repro.analysis.saturation import (
    average_distance,
    estimate_saturation_rate,
    theoretical_capacity,
    zero_load_latency,
)
from repro.sim.sweep import LoadSweepResult
from repro.topology.mesh import MeshTopology
from repro.topology.torus import TorusTopology


class TestAverageDistance:
    def test_matches_exact_average_on_small_torus(self, torus_4x4):
        exact = sum(
            torus_4x4.distance(a, b)
            for a in torus_4x4.nodes()
            for b in torus_4x4.nodes()
            if a != b
        ) / (16 * 15)
        assert average_distance(torus_4x4) == pytest.approx(exact, rel=1e-9)

    def test_matches_exact_average_on_odd_radix_torus(self):
        topo = TorusTopology(radix=5, dimensions=2)
        exact = sum(
            topo.distance(a, b) for a in topo.nodes() for b in topo.nodes() if a != b
        ) / (25 * 24)
        assert average_distance(topo) == pytest.approx(exact, rel=1e-9)

    def test_matches_exact_average_on_mesh(self):
        mesh = MeshTopology(radix=4, dimensions=2)
        exact = sum(
            mesh.distance(a, b) for a in mesh.nodes() for b in mesh.nodes() if a != b
        ) / (16 * 15)
        assert average_distance(mesh) == pytest.approx(exact, rel=1e-9)

    def test_eight_ary_two_cube_value(self, torus_8x8):
        # n * k / 4 = 4, with the N/(N-1) correction for excluding self-traffic.
        assert average_distance(torus_8x8) == pytest.approx(4.0 * 64 / 63)


class TestZeroLoadAndCapacity:
    def test_zero_load_latency_formula(self, torus_8x8):
        assert zero_load_latency(torus_8x8, 32) == pytest.approx(
            average_distance(torus_8x8) + 32
        )

    def test_zero_load_latency_rejects_bad_length(self, torus_8x8):
        with pytest.raises(ValueError):
            zero_load_latency(torus_8x8, 0)

    def test_capacity_decreases_with_message_length(self, torus_8x8):
        assert theoretical_capacity(torus_8x8, 64) < theoretical_capacity(torus_8x8, 32)

    def test_capacity_increases_with_dimensionality(self):
        t2 = TorusTopology(radix=8, dimensions=2)
        t3 = TorusTopology(radix=8, dimensions=3)
        assert theoretical_capacity(t3, 32) > theoretical_capacity(t2, 32) * 0.9

    def test_capacity_rejects_bad_length(self, torus_8x8):
        with pytest.raises(ValueError):
            theoretical_capacity(torus_8x8, -1)


class TestSaturationEstimate:
    def _sweep(self, rates, latencies, saturated=None):
        sweep = LoadSweepResult(label="test")
        sweep.rates = list(rates)
        sweep.latencies = list(latencies)
        sweep.throughputs = [0.0] * len(sweep.rates)
        sweep.saturated = list(saturated) if saturated else [False] * len(sweep.rates)
        return sweep

    def test_empty_sweep_returns_none(self):
        assert estimate_saturation_rate(self._sweep([], [])) is None

    def test_no_saturation_detected_for_flat_curve(self):
        sweep = self._sweep([0.001, 0.002, 0.003], [40, 42, 44])
        assert estimate_saturation_rate(sweep) is None

    def test_latency_blowup_detected(self):
        sweep = self._sweep([0.001, 0.002, 0.003, 0.004], [40, 45, 60, 200])
        assert estimate_saturation_rate(sweep) == 0.004

    def test_engine_saturation_flag_wins(self):
        sweep = self._sweep([0.001, 0.002], [40, 41], saturated=[False, True])
        assert estimate_saturation_rate(sweep) == 0.002

    def test_explicit_zero_load_baseline(self):
        sweep = self._sweep([0.001, 0.002], [100, 130])
        assert estimate_saturation_rate(sweep, latency_factor=3.0, zero_load=40) == 0.002
