"""Tests for tabular reporting and ASCII plotting."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.plotting import ascii_curve, ascii_multi_series, render_fault_region
from repro.analysis.tables import format_table, results_to_rows, series_table, write_csv
from repro.faults.model import FaultSet
from repro.faults.regions import make_fault_region
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_simulation
from repro.sim.sweep import LoadSweepResult


def _sweep(label, rates, latencies, saturated=None):
    sweep = LoadSweepResult(label=label)
    sweep.rates = list(rates)
    sweep.latencies = list(latencies)
    sweep.throughputs = [lat / 1000 for lat in latencies]
    sweep.saturated = list(saturated) if saturated else [False] * len(rates)
    return sweep


class TestFormatTable:
    def test_empty(self):
        assert "(no data)" in format_table([])

    def test_alignment_and_columns(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.5}]
        text = format_table(rows, columns=["a", "b"], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_boolean_and_nan_rendering(self):
        rows = [{"ok": True, "x": float("nan")}]
        text = format_table(rows)
        assert "yes" in text
        assert "nan" in text

    def test_missing_column_left_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text.count("|") >= 3


class TestSeriesTable:
    def test_one_row_per_distinct_rate(self):
        s1 = _sweep("det", [0.001, 0.002], [40, 50])
        s2 = _sweep("adpt", [0.002, 0.003], [38, 45])
        text = series_table([s1, s2], metric="latency")
        assert text.count("\n") >= 5  # title + header + separator + 3 rate rows
        assert "det" in text and "adpt" in text

    def test_saturated_points_are_starred(self):
        s1 = _sweep("det", [0.001], [400], saturated=[True])
        assert "*" in series_table([s1])

    def test_throughput_metric(self):
        s1 = _sweep("det", [0.001], [40])
        assert "throughput" in series_table([s1], metric="throughput")

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            series_table([], metric="jitter")


class TestCsvAndRows:
    def test_results_to_rows_and_write_csv(self, tmp_path, torus_4x4):
        config = SimulationConfig(
            topology=torus_4x4,
            routing="swbased-deterministic",
            num_virtual_channels=2,
            message_length=4,
            injection_rate=0.02,
            warmup_messages=5,
            measure_messages=40,
            seed=1,
        )
        results = [run_simulation(config)]
        rows = results_to_rows(results)
        assert rows[0]["radix"] == 4
        path = tmp_path / "out.csv"
        write_csv(rows, str(path))
        with open(path) as fh:
            parsed = list(csv.DictReader(fh))
        assert len(parsed) == 1
        assert float(parsed[0]["mean_latency"]) > 0

    def test_write_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv([], str(path))
        assert path.read_text() == ""


class TestAsciiPlots:
    def test_single_curve_contains_markers_and_labels(self):
        text = ascii_curve([0, 1, 2, 3], [10, 12, 20, 50], x_label="load", y_label="latency")
        assert "o" in text
        assert "load" in text
        assert "latency" in text

    def test_multi_series_legend(self):
        text = ascii_multi_series(
            [("det", [0, 1], [10, 20]), ("adpt", [0, 1], [9, 15])], width=30, height=8
        )
        assert "det" in text and "adpt" in text
        assert "o = det" in text

    def test_nan_points_are_skipped(self):
        text = ascii_multi_series([("s", [0, 1, 2], [1.0, float("nan"), 3.0])])
        assert "(no data to plot)" not in text

    def test_all_nan_series(self):
        assert "(no data to plot)" in ascii_multi_series([("s", [0], [float("nan")])])

    def test_render_fault_region_marks_faulty_nodes(self, torus_8x8):
        region = make_fault_region(torus_8x8, "rect", width=2, height=2, anchor=(1, 1))
        text = render_fault_region(torus_8x8, region)
        assert text.count("X") == 4
        assert text.count(".") == 60

    def test_render_fault_region_accepts_plain_fault_set(self, torus_4x4):
        text = render_fault_region(torus_4x4, FaultSet.from_nodes([0]))
        assert text.count("X") == 1

    def test_render_respects_fixed_coordinates_in_3d(self, torus_4x4x4):
        faults = FaultSet.from_nodes([torus_4x4x4.node_id((1, 1, 2))])
        plane_with_fault = render_fault_region(
            torus_4x4x4, faults, plane=(0, 1), fixed=(0, 0, 2)
        )
        plane_without = render_fault_region(torus_4x4x4, faults, plane=(0, 1), fixed=(0, 0, 0))
        assert plane_with_fault.count("X") == 1
        assert plane_without.count("X") == 0
