"""One shared contract, three backends.

Every test in this module runs identically against ``mem://``, ``dir://``
and ``sqlite://`` — the acceptance criterion of the pluggable-backend work.
The parametrized ``backend`` fixture hands each test a *location* (a URI)
plus open/scan helpers, so "reopen the backend" means whatever persistence
the backend actually offers: a fresh directory/database handle for the
persistent pair, the shared named instance for ``mem://``.

Backend-specific durability details (torn JSONL lines, O_APPEND semantics,
SQLite version stamps) stay in their own suites; this file pins only the
behaviour all backends must share.
"""

from __future__ import annotations

import pytest

from repro.backends import (
    BackendScan,
    DirectoryBackend,
    MemoryBackend,
    ResultBackend,
    SQLiteBackend,
    backend_schemes,
    open_backend,
    parse_backend_uri,
    scan_backend,
)
from repro.errors import ConfigurationError
from repro.faults.model import FaultSet
from repro.sim.config import SimulationConfig, config_hash
from repro.sim.parallel import SweepExecutor
from repro.sim.runner import run_simulation


@pytest.fixture
def fast_config(torus_4x4):
    # A fault is included on purpose: absorption metrics exercise the
    # int-keyed per-node map through every backend's round trip.
    return SimulationConfig(
        topology=torus_4x4,
        routing="swbased-deterministic",
        num_virtual_channels=2,
        message_length=4,
        injection_rate=0.02,
        faults=FaultSet.from_nodes([5]),
        warmup_messages=10,
        measure_messages=60,
        seed=11,
    )


class BackendLocation:
    """One concrete backend location: its URI plus open/scan helpers."""

    def __init__(self, uri: str):
        self.uri = uri
        self.scheme = uri.split("://", 1)[0]

    def open(self, member: str = "points") -> ResultBackend:
        return open_backend(self.uri, member=member)

    def scan(self) -> BackendScan:
        return scan_backend(self.uri)


@pytest.fixture(params=["mem", "dir", "sqlite"])
def backend(request, tmp_path):
    """A fresh location of each registered backend flavour."""
    if request.param == "mem":
        name = f"conformance-{tmp_path.name}"
        yield BackendLocation(f"mem://{name}")
        MemoryBackend.discard(name)  # keep the process-wide registry clean
    elif request.param == "dir":
        yield BackendLocation(f"dir://{tmp_path}")
    else:
        yield BackendLocation(f"sqlite://{tmp_path}/points.sqlite")


class TestSharedContract:
    def test_round_trip_is_bit_identical_across_reopen(self, backend, fast_config):
        result = run_simulation(fast_config)
        writer = backend.open()
        writer.put(fast_config, result)
        served = backend.open().get(fast_config)
        assert served.metrics == result.metrics
        assert served.config is fast_config  # rebound to the requesting config

    def test_hit_miss_accounting_and_contains(self, backend, fast_config):
        store = backend.open()
        assert store.get(fast_config) is None
        assert store.misses == 1 and store.hits == 0
        assert not store.contains_config(fast_config)
        store.put(fast_config, run_simulation(fast_config))
        assert store.contains_config(fast_config)
        assert store.misses == 1  # contains_config touches no counter
        assert store.get(fast_config) is not None
        assert store.hits == 1
        assert config_hash(fast_config) in store
        assert len(store) == 1

    def test_put_is_idempotent(self, backend, fast_config):
        store = backend.open()
        result = run_simulation(fast_config)
        store.put(fast_config, result)
        store.put(fast_config, result)
        assert len(store) == 1
        assert len(backend.open()) == 1

    def test_served_results_are_detached(self, backend, fast_config):
        store = backend.open()
        store.put(fast_config, run_simulation(fast_config))
        served = store.get(fast_config)
        served.metrics.extras["note"] = "mutated"
        served.metrics.absorptions_by_node[999] = 1
        again = store.get(fast_config)
        assert "note" not in again.metrics.extras
        assert 999 not in again.metrics.absorptions_by_node

    def test_hits_rebind_across_metadata_labels(self, backend, fast_config):
        store = backend.open()
        labelled = fast_config.with_updates(metadata={"figure": "fig3"})
        store.put(labelled, run_simulation(labelled))
        relabelled = fast_config.with_updates(metadata={"figure": "fig4"})
        served = store.get(relabelled)
        assert served is not None
        assert served.config.metadata["figure"] == "fig4"

    def test_keys_and_scan_agree(self, backend, fast_config):
        store = backend.open()
        other = fast_config.with_updates(seed=12)
        store.put(fast_config, run_simulation(fast_config))
        store.put(other, run_simulation(other))
        expected = {config_hash(fast_config), config_hash(other)}
        assert set(store.keys()) == expected
        scan = backend.scan()
        assert set(scan.keys) == expected
        assert scan.skipped_records == 0
        assert sum(count for _, count in scan.members) == 2

    def test_concurrent_writers_merge(self, backend, fast_config):
        """Two writer handles (distinct members) land in one merged view."""
        first = backend.open(member="points-shard-1-of-2")
        second = backend.open(member="points-shard-2-of-2")
        other = fast_config.with_updates(seed=12)
        first.put(fast_config, run_simulation(fast_config))
        second.put(other, run_simulation(other))
        merged = backend.open()
        assert len(merged) == 2
        assert merged.contains_config(fast_config)
        assert merged.contains_config(other)

    def test_works_as_executor_cache_serial_and_parallel(self, backend, fast_config):
        configs = [fast_config.with_updates(seed=s) for s in (1, 2, 3)]
        store = backend.open()
        serial = SweepExecutor(jobs=1, cache=store).run_configs(configs)
        warm = backend.open()
        parallel = SweepExecutor(jobs=2, cache=warm).run_configs(configs)
        assert warm.hits == 3  # everything answered from the backend
        for a, b in zip(serial, parallel):
            assert a.metrics == b.metrics

    def test_executor_accepts_backend_uri_strings(self, backend, fast_config):
        executor = SweepExecutor(cache=backend.uri)
        assert isinstance(executor.cache, ResultBackend)
        executor.run_configs([fast_config])
        assert backend.open().contains_config(fast_config)

    def test_streamed_events_are_committed_before_delivery(self, backend, fast_config):
        """The streaming durability contract: when a consumer sees an event,
        the result is already in the backend — even if the consumer dies."""
        configs = [fast_config.with_updates(seed=s) for s in (1, 2, 3)]
        store = backend.open()
        seen = []
        for event in SweepExecutor(jobs=1, cache=store).stream_configs(configs):
            assert backend.open().contains_config(configs[event.index])
            seen.append(event)
            if len(seen) == 2:
                break  # a killed consumer
        fresh = backend.open()
        assert fresh.contains_config(configs[0])
        assert fresh.contains_config(configs[1])
        assert not fresh.contains_config(configs[2])  # in-flight work only


class TestRegistry:
    def test_registered_schemes(self):
        assert set(backend_schemes()) >= {"mem", "dir", "sqlite"}

    def test_parse_round_trip(self, backend):
        scheme, location = parse_backend_uri(backend.uri)
        assert scheme == backend.scheme

    @pytest.mark.parametrize(
        "bad",
        ["", "no-scheme", "dir://", "sqlite://", "nope://somewhere", "://x"],
    )
    def test_bad_uris_raise_actionable_errors(self, bad):
        with pytest.raises(ConfigurationError, match="backend"):
            parse_backend_uri(bad)

    def test_anonymous_mem_backends_are_private(self):
        a, b = open_backend("mem://"), open_backend("mem://")
        assert a is not b

    def test_named_mem_backends_are_shared(self):
        try:
            assert open_backend("mem://shared-x") is open_backend("mem://shared-x")
        finally:
            MemoryBackend.discard("shared-x")

    def test_backend_classes_carry_their_scheme(self):
        assert MemoryBackend.scheme == "mem"
        assert DirectoryBackend.scheme == "dir"
        assert SQLiteBackend.scheme == "sqlite"


class TestSQLiteSpecifics:
    """The durability details unique to the new single-file backend."""

    def test_version_mismatch_is_loud(self, tmp_path, fast_config):
        path = tmp_path / "points.sqlite"
        store = SQLiteBackend(path)
        store.put(fast_config, run_simulation(fast_config))
        store._conn.execute("UPDATE meta SET version = 99 WHERE id = 0")
        store.close()
        with pytest.raises(ConfigurationError, match="version"):
            SQLiteBackend(path)

    def test_concurrent_connections_race_safely_on_one_key(self, tmp_path, fast_config):
        path = tmp_path / "points.sqlite"
        result = run_simulation(fast_config)
        first, second = SQLiteBackend(path), SQLiteBackend(path)
        first.put(fast_config, result)
        second.put(fast_config, result)  # INSERT OR IGNORE: no error, one row
        first.close(), second.close()
        fresh = SQLiteBackend(path)
        assert len(fresh) == 1
        assert fresh.get(fast_config).metrics == result.metrics
        fresh.close()

    def test_non_database_file_is_actionable(self, tmp_path):
        bogus = tmp_path / "points.jsonl"
        bogus.write_text('{"v":1,"key":"abc"}\n' * 64)  # a JSONL member file
        with pytest.raises(ConfigurationError, match="SQLite"):
            SQLiteBackend(bogus)

    def test_scan_of_missing_database_is_empty(self, tmp_path):
        scan = scan_backend(f"sqlite://{tmp_path}/never-created.sqlite")
        assert scan.keys == frozenset() and scan.members == []
        # Scanning must not create the file (status on a fresh campaign).
        assert not (tmp_path / "never-created.sqlite").exists()
